"""Boolean circuit substrate for the generic-SMC (Yao) baseline."""

from repro.circuits.builder import (
    EVALUATOR,
    GARBLER,
    CircuitBuilder,
    build_selected_sum_circuit,
)
from repro.circuits.circuit import Circuit, Gate, GateOp

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "EVALUATOR",
    "GARBLER",
    "Gate",
    "GateOp",
    "build_selected_sum_circuit",
]
