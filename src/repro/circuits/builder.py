"""Circuit construction: adders, maskers, and the selected-sum circuit.

The Yao baseline needs one specific circuit — the paper's functionality
as a boolean function: the evaluator (client) supplies n selection bits,
the garbler (server) supplies n ``value_bits``-bit numbers, the output
is ``sum_i I_i * x_i`` over ``sum_bits`` bits.

Built from first principles: AND-masking (multiplying by a bit) followed
by a chain of ripple-carry adders into an accumulator wide enough that
no sum can overflow.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.circuits.circuit import Circuit, GateOp
from repro.exceptions import CircuitError

__all__ = ["CircuitBuilder", "build_selected_sum_circuit"]

GARBLER = "garbler"
EVALUATOR = "evaluator"


class CircuitBuilder:
    """Ergonomic gate-level construction on top of :class:`Circuit`."""

    def __init__(self) -> None:
        self.circuit = Circuit()

    # -- inputs ------------------------------------------------------------

    def input_bit(self, owner: str) -> int:
        """Allocate one input wire owned by ``owner``."""
        return self.circuit.new_input(owner)

    def input_number(self, owner: str, bits: int) -> List[int]:
        """A little-endian ``bits``-wide input bundle."""
        if bits < 1:
            raise CircuitError("numbers need at least one bit")
        return [self.circuit.new_input(owner) for _ in range(bits)]

    # -- primitive gates --------------------------------------------------------

    def xor(self, a: int, b: int) -> int:
        """Append an XOR gate; returns its output wire."""
        return self.circuit.add_gate(GateOp.XOR, a, b)

    def and_(self, a: int, b: int) -> int:
        """Append an AND gate; returns its output wire."""
        return self.circuit.add_gate(GateOp.AND, a, b)

    def or_(self, a: int, b: int) -> int:
        """Append an OR gate; returns its output wire."""
        return self.circuit.add_gate(GateOp.OR, a, b)

    def not_(self, a: int) -> int:
        """Append a NOT gate; returns its output wire."""
        return self.circuit.add_gate(GateOp.NOT, a)

    # -- composite blocks -----------------------------------------------------------

    def full_adder(self, a: int, b: int, carry_in: int) -> Tuple[int, int]:
        """(sum, carry_out) of three bits — 5 gates."""
        axb = self.xor(a, b)
        total = self.xor(axb, carry_in)
        carry = self.or_(self.and_(a, b), self.and_(axb, carry_in))
        return total, carry

    def ripple_add(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        """Little-endian addition, output width = max width (carry dropped
        off the top — callers size accumulators so it never matters)."""
        width = max(len(a), len(b))
        a = list(a) + [Circuit.CONST_ZERO] * (width - len(a))
        b = list(b) + [Circuit.CONST_ZERO] * (width - len(b))
        carry = Circuit.CONST_ZERO
        out: List[int] = []
        for bit_a, bit_b in zip(a, b):
            total, carry = self.full_adder(bit_a, bit_b, carry)
            out.append(total)
        return out

    def mask(self, bit: int, number: Sequence[int]) -> List[int]:
        """``bit * number``: AND every bit of the bundle with ``bit``."""
        return [self.and_(bit, w) for w in number]

    def mux(self, select: int, when_zero: Sequence[int], when_one: Sequence[int]) -> List[int]:
        """Bitwise 2-to-1 multiplexer: out = select ? when_one : when_zero."""
        if len(when_zero) != len(when_one):
            raise CircuitError("mux branches must have equal width")
        out = []
        for z, o in zip(when_zero, when_one):
            diff = self.xor(z, o)
            out.append(self.xor(z, self.and_(select, diff)))
        return out

    def constant_number(self, value: int, bits: int) -> List[int]:
        """A constant bundle from the reserved constant wires."""
        if value < 0 or value >= 1 << bits:
            raise CircuitError("constant %d does not fit %d bits" % (value, bits))
        return [
            Circuit.CONST_ONE if (value >> i) & 1 else Circuit.CONST_ZERO
            for i in range(bits)
        ]

    # -- finalization ------------------------------------------------------------------

    def outputs(self, wires: Sequence[int]) -> Circuit:
        """Mark the output wires and return the finished circuit."""
        self.circuit.mark_outputs(wires)
        return self.circuit


def build_selected_sum_circuit(
    n: int, value_bits: int = 32, sum_bits: int = 0
) -> Circuit:
    """The paper's functionality as a boolean circuit.

    Evaluator inputs: n selection bits.  Garbler inputs: n numbers of
    ``value_bits`` bits.  Output: ``sum_i I_i * x_i`` over ``sum_bits``
    bits (default: wide enough for the worst case, ``value_bits +
    ceil(log2 n)``).

    Gate count is Θ(n · sum_bits) — the quadratic-ish blowup (relative
    to the homomorphic protocol's n big-int ops and n ciphertexts) that
    makes generic SMC impractical at database scale, which is the
    paper's motivating comparison (§2: Fairplay at ≥15 minutes for 100
    elements [16]).
    """
    if n < 1:
        raise CircuitError("need at least one element")
    if value_bits < 1:
        raise CircuitError("value width must be positive")
    if sum_bits <= 0:
        sum_bits = value_bits + max(1, (n - 1).bit_length() if n > 1 else 1)

    builder = CircuitBuilder()
    selection = [builder.input_bit(EVALUATOR) for _ in range(n)]
    numbers = [builder.input_number(GARBLER, value_bits) for _ in range(n)]

    accumulator = builder.constant_number(0, sum_bits)
    for bit, number in zip(selection, numbers):
        masked = builder.mask(bit, number)
        accumulator = builder.ripple_add(accumulator, masked)
    return builder.outputs(accumulator)
