"""Boolean circuit intermediate representation.

The generic-SMC baseline (Yao) operates on boolean circuits; this module
is the circuit IR: wires are dense integer ids, gates are
``(op, inputs, output)`` records in topological order (enforced by
construction — a gate may only read wires that already exist).

Supported ops: XOR, AND, OR, NOT, plus constant-0/1 *wires*.  That basis
is complete and matches what the garbler knows how to handle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.exceptions import CircuitError

__all__ = ["GateOp", "Gate", "Circuit"]


class GateOp(enum.Enum):
    """Boolean gate types (XOR/AND/OR/NOT) with their truth tables."""
    XOR = "xor"
    AND = "and"
    OR = "or"
    NOT = "not"

    @property
    def arity(self) -> int:
        return 1 if self is GateOp.NOT else 2

    def evaluate(self, *bits: int) -> int:
        """Apply the gate's truth table to plaintext bits."""
        if self is GateOp.XOR:
            return bits[0] ^ bits[1]
        if self is GateOp.AND:
            return bits[0] & bits[1]
        if self is GateOp.OR:
            return bits[0] | bits[1]
        return bits[0] ^ 1  # NOT


@dataclass(frozen=True)
class Gate:
    """One gate: ``output = op(*inputs)``."""

    op: GateOp
    inputs: Tuple[int, ...]
    output: int

    def __post_init__(self) -> None:
        if len(self.inputs) != self.op.arity:
            raise CircuitError(
                "%s gate needs %d inputs, got %d"
                % (self.op.name, self.op.arity, len(self.inputs))
            )


class Circuit:
    """A topologically ordered boolean circuit.

    Wires 0 and 1 are reserved constants (0 = constant false,
    1 = constant true).  Input wires are allocated next, then gate
    outputs.  The class is append-only; :class:`repro.circuits.builder.
    CircuitBuilder` provides the ergonomic construction API.
    """

    CONST_ZERO = 0
    CONST_ONE = 1

    def __init__(self) -> None:
        self._next_wire = 2  # after the two constants
        self.gates: List[Gate] = []
        self.input_wires: List[int] = []
        self.output_wires: List[int] = []
        #: which party feeds each input wire ("garbler" / "evaluator")
        self.input_owner: Dict[int, str] = {}

    # -- construction ---------------------------------------------------------

    def new_input(self, owner: str) -> int:
        """Allocate an input wire attributed to ``owner``."""
        wire = self._next_wire
        self._next_wire += 1
        self.input_wires.append(wire)
        self.input_owner[wire] = owner
        return wire

    def add_gate(self, op: GateOp, *inputs: int) -> int:
        """Append a gate reading existing wires; returns the output wire."""
        for w in inputs:
            if not 0 <= w < self._next_wire:
                raise CircuitError("gate reads undefined wire %d" % w)
        output = self._next_wire
        self._next_wire += 1
        self.gates.append(Gate(op, tuple(inputs), output))
        return output

    def mark_outputs(self, wires: Sequence[int]) -> None:
        """Declare which wires carry the circuit's outputs."""
        for w in wires:
            if not 0 <= w < self._next_wire:
                raise CircuitError("output marks undefined wire %d" % w)
        self.output_wires = list(wires)

    # -- introspection ----------------------------------------------------------

    @property
    def wire_count(self) -> int:
        return self._next_wire

    @property
    def gate_count(self) -> int:
        return len(self.gates)

    def count_gates(self, op: GateOp) -> int:
        """Number of gates of one type (size accounting)."""
        return sum(1 for g in self.gates if g.op is op)

    def inputs_of(self, owner: str) -> List[int]:
        """Input wires owned by ``owner``, in allocation order."""
        return [w for w in self.input_wires if self.input_owner[w] == owner]

    # -- plaintext evaluation -----------------------------------------------------

    def evaluate(self, assignments: Dict[int, int]) -> List[int]:
        """Evaluate in the clear; ``assignments`` maps input wire -> bit.

        Returns the output-wire bits.  This is the reference semantics
        the garbled evaluation is tested against.
        """
        values: Dict[int, int] = {self.CONST_ZERO: 0, self.CONST_ONE: 1}
        for wire in self.input_wires:
            if wire not in assignments:
                raise CircuitError("missing assignment for input wire %d" % wire)
            bit = assignments[wire]
            if bit not in (0, 1):
                raise CircuitError("wire %d assigned non-bit %r" % (wire, bit))
            values[wire] = bit
        for gate in self.gates:
            try:
                in_bits = [values[w] for w in gate.inputs]
            except KeyError as exc:
                raise CircuitError(
                    "gate reads wire %s before definition" % exc
                ) from exc
            values[gate.output] = gate.op.evaluate(*in_bits)
        if not self.output_wires:
            raise CircuitError("circuit has no marked outputs")
        return [values[w] for w in self.output_wires]

    def evaluate_int(self, assignments: Dict[int, int]) -> int:
        """Evaluate and decode the outputs little-endian into an integer."""
        bits = self.evaluate(assignments)
        return sum(bit << i for i, bit in enumerate(bits))
