"""Measured mode-selection calibration for :class:`~repro.crypto.engine.CryptoEngine`.

The engine can run each batch four ways (naive serial fold, in-process
multiexp, Montgomery multiexp, process-pool fan-out), and which one wins
depends on the machine: core count, big-int throughput, process spawn
cost.  Guessing is how v1 ended up shipping a parallel path that *lost*
to single-core multiexp.  This module replaces the guess with a
measurement:

* :func:`run_calibration` times every mode the engine can route to, for
  a grid of (key_bits, batch size) points, using seeded keys and the
  *real* engine call path — so packing overhead, chunking, and pool
  round-trips are all inside the measured number.
* :class:`CalibrationProfile` stores the timings and answers
  ``best_mode(kind, key_bits, size)`` by nearest measured point in log
  space.  Profiles serialize to JSON and persist in the
  :class:`~repro.store.state.StateStore` (``repro calibrate`` writes
  one; ``repro serve``/``repro sum`` pick it up automatically).

Crucially, mode selection is *routing only*: every mode computes
bit-identical results (the multiexp/Montgomery kernels are bit-for-bit
the naive fold, and chunk seed schedules never depend on the mode), so
a stale or wrong profile can cost time but never correctness.
"""

from __future__ import annotations

import json
import math
import time
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import ParameterError

__all__ = [
    "CalibrationProfile",
    "run_calibration",
    "render_mode_table",
    "load_profile",
    "save_profile",
]

#: Default measurement grid (matches the bench grid so the committed
#: BENCH numbers and the shipped profile describe the same points).
DEFAULT_KEY_BITS = (256, 512)
DEFAULT_SIZES = (200, 1000)
DEFAULT_ROUNDS = 3

#: Identifier under which the profile is persisted in the state store.
PROFILE_KIND = "engine-mode-profile"

_PROFILE_VERSION = 1


class CalibrationProfile:
    """Timed mode crossovers per (kind, key_bits, size) point.

    ``kind`` is one of the engine's routing kinds (``"encrypt"``,
    ``"weighted"``); each recorded point maps mode name to best-of-N
    wall-clock seconds.  Lookups snap to the nearest measured point in
    ``(log2 key_bits, log2 size)`` space, so a profile measured at
    512/1000 still routes a 512/800 batch sensibly.
    """

    def __init__(self, meta: Optional[Mapping[str, Any]] = None) -> None:
        self.meta: Dict[str, Any] = dict(meta or {})
        self._entries: Dict[Tuple[str, int, int], Dict[str, float]] = {}

    # -- recording --------------------------------------------------------

    def record(
        self, kind: str, key_bits: int, size: int, timings: Mapping[str, float]
    ) -> None:
        """Store (replacing) the timings for one measured point."""
        if key_bits < 1 or size < 1:
            raise ParameterError("key_bits and size must be positive")
        if not timings:
            raise ParameterError("timings must not be empty")
        self._entries[(kind, key_bits, size)] = {
            mode: float(seconds) for mode, seconds in timings.items()
        }

    # -- lookup -----------------------------------------------------------

    def points(
        self, kind: Optional[str] = None
    ) -> List[Tuple[str, int, int, Dict[str, float]]]:
        """Every measured point, sorted, optionally filtered by kind."""
        return [
            (k, bits, size, dict(timings))
            for (k, bits, size), timings in sorted(self._entries.items())
            if kind is None or k == kind
        ]

    def timings(
        self, kind: str, key_bits: int, size: int
    ) -> Optional[Dict[str, float]]:
        """The timings at the *nearest* measured point for ``kind``."""
        nearest: Optional[Tuple[float, Tuple[str, int, int]]] = None
        target = (math.log2(max(key_bits, 1)), math.log2(max(size, 1)))
        for key in self._entries:
            if key[0] != kind:
                continue
            distance = (math.log2(key[1]) - target[0]) ** 2 + (
                math.log2(key[2]) - target[1]
            ) ** 2
            if nearest is None or distance < nearest[0]:
                nearest = (distance, key)
        if nearest is None:
            return None
        return dict(self._entries[nearest[1]])

    def best_mode(self, kind: str, key_bits: int, size: int) -> Optional[str]:
        """The measured-fastest mode near (key_bits, size), or None."""
        timings = self.timings(kind, key_bits, size)
        if not timings:
            return None
        return min(timings.items(), key=lambda item: item[1])[0]

    def __len__(self) -> int:
        return len(self._entries)

    # -- serialization ----------------------------------------------------

    def to_json(self) -> str:
        """Serialize to the JSON document the state store persists."""
        return json.dumps(
            {
                "version": _PROFILE_VERSION,
                "meta": self.meta,
                "entries": [
                    {
                        "kind": kind,
                        "key_bits": bits,
                        "size": size,
                        "timings": timings,
                    }
                    for kind, bits, size, timings in self.points()
                ],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "CalibrationProfile":
        """Inverse of :meth:`to_json`; rejects unknown versions."""
        try:
            document = json.loads(text)
        except ValueError as exc:
            raise ParameterError("calibration profile is not valid JSON") from exc
        if not isinstance(document, dict):
            raise ParameterError("calibration profile must be a JSON object")
        version = document.get("version")
        if version != _PROFILE_VERSION:
            raise ParameterError(
                "unsupported calibration profile version %r" % (version,)
            )
        profile = cls(meta=document.get("meta") or {})
        for entry in document.get("entries", ()):
            profile.record(
                str(entry["kind"]),
                int(entry["key_bits"]),
                int(entry["size"]),
                {str(m): float(s) for m, s in entry["timings"].items()},
            )
        return profile


class _ForcedMode:
    """A stand-in profile that routes every batch to one fixed mode.

    Used by the calibration run itself to force the engine down each
    candidate path while measuring it (and handy in tests).
    """

    def __init__(self, mode: str) -> None:
        self.mode = mode

    def best_mode(self, kind: str, key_bits: int, size: int) -> str:
        return self.mode


def _best_of(fn: Callable[[], Any], rounds: int) -> float:
    """Minimum wall-clock over ``rounds`` runs (noise-floor estimator)."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run_calibration(
    key_bits_list: Iterable[int] = DEFAULT_KEY_BITS,
    sizes: Iterable[int] = DEFAULT_SIZES,
    workers: int = 2,
    rounds: int = DEFAULT_ROUNDS,
    seed_label: str = "calibration",
    progress: Optional[Callable[[str], None]] = None,
) -> CalibrationProfile:
    """Measure every engine mode over the (key_bits, size) grid.

    Keys are generated deterministically from ``seed_label`` (a public
    benchmark label, not key material) so repeat runs
    measure the same arithmetic.  Every timing goes through the real
    :class:`~repro.crypto.engine.CryptoEngine` call path — chunking,
    packing, and pool round-trips included — because that is the cost
    the router will actually pay.  Parallel modes are measured only
    when ``workers > 1``.
    """
    from repro.crypto.engine import CryptoEngine
    from repro.crypto.paillier import generate_keypair
    from repro.crypto.rng import DeterministicRandom

    key_bits_list = sorted(set(int(b) for b in key_bits_list))
    sizes = sorted(set(int(s) for s in sizes))
    if rounds < 1:
        raise ParameterError("rounds must be positive")
    profile = CalibrationProfile(
        meta={"workers": workers, "rounds": rounds, "seed": seed_label}
    )

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    for key_bits in key_bits_list:
        keypair = generate_keypair(key_bits, "%s-%d" % (seed_label, key_bits))
        public = keypair.public
        rng = DeterministicRandom("%s-data-%d" % (seed_label, key_bits))
        top = max(sizes)
        all_cts = [public.encrypt_raw(i % 1024, rng) for i in range(top)]
        all_weights = [rng.randrange(0, 1 << 32) for _ in range(top)]
        for size in sizes:
            cts, weights = all_cts[:size], all_weights[:size]
            plaintexts = list(range(size))

            # -- weighted aggregation ------------------------------------
            timings: Dict[str, float] = {}
            with CryptoEngine(workers=1, use_multiexp=False) as engine:
                timings["serial"] = _best_of(
                    lambda: engine.weighted_product(
                        public.nsquare, public.n, cts, weights
                    ),
                    rounds,
                )
            with CryptoEngine(workers=1) as engine:
                timings["multiexp"] = _best_of(
                    lambda: engine.weighted_product(
                        public.nsquare, public.n, cts, weights
                    ),
                    rounds,
                )
            with CryptoEngine(
                workers=1, calibration=_ForcedMode("multiexp_mont")
            ) as engine:
                timings["multiexp_mont"] = _best_of(
                    lambda: engine.weighted_product(
                        public.nsquare, public.n, cts, weights
                    ),
                    rounds,
                )
            if workers > 1:
                with CryptoEngine(
                    workers=workers,
                    chunk_size=max(1, -(-size // (2 * workers))),
                    calibration=_ForcedMode("parallel"),
                ) as engine:
                    timings["parallel"] = _best_of(
                        lambda: engine.weighted_product(
                            public.nsquare, public.n, cts, weights
                        ),
                        rounds,
                    )
            profile.record("weighted", key_bits, size, timings)
            note(
                "weighted %4d-bit n=%-6d -> %s"
                % (key_bits, size, profile.best_mode("weighted", key_bits, size))
            )

            # -- vector encryption ---------------------------------------
            timings = {}
            with CryptoEngine(workers=1) as engine:
                timings["serial"] = _best_of(
                    lambda: engine.encrypt_vector(
                        public, plaintexts, "%s-enc" % seed_label
                    ),
                    rounds,
                )
            if workers > 1:
                with CryptoEngine(
                    workers=workers,
                    chunk_size=max(1, -(-size // (2 * workers))),
                    calibration=_ForcedMode("parallel"),
                ) as engine:
                    timings["parallel"] = _best_of(
                        lambda: engine.encrypt_vector(
                            public, plaintexts, "%s-enc" % seed_label
                        ),
                        rounds,
                    )
            profile.record("encrypt", key_bits, size, timings)
            note(
                "encrypt  %4d-bit n=%-6d -> %s"
                % (key_bits, size, profile.best_mode("encrypt", key_bits, size))
            )
    return profile


def render_mode_table(profile: CalibrationProfile) -> str:
    """Human-readable mode table for the ``repro calibrate`` CLI."""
    lines = [
        "%-9s %9s %8s %12s   %s"
        % ("kind", "key_bits", "n", "chosen", "timings (ms)")
    ]
    for kind, key_bits, size, timings in profile.points():
        chosen = min(timings.items(), key=lambda item: item[1])[0]
        detail = "  ".join(
            "%s=%.2f" % (mode, seconds * 1e3)
            for mode, seconds in sorted(timings.items())
        )
        lines.append(
            "%-9s %9d %8d %12s   %s" % (kind, key_bits, size, chosen, detail)
        )
    return "\n".join(lines)


# -- persistence glue (repro.store) ------------------------------------------


def load_profile(store: Any) -> Optional[CalibrationProfile]:
    """The persisted profile from a state store, or None when absent."""
    text = store.load_calibration(PROFILE_KIND)
    if text is None:
        return None
    return CalibrationProfile.from_json(text)


def save_profile(store: Any, profile: CalibrationProfile) -> None:
    """Persist ``profile`` in the state store (replacing any previous)."""
    store.save_calibration(PROFILE_KIND, profile.to_json())
