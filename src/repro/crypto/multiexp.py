"""Batch modular-exponentiation kernels for the selected-sum hot paths.

The paper's cost profile (§3.1) is dominated by two shapes of modular
exponentiation, and both have algorithmic structure a per-element
``pow()`` loop throws away:

* **The server aggregate** ``prod_i c_i^{w_i} mod n^2`` multiplies many
  independent bases, each raised to a *small* exponent (the 32-bit
  database values).  :func:`multi_exponent` computes the whole product
  with one shared squaring chain using the Pippenger/Straus *bucket
  method*: exponents are scanned window by window, bases with the same
  window digit are multiplied into a shared bucket, and each window
  costs one bucket sweep instead of a fresh exponentiation per element.
  At 512-bit keys and 32-bit weights this is ~5-8x faster than the
  naive loop in pure Python (see ``benchmarks/test_kernels.py``).

* **The encryption obfuscator** ``r^n mod n^2`` raises a *varying* base
  to the *fixed* per-key exponent ``n``.  Written as ``r = h^x mod n``
  for a fixed ``h``, the obfuscator becomes ``(h^n)^x mod n^2`` — a
  fixed-base exponentiation — and :class:`FixedBaseTable` precomputes
  the windowed powers of ``h^n`` once per key so that each obfuscator
  costs only table lookups and multiplications, no squarings at all.
  This is the crypto-kernel half of the paper's §3.3 preprocessing:
  :class:`~repro.crypto.paillier.RandomnessPool` uses it to refill
  many times faster than one full ``pow()`` per obfuscator.

Both kernels are bit-for-bit compatible with the naive loops they
replace (same residues, same modulus — modular products are order
independent), which the property tests in
``tests/crypto/test_multiexp.py`` assert exhaustively.  They are pure
functions of ints, safe to ship across process boundaries, which is how
:class:`~repro.crypto.engine.CryptoEngine` fans them out over cores.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.crypto.montgomery import MontgomeryContext
from repro.exceptions import ParameterError

__all__ = ["multi_exponent", "select_window", "FixedBaseTable"]

#: Largest window the selector will consider.  2^(16+1) bucket slots is
#: already far past the break-even point for any batch this library sees.
_MAX_WINDOW = 16


def select_window(count: int, max_exponent_bits: int) -> int:
    """Pick the bucket-window width for a batch of ``count`` exponents.

    Minimises the modular-multiplication count of the bucket method:
    each of the ``ceil(bits / c)`` windows costs one bucket insertion
    per element plus a ``2^(c+1)``-multiplication bucket sweep, and the
    whole run costs ``bits`` squarings.  The optimum grows roughly with
    ``log2(count)`` — larger batches amortise larger bucket sweeps.
    """
    if count < 1 or max_exponent_bits < 1:
        return 1
    best_window, best_cost = 1, None
    for window in range(1, _MAX_WINDOW + 1):
        windows = -(-max_exponent_bits // window)  # ceil
        cost = windows * (count + (2 << window)) + max_exponent_bits
        if best_cost is None or cost < best_cost:
            best_window, best_cost = window, cost
        if window >= max_exponent_bits:
            break  # wider windows only grow the sweep
    return best_window


def multi_exponent(
    bases: Sequence[int],
    exponents: Sequence[int],
    modulus: int,
    initial: Optional[int] = None,
    window: Optional[int] = None,
    montgomery: Union[bool, MontgomeryContext] = False,
) -> int:
    """``initial * prod_i bases[i]^exponents[i] mod modulus``, batched.

    Simultaneous multi-exponentiation via the Pippenger bucket method:
    one shared squaring chain for the whole batch instead of one full
    ``pow()`` per element.  Exponents must be non-negative (reduce
    signed scalars into the exponent group first, exactly as the naive
    ``ciphertext_scale`` loop does); zero exponents are skipped and
    exponent 1 is a plain multiplication, matching the naive loop's
    fast paths so results agree bit for bit.

    Args:
        bases: batch of bases (ciphertexts), each in ``[0, modulus)``.
        exponents: matching non-negative exponents (weights).
        modulus: the ciphertext modulus (``n^2`` for Paillier).
        initial: running partial product to fold the batch into.
        window: bucket window width in bits; default adapts to the
            batch via :func:`select_window`.
        montgomery: run the bucket folds in Montgomery form — pass
            ``True`` (a context is built for ``modulus``, which must be
            odd) or a prebuilt
            :class:`~repro.crypto.montgomery.MontgomeryContext`.  The
            result is bit-for-bit identical either way; the calibration
            pass decides per key size whether the domain switch pays
            (see ``docs/performance.md``).

    Returns:
        The product as a plain int in ``[0, modulus)``.
    """
    if len(bases) != len(exponents):
        raise ParameterError(
            "base/exponent length mismatch: %d vs %d"
            % (len(bases), len(exponents))
        )
    if modulus < 2:
        raise ParameterError("modulus must be at least 2")
    acc = 1 if initial is None else initial % modulus

    # Split off the trivial exponents: 0 contributes nothing, 1 is one
    # multiplication — neither should pay for a bucket pass.
    pairs: List = []
    max_bits = 0
    for base, exponent in zip(bases, exponents):
        if exponent < 0:
            raise ParameterError(
                "exponents must be non-negative (got %d); reduce into "
                "the exponent group first" % exponent
            )
        if exponent == 0:
            continue
        if exponent == 1:
            acc = acc * base % modulus
            continue
        pairs.append((base, exponent))
        bits = exponent.bit_length()
        if bits > max_bits:
            max_bits = bits
    if not pairs:
        return acc

    if window is None:
        window = select_window(len(pairs), max_bits)
    elif window < 1:
        raise ParameterError("window must be positive")

    if montgomery:
        context = (
            montgomery
            if isinstance(montgomery, MontgomeryContext)
            else MontgomeryContext(modulus)
        )
        if context.modulus != modulus:
            raise ParameterError(
                "Montgomery context modulus does not match the fold modulus"
            )
        result = _bucket_fold_montgomery(pairs, max_bits, window, context)
    else:
        result = _bucket_fold(pairs, modulus, max_bits, window)
    return acc * result % modulus


def _bucket_fold(
    pairs: Sequence[Tuple[int, int]], modulus: int, max_bits: int, window: int
) -> int:
    """The Pippenger bucket fold with builtin ``%`` reductions."""
    mask = (1 << window) - 1
    num_windows = -(-max_bits // window)  # ceil
    result = 1
    for win in range(num_windows - 1, -1, -1):
        shift = win * window
        # Bucket pass: bases sharing a window digit share one slot.
        buckets = [1] * (mask + 1)
        for base, exponent in pairs:
            digit = (exponent >> shift) & mask
            if digit:
                buckets[digit] = buckets[digit] * base % modulus
        # Sweep: sum_d d * B_d via running suffix products, so the whole
        # window costs at most 2 * 2^window multiplications.
        running = 1
        window_product = 1
        for digit in range(mask, 0, -1):
            bucket = buckets[digit]
            if bucket != 1:
                running = running * bucket % modulus
            if running != 1:
                window_product = window_product * running % modulus
        if win != num_windows - 1:
            for _ in range(window):
                result = result * result % modulus
        if window_product != 1:
            result = result * window_product % modulus
    return result


def _bucket_fold_montgomery(
    pairs: Sequence[Tuple[int, int]],
    max_bits: int,
    window: int,
    context: MontgomeryContext,
) -> int:
    """The same bucket fold carried in the Montgomery domain.

    Bases are converted in once, the buckets/sweep/squaring chain run on
    Montgomery residues (three multiplications per REDC, no division),
    and the single final conversion brings the product back.  Bit-for-bit
    equal to :func:`_bucket_fold` by construction.
    """
    mont_pairs = [
        (context.to_mont(base), exponent) for base, exponent in pairs
    ]
    one = context.r
    mul = context.mul
    mask = (1 << window) - 1
    num_windows = -(-max_bits // window)  # ceil
    result = one
    for win in range(num_windows - 1, -1, -1):
        shift = win * window
        buckets = [one] * (mask + 1)
        for base, exponent in mont_pairs:
            digit = (exponent >> shift) & mask
            if digit:
                buckets[digit] = mul(buckets[digit], base)
        running = one
        window_product = one
        for digit in range(mask, 0, -1):
            bucket = buckets[digit]
            if bucket != one:
                running = mul(running, bucket)
            if running != one:
                window_product = mul(window_product, running)
        if win != num_windows - 1:
            for _ in range(window):
                result = mul(result, result)
        if window_product != one:
            result = mul(result, window_product)
    return context.from_mont(result)


class FixedBaseTable:
    """Windowed precomputation for exponentiations of one fixed base.

    Stores ``base^(d * 2^(i*window))`` for every window position ``i``
    and digit ``d``, so :meth:`pow` needs only one table lookup and one
    modular multiplication per window — no squarings.  For a 512-bit
    exponent at window 6 that is ~86 multiplications versus the ~768 of
    a full square-and-multiply, and the table builds in one pass of
    ``entries`` multiplications that amortises after a few dozen uses.

    Used per public key: Paillier's obfuscator exponent ``n`` is fixed,
    so ``r^n = (h^n)^x`` for ``r = h^x`` turns every obfuscator into a
    fixed-base power of the precomputed ``g = h^n mod n^2`` (see
    :meth:`repro.crypto.paillier.RandomnessPool`).
    """

    __slots__ = ("base", "modulus", "exponent_bits", "window", "entries", "_rows")

    #: Default window width: builds fast enough to amortise within ~20
    #: uses at 512-bit keys while staying within ~6x of a full pow().
    DEFAULT_WINDOW = 6

    def __init__(
        self,
        base: int,
        modulus: int,
        exponent_bits: int,
        window: Optional[int] = None,
    ) -> None:
        if modulus < 2:
            raise ParameterError("modulus must be at least 2")
        if exponent_bits < 1:
            raise ParameterError("exponent_bits must be positive")
        window = self.DEFAULT_WINDOW if window is None else window
        if not 1 <= window <= _MAX_WINDOW:
            raise ParameterError(
                "window must be in 1..%d, got %d" % (_MAX_WINDOW, window)
            )
        self.base = base % modulus
        self.modulus = modulus
        self.exponent_bits = exponent_bits
        self.window = window
        self._rows: List[List[int]] = []
        slots = 1 << window
        step = self.base
        for _ in range(-(-exponent_bits // window)):
            row = [1] * slots
            row[1] = step
            for digit in range(2, slots):
                row[digit] = row[digit - 1] * step % modulus
            self._rows.append(row)
            # Advance to base^(2^((i+1)*window)) for the next row.
            step = row[slots - 1] * step % modulus
        self.entries = len(self._rows) * (slots - 1)

    @classmethod
    def from_rows(
        cls,
        base: int,
        modulus: int,
        exponent_bits: int,
        window: int,
        rows: List[List[int]],
    ) -> "FixedBaseTable":
        """Rebuild a table from previously exported rows.

        The persistence path (:class:`repro.store.state.StateStore`)
        round-trips tables through this constructor so a warm restart
        pays zero recomputation — the whole point of persisting the
        precomputation.  Shape is validated; entry *values* are trusted
        (the store lives in the key owner's trust domain).
        """
        if modulus < 2:
            raise ParameterError("modulus must be at least 2")
        if exponent_bits < 1:
            raise ParameterError("exponent_bits must be positive")
        if not 1 <= window <= _MAX_WINDOW:
            raise ParameterError(
                "window must be in 1..%d, got %d" % (_MAX_WINDOW, window)
            )
        slots = 1 << window
        expected_rows = -(-exponent_bits // window)  # ceil
        if len(rows) != expected_rows or any(len(row) != slots for row in rows):
            raise ParameterError(
                "table shape mismatch: want %d rows of %d slots"
                % (expected_rows, slots)
            )
        table = cls.__new__(cls)
        table.base = base % modulus
        table.modulus = modulus
        table.exponent_bits = exponent_bits
        table.window = window
        table._rows = [list(row) for row in rows]
        table.entries = len(table._rows) * (slots - 1)
        return table

    def export_rows(self) -> List[List[int]]:
        """A copy of the precomputed rows, for persistence."""
        return [list(row) for row in self._rows]

    @property
    def capacity(self) -> int:
        """Exclusive upper bound on exponents :meth:`pow` accepts."""
        return 1 << self.exponent_bits

    def pow(self, exponent: int) -> int:
        """``base ** exponent % modulus`` from the table (no squarings)."""
        if not 0 <= exponent < self.capacity:
            raise ParameterError(
                "exponent outside [0, 2^%d)" % self.exponent_bits
            )
        mask = (1 << self.window) - 1
        modulus = self.modulus
        result = 1
        row_index = 0
        while exponent:
            digit = exponent & mask
            if digit:
                result = result * self._rows[row_index][digit] % modulus
            exponent >>= self.window
            row_index += 1
        return result

    def __repr__(self) -> str:
        return "FixedBaseTable(exponent_bits=%d, window=%d, entries=%d)" % (
            self.exponent_bits,
            self.window,
            self.entries,
        )
