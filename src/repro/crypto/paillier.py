"""The Paillier cryptosystem (Paillier, EUROCRYPT 1999).

This is the cryptosystem the paper implements: semantically secure,
additively homomorphic public-key encryption.  For public key
``n = p * q`` (distinct equal-size primes) and generator ``g = n + 1``:

* ``Encrypt(m; r) = g^m * r^n mod n^2`` with random ``r`` in Z*_n.
  With ``g = n + 1`` this simplifies to ``(1 + m*n) * r^n mod n^2``,
  replacing one full modular exponentiation with a multiplication.
* ``Decrypt(c) = L(c^lambda mod n^2) * mu mod n`` where
  ``L(u) = (u - 1) / n``.  We implement the standard CRT acceleration,
  decrypting mod ``p^2`` and ``q^2`` separately (~4x faster).

The homomorphic identities the selected-sum protocol relies on::

    E(a) * E(b) mod n^2 = E(a + b mod n)
    E(a) ^ k   mod n^2 = E(a * k mod n)

Two layers of API are provided:

* :class:`PaillierScheme` — the hook-style interface protocols consume
  (plain-int ciphertexts, explicit public key argument).
* :class:`EncryptedNumber` — an ergonomic wrapper supporting ``+`` and
  ``*`` with operator overloading and signed plaintexts, for library
  users writing statistics code.

A :class:`RandomnessPool` implements the precomputation the paper's §3.3
optimization needs at the crypto layer: the expensive part of encryption
is ``r^n mod n^2``, which does not depend on the plaintext and can be
computed offline.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.crypto.multiexp import FixedBaseTable, multi_exponent
from repro.crypto.ntheory import bytes_for_bits, modinv, crt_pair
from repro.crypto.primes import random_prime_pair
from repro.crypto.rng import RandomSource, as_random_source
from repro.crypto.scheme import AdditiveHomomorphicScheme, SchemeKeyPair
from repro.crypto.serialization import ciphertext_bytes, decode_int, encode_int
from repro.exceptions import (
    DecryptionError,
    EncryptionError,
    KeyGenerationError,
    KeyMismatchError,
)

__all__ = [
    "PaillierPublicKey",
    "PaillierPrivateKey",
    "PaillierScheme",
    "EncryptedNumber",
    "RandomnessPool",
    "generate_keypair",
]

DEFAULT_KEY_BITS = 512  # the paper's key size


class PaillierPublicKey:
    """Paillier public key: the modulus ``n`` (with ``g = n + 1`` fixed).

    Attributes:
        n: the RSA-style modulus ``p * q``.
        nsquare: ``n ** 2``, the ciphertext modulus.
        max_int: largest magnitude representable by the signed encoding
            (``n // 3 - 1``); see :meth:`encode_signed`.
    """

    __slots__ = ("n", "nsquare", "bits", "max_int")

    def __init__(self, n: int) -> None:
        if n < 6:
            raise KeyGenerationError("Paillier modulus too small: %d" % n)
        self.n = n
        self.nsquare = n * n
        self.bits = n.bit_length()
        self.max_int = n // 3 - 1

    # -- raw operations ---------------------------------------------------

    def raw_encrypt(self, plaintext: int, r_to_n: int) -> int:
        """Encrypt with precomputed obfuscator ``r_to_n = r^n mod n^2``.

        ``plaintext`` must already be reduced into ``[0, n)``.
        """
        if not 0 <= plaintext < self.n:
            raise EncryptionError(
                "plaintext %d outside [0, n); encode it first" % plaintext
            )
        # g^m = (1 + n)^m = 1 + m*n (mod n^2)
        g_to_m = (1 + plaintext * self.n) % self.nsquare
        return g_to_m * r_to_n % self.nsquare

    def obfuscator(self, rng: Optional[RandomSource] = None) -> int:
        """Draw ``r`` uniformly from Z*_n and return ``r^n mod n^2``.

        This single exponentiation is the dominant cost of encryption and
        the quantity the §3.3 preprocessing optimization computes offline.
        """
        source = as_random_source(rng)
        while True:
            r = source.randrange(1, self.n)
            # gcd(r, n) != 1 happens with negligible probability for real
            # keys but is cheap to guard against (and matters for the tiny
            # keys the unit tests use).
            if math.gcd(r, self.n) == 1:
                return pow(r, self.n, self.nsquare)

    def encrypt_raw(self, plaintext: int, rng: Optional[RandomSource] = None) -> int:
        """One-shot raw encryption: fresh obfuscator + :meth:`raw_encrypt`."""
        return self.raw_encrypt(plaintext % self.n, self.obfuscator(rng))

    # -- signed plaintext encoding -----------------------------------------

    def encode_signed(self, value: int) -> int:
        """Map a signed integer into Z_n.

        Values in ``[0, max_int]`` map to themselves; values in
        ``[-max_int, 0)`` map to the top of the range.  The middle third
        of Z_n is left unused so overflow is detectable on decode.
        """
        if abs(value) > self.max_int:
            raise EncryptionError(
                "value %d exceeds signed capacity +/-%d" % (value, self.max_int)
            )
        return value % self.n

    def decode_signed(self, encoded: int) -> int:
        """Inverse of :meth:`encode_signed`; rejects overflowed values."""
        if not 0 <= encoded < self.n:
            raise DecryptionError("encoded value outside Z_n")
        if encoded <= self.max_int:
            return encoded
        if encoded >= self.n - self.max_int:
            return encoded - self.n
        raise DecryptionError(
            "decoded plaintext fell in the overflow gap; "
            "an addition or scaling overflowed the signed range"
        )

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the public key (just n, big-endian)."""
        return encode_int(self.n, bytes_for_bits(self.bits))

    @classmethod
    def from_bytes(cls, data: bytes) -> "PaillierPublicKey":
        """Parse an untrusted serialized key, rejecting degenerate moduli."""
        if not data:
            raise KeyGenerationError("empty public key serialization")
        n = decode_int(data)
        if n <= 1:
            raise KeyGenerationError(
                "public modulus must exceed 1, got %d" % n
            )
        return cls(n)

    def ciphertext_to_bytes(self, ciphertext: int) -> bytes:
        """Serialize a ciphertext to its fixed wire width."""
        return encode_int(ciphertext, ciphertext_bytes(self.bits))

    def ciphertext_from_bytes(self, data: bytes) -> int:
        """Parse a wire ciphertext, validating membership in Z*_{n^2}.

        Zero is rejected along with ``c >= n^2``: no honest encryption
        produces it, and folding it into an aggregate silently zeroes
        the whole product.  ``gcd(c, n) != 1`` is rejected for the same
        reason (matching :func:`repro.spfe.validation.check_ciphertext`):
        honest encryptions are always units of Z_{n^2}, and a non-unit
        either poisons the aggregate or leaks a factor of ``n``.
        """
        value = decode_int(data)
        if not 0 < value < self.nsquare:
            raise DecryptionError("ciphertext outside Z*_{n^2}")
        if math.gcd(value, self.n) != 1:
            raise DecryptionError("ciphertext shares a factor with the modulus")
        return value

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PaillierPublicKey) and self.n == other.n

    def __hash__(self) -> int:
        return hash(("paillier-pk", self.n))

    def __repr__(self) -> str:
        return "PaillierPublicKey(bits=%d)" % self.bits


class PaillierPrivateKey:
    """Paillier private key with CRT-accelerated decryption.

    Holds the prime factors ``p`` and ``q`` of the public modulus and the
    per-prime decryption constants; ``decrypt`` runs the two half-size
    exponentiations and recombines via the Chinese remainder theorem.
    """

    __slots__ = (
        "public_key",
        "p",
        "q",
        "_psquare",
        "_qsquare",
        "_hp",
        "_hq",
        "_ep",
        "_eq",
        "_inv_psquare",
    )

    def __init__(self, public_key: PaillierPublicKey, p: int, q: int) -> None:
        if p * q != public_key.n:
            raise KeyGenerationError("p * q does not match the public modulus")
        if p == q:
            raise KeyGenerationError("p and q must be distinct")
        self.public_key = public_key
        self.p = p
        self.q = q
        self._psquare = p * p
        self._qsquare = q * q
        self._hp = self._h(p, self._psquare)
        self._hq = self._h(q, self._qsquare)
        # CRT-split *encryption* constants: the obfuscator r^n can be
        # computed mod p^2 and q^2 with exponents reduced mod the group
        # exponents lambda(p^2) = p(p-1) and lambda(q^2) = q(q-1), then
        # recombined.  modinv(p^2, q^2) is hoisted here because crt_pair
        # would otherwise recompute it on every single encryption.
        self._ep = public_key.n % (p * (p - 1))
        self._eq = public_key.n % (q * (q - 1))
        self._inv_psquare = modinv(self._psquare, self._qsquare)

    def _h(self, prime: int, prime_sq: int) -> int:
        # h = L_prime(g^{prime-1} mod prime^2)^{-1} mod prime, g = n + 1
        g_exp = pow(1 + self.public_key.n, prime - 1, prime_sq)
        return modinv((g_exp - 1) // prime, prime)

    def raw_decrypt(self, ciphertext: int) -> int:
        """Decrypt a raw ciphertext int to its representative in [0, n)."""
        if not 0 <= ciphertext < self.public_key.nsquare:
            raise DecryptionError("ciphertext outside Z_{n^2}")
        mp = (pow(ciphertext, self.p - 1, self._psquare) - 1) // self.p
        mp = mp * self._hp % self.p
        mq = (pow(ciphertext, self.q - 1, self._qsquare) - 1) // self.q
        mq = mq * self._hq % self.q
        return crt_pair(mp, self.p, mq, self.q)

    def decrypt_signed(self, ciphertext: int) -> int:
        """Decrypt and decode through the signed encoding."""
        return self.public_key.decode_signed(self.raw_decrypt(ciphertext))

    # -- CRT-split encryption (key-owning clients) -------------------------

    def obfuscator_from_r(self, r: int) -> int:
        """``r^n mod n^2`` via two half-size exponentiations.

        The key owner knows ``p`` and ``q``, so the full-width
        exponentiation :meth:`PaillierPublicKey.obfuscator` pays for can
        be split: ``r^n mod p^2`` with the exponent reduced mod
        ``lambda(p^2) = p(p-1)`` (valid because ``gcd(r, n) = 1``),
        likewise mod ``q^2``, then one Garner recombination.  Half-width
        operands make each half ~4x cheaper, for a measured ~1.4x
        end-to-end encryption speedup at 512-bit keys
        (``docs/performance.md`` § CRT-split encryption).  The result is
        bit-for-bit the same obfuscator, so ciphertexts are byte-identical
        to the public-key path.
        """
        cp = pow(r % self._psquare, self._ep, self._psquare)
        cq = pow(r % self._qsquare, self._eq, self._qsquare)
        return cp + self._psquare * ((cq - cp) * self._inv_psquare % self._qsquare)

    def encrypt_raw_crt(
        self, plaintext: int, rng: Optional[RandomSource] = None
    ) -> int:
        """One-shot raw encryption through the CRT split.

        Draws ``r`` exactly as :meth:`PaillierPublicKey.obfuscator` does
        (same rejection loop, same RNG consumption), so with the same
        seeded source this produces *byte-identical* ciphertexts to
        ``public_key.encrypt_raw`` — only faster.  The property suite in
        ``tests/crypto/test_paillier.py`` pins that equality.
        """
        source = as_random_source(rng)
        public = self.public_key
        while True:
            r = source.randrange(1, public.n)
            if math.gcd(r, public.n) == 1:
                break
        return public.raw_encrypt(plaintext % public.n, self.obfuscator_from_r(r))

    def __repr__(self) -> str:
        return "PaillierPrivateKey(bits=%d)" % self.public_key.bits


def generate_keypair(
    bits: int = DEFAULT_KEY_BITS,
    rng: Union[RandomSource, bytes, str, int, None] = None,
) -> SchemeKeyPair:
    """Generate a Paillier key pair with an (approximately) ``bits``-bit n.

    Args:
        bits: modulus size; the paper uses 512.
        rng: a :class:`~repro.crypto.rng.RandomSource`, or a seed value for
            deterministic generation in tests/benches, or None for secure
            randomness.

    Returns:
        :class:`~repro.crypto.scheme.SchemeKeyPair` of
        (:class:`PaillierPublicKey`, :class:`PaillierPrivateKey`).
    """
    if bits < 16:
        raise KeyGenerationError("key size %d too small (minimum 16)" % bits)
    source = as_random_source(rng)
    p, q = random_prime_pair(bits // 2, source)
    public = PaillierPublicKey(p * q)
    return SchemeKeyPair(public, PaillierPrivateKey(public, p, q))


class RandomnessPool:
    """Pool of precomputed encryption obfuscators (``r^n mod n^2``).

    The modular exponentiation ``r^n`` dominates Paillier encryption and
    is independent of the plaintext, so it can be computed offline — this
    is the crypto-level half of the paper's §3.3 preprocessing
    optimization (the protocol-level half, pre-encrypted index bits,
    lives in :mod:`repro.spfe.preprocessing`).

    The pool refills on demand; :attr:`misses` counts how many
    obfuscators had to be computed online, which the timing layer uses to
    charge online vs offline cost correctly.

    With ``fixed_base=True`` the pool draws obfuscators through a
    per-key :class:`~repro.crypto.multiexp.FixedBaseTable`: a random
    ``h`` is fixed once, ``g = h^n mod n^2`` is precomputed in windowed
    form, and each obfuscator is ``g^x`` for fresh random ``x`` — table
    lookups and multiplications only, ~6x faster than a full ``pow``.
    (``g^x = (h^x mod n)^n mod n^2``, so these are exact Paillier
    obfuscators; the randomness ``r = h^x`` ranges over the subgroup
    generated by ``h`` rather than all of Z*_n — ``docs/performance.md``
    discusses the assumption.)

    The pool is thread-safe: ``take``/``precompute``/``len`` may be
    called from concurrent sessions (e.g. under a
    :class:`~repro.crypto.engine.CryptoEngine`-backed server), and the
    ``generated``/``misses`` accounting stays exact under concurrent
    drains.  Draws from the shared RNG also happen under the lock — an
    HMAC-DRBG mutates state on every draw and is not itself
    thread-safe.
    """

    def __init__(
        self,
        public_key: PaillierPublicKey,
        rng: Union[RandomSource, bytes, str, int, None] = None,
        fixed_base: bool = False,
        window: Optional[int] = None,
        table: Optional[FixedBaseTable] = None,
    ) -> None:
        if table is not None and table.modulus != public_key.nsquare:
            raise KeyMismatchError(
                "injected fixed-base table modulus does not match n^2"
            )
        self.public_key = public_key
        self._rng = as_random_source(rng)
        self._pool: List[int] = []
        self._lock = threading.Lock()
        self._fixed_base = fixed_base or table is not None
        self._window = window
        self._table: Optional[FixedBaseTable] = table
        self.generated = 0
        self.misses = 0
        #: obfuscators restored from a persistent store (warm start),
        #: counted separately from ``generated`` so cost accounting can
        #: tell offline-this-process from offline-a-previous-process.
        self.restored = 0

    def _ensure_table_locked(self) -> FixedBaseTable:
        """Build the per-key fixed-base table once; caller holds the lock."""
        if self._table is None:
            public = self.public_key
            while True:
                h = self._rng.randrange(2, public.n)
                if math.gcd(h, public.n) == 1:
                    break
            self._table = FixedBaseTable(
                pow(h, public.n, public.nsquare),
                public.nsquare,
                public.bits,
                self._window,
            )
        return self._table

    def _draw_residues_locked(self, count: int) -> List[int]:
        """Draw ``count`` residues from Z*_n; caller holds the lock.

        Only the RNG consumption needs the lock (an HMAC-DRBG mutates
        state per draw); the expensive ``r^n`` exponentiations happen
        outside it in :meth:`_compute_batch`.
        """
        public = self.public_key
        values: List[int] = []
        for _ in range(count):
            while True:
                candidate = self._rng.randrange(1, public.n)
                if math.gcd(candidate, public.n) == 1:
                    break
            values.append(candidate)
        return values

    def _obfuscator_locked(self) -> int:
        """One obfuscator; caller holds the lock (RNG state is shared)."""
        if not self._fixed_base:
            return pow(
                self._draw_residues_locked(1)[0],
                self.public_key.n,
                self.public_key.nsquare,
            )
        table = self._ensure_table_locked()
        return table.pow(self._rng.randrange(1, table.capacity))

    def _compute_batch(self, count: int) -> List[int]:
        """``count`` fresh obfuscators, exponentiating OUTSIDE the lock.

        Generate-then-swap: the lock is held only for the (cheap) RNG
        draws, the dominant modular exponentiations run unlocked, and
        the caller swaps the finished batch in under one short critical
        section.  Concurrent ``take()`` callers therefore never stall
        behind a large refill — the regression test in
        ``tests/crypto/test_paillier.py`` hammers exactly this.
        """
        if count <= 0:
            return []
        if self._fixed_base:
            with self._lock:
                table = self._ensure_table_locked()
                exponents = [
                    self._rng.randrange(1, table.capacity) for _ in range(count)
                ]
            return [table.pow(x) for x in exponents]
        public = self.public_key
        with self._lock:
            residues = self._draw_residues_locked(count)
        return [pow(r, public.n, public.nsquare) for r in residues]

    #: Obfuscators computed per lock-swap during a refill; bounds how
    #: stale a concurrent ``len()``/``take()`` view of a refill can be.
    REFILL_BATCH = 32

    def precompute(self, count: int) -> None:
        """Generate ``count`` obfuscators now (the offline phase).

        Refills land in :attr:`REFILL_BATCH`-sized swaps so concurrent
        consumers see the pool grow incrementally instead of blocking on
        one long critical section.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        remaining = count
        while remaining > 0:
            batch = self._compute_batch(min(remaining, self.REFILL_BATCH))
            remaining -= len(batch)
            with self._lock:
                self._pool.extend(batch)
                self.generated += len(batch)

    def ensure(self, count: int) -> None:
        """Top the pool up to at least ``count`` pooled obfuscators."""
        if count < 0:
            raise ValueError("count must be non-negative")
        with self._lock:
            shortfall = count - len(self._pool)
        if shortfall > 0:
            self.precompute(shortfall)

    def take(self) -> int:
        """Pop one obfuscator, computing it on the spot if the pool is dry."""
        with self._lock:
            if self._pool:
                return self._pool.pop()
            self.misses += 1
        # Dry pool: compute the miss outside the lock as well, so an
        # unlucky consumer never serialises the others behind a pow().
        return self._compute_batch(1)[0]

    def take_many(self, count: int) -> List[int]:
        """Pop ``count`` obfuscators, computing any shortfall on the spot.

        The batched draw the engine's rerandomisation path uses: one
        lock round-trip for the pooled portion, and misses are computed
        unlocked in one batch rather than one ``take()`` at a time.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        with self._lock:
            available = min(count, len(self._pool))
            taken = self._pool[len(self._pool) - available :]
            del self._pool[len(self._pool) - available :]
            taken.reverse()  # match take()'s LIFO pop order
            shortfall = count - available
            self.misses += shortfall
        if shortfall:
            taken.extend(self._compute_batch(shortfall))
        return taken

    def __len__(self) -> int:
        with self._lock:
            return len(self._pool)

    # -- persistence hooks (see repro.store.state.StateStore) -------------

    def restore(self, obfuscators: Iterable[int]) -> None:
        """Refill the pool from obfuscators persisted by an earlier run.

        The caller (the state store) guarantees single-use semantics:
        restored values were removed from durable storage before being
        handed here, so no obfuscator can be restored twice.
        """
        values = list(obfuscators)
        with self._lock:
            self._pool.extend(values)
            self.restored += len(values)

    def export_obfuscators(self) -> List[int]:
        """Drain and return every unused pooled obfuscator.

        Draining (rather than copying) keeps single-use semantics: once
        exported for persistence, an obfuscator is no longer available
        in this process.
        """
        with self._lock:
            values, self._pool = self._pool, []
        return values

    def export_table(self) -> Optional[FixedBaseTable]:
        """The pool's fixed-base table, if one has been built yet."""
        with self._lock:
            return self._table


class EncryptedNumber:
    """A Paillier ciphertext with operator sugar and signed plaintexts.

    Supports ``enc + enc``, ``enc + int``, ``enc * int``, ``-enc``,
    ``enc - enc``; all operations stay on ciphertexts.  Adding a plain
    integer encrypts it with a *deterministic* obfuscator of 1 (no fresh
    randomness is needed because the sum is rerandomized by the encrypted
    operand); call :meth:`obfuscate` before sending a result over a
    channel if the recipient must not learn the operand structure.
    """

    __slots__ = ("public_key", "ciphertext", "is_obfuscated")

    def __init__(
        self,
        public_key: PaillierPublicKey,
        ciphertext: int,
        is_obfuscated: bool = False,
    ) -> None:
        self.public_key = public_key
        self.ciphertext = ciphertext % public_key.nsquare
        self.is_obfuscated = is_obfuscated

    # -- construction -----------------------------------------------------

    @classmethod
    def encrypt(
        cls,
        public_key: PaillierPublicKey,
        value: int,
        rng: Union[RandomSource, bytes, str, int, None] = None,
        pool: Optional[RandomnessPool] = None,
    ) -> "EncryptedNumber":
        """Encrypt a signed integer, drawing randomness from ``pool`` if given."""
        encoded = public_key.encode_signed(value)
        if pool is not None:
            obfuscator = pool.take()
        else:
            obfuscator = public_key.obfuscator(as_random_source(rng))
        return cls(public_key, public_key.raw_encrypt(encoded, obfuscator), True)

    # -- homomorphic operations --------------------------------------------

    def __add__(
        self, other: Union["EncryptedNumber", int]
    ) -> "EncryptedNumber":
        if isinstance(other, EncryptedNumber):
            self._check_key(other)
            product = self.ciphertext * other.ciphertext % self.public_key.nsquare
            return EncryptedNumber(
                self.public_key,
                product,
                self.is_obfuscated or other.is_obfuscated,
            )
        if isinstance(other, int):
            encoded = self.public_key.encode_signed(other)
            plain_cipher = (1 + encoded * self.public_key.n) % self.public_key.nsquare
            product = self.ciphertext * plain_cipher % self.public_key.nsquare
            return EncryptedNumber(self.public_key, product, self.is_obfuscated)
        return NotImplemented

    __radd__ = __add__

    def __mul__(self, scalar: int) -> "EncryptedNumber":
        if not isinstance(scalar, int):
            return NotImplemented
        encoded = self.public_key.encode_signed(scalar)
        return EncryptedNumber(
            self.public_key,
            pow(self.ciphertext, encoded, self.public_key.nsquare),
            self.is_obfuscated,
        )

    __rmul__ = __mul__

    def __neg__(self) -> "EncryptedNumber":
        return self * -1

    def __sub__(self, other: Union["EncryptedNumber", int]) -> "EncryptedNumber":
        if not isinstance(other, (EncryptedNumber, int)):
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other: int) -> "EncryptedNumber":
        return (-self) + other

    def obfuscate(
        self, rng: Union[RandomSource, bytes, str, int, None] = None
    ) -> "EncryptedNumber":
        """Multiply in a fresh encryption of zero (rerandomization)."""
        fresh = self.public_key.obfuscator(as_random_source(rng))
        return EncryptedNumber(
            self.public_key,
            self.ciphertext * fresh % self.public_key.nsquare,
            True,
        )

    # -- decryption ----------------------------------------------------------

    def decrypt(self, private_key: PaillierPrivateKey) -> int:
        """Decrypt with the matching private key (signed decode)."""
        if private_key.public_key != self.public_key:
            raise KeyMismatchError("private key does not match ciphertext key")
        return private_key.decrypt_signed(self.ciphertext)

    # -- helpers ------------------------------------------------------------

    def _check_key(self, other: "EncryptedNumber") -> None:
        if self.public_key != other.public_key:
            raise KeyMismatchError(
                "cannot combine ciphertexts under different public keys"
            )

    def __repr__(self) -> str:
        return "EncryptedNumber(bits=%d, obfuscated=%s)" % (
            self.public_key.bits,
            self.is_obfuscated,
        )


class PaillierScheme(AdditiveHomomorphicScheme):
    """Hook-style Paillier implementation of the scheme interface.

    Ciphertexts are plain ints; the public key argument is a
    :class:`PaillierPublicKey`.  Protocol code in :mod:`repro.spfe` uses
    this interface so it can also run against
    :class:`repro.crypto.simulated.SimulatedPaillier`.

    The two batch hooks are kernel-backed: :meth:`weighted_product`
    runs the :func:`~repro.crypto.multiexp.multi_exponent` bucket
    kernel (one shared squaring chain for the whole batch) unless
    ``use_multiexp=False`` restores the naive per-element loop, and an
    optional :class:`~repro.crypto.engine.CryptoEngine` parallelises
    both vector encryption and aggregation across processes.
    """

    name = "paillier"

    def __init__(
        self,
        engine: Optional[object] = None,
        use_multiexp: bool = True,
        pool: Optional[RandomnessPool] = None,
    ) -> None:
        #: optional :class:`~repro.crypto.engine.CryptoEngine` (duck-typed
        #: so this module never imports the engine; None = in-process)
        self.engine = engine
        self.use_multiexp = use_multiexp
        #: optional :class:`RandomnessPool` batched rerandomisation draws
        #: obfuscators from (the persistent §3.3 offline tier)
        self.pool = pool

    def generate(
        self, bits: int = DEFAULT_KEY_BITS, rng: Union[RandomSource, bytes, str, int, None] = None
    ) -> SchemeKeyPair:
        """Generate a key pair (scheme-interface hook)."""
        return generate_keypair(bits, rng)

    def plaintext_modulus(self, public: PaillierPublicKey) -> int:
        """The plaintext modulus M (scheme-interface hook)."""
        return public.n

    def ciphertext_size_bytes(self, public: PaillierPublicKey) -> int:
        """Wire size of one ciphertext in bytes (scheme-interface hook)."""
        return ciphertext_bytes(public.bits)

    def encrypt(
        self,
        public: PaillierPublicKey,
        plaintext: int,
        rng: Union[RandomSource, bytes, str, int, None] = None,
    ) -> int:
        """Encrypt a plaintext into a fresh ciphertext (scheme-interface hook)."""
        return public.encrypt_raw(plaintext, as_random_source(rng))

    def decrypt(self, private: PaillierPrivateKey, ciphertext: int) -> int:
        """Decrypt a ciphertext to its representative in [0, M) (scheme-interface hook)."""
        return private.raw_decrypt(ciphertext)

    def ciphertext_add(self, public: PaillierPublicKey, a: int, b: int) -> int:
        """Homomorphic addition of two ciphertexts (scheme-interface hook)."""
        return a * b % public.nsquare

    def ciphertext_scale(self, public: PaillierPublicKey, a: int, scalar: int) -> int:
        """Homomorphic scalar multiplication (scheme-interface hook)."""
        return pow(a, scalar % public.n, public.nsquare)

    def identity(self, public: PaillierPublicKey) -> int:
        """A deterministic encryption of zero (scheme-interface hook)."""
        return 1

    def rerandomize(
        self,
        public: PaillierPublicKey,
        a: int,
        rng: Union[RandomSource, bytes, str, int, None] = None,
    ) -> int:
        """Refresh a ciphertext's randomness, preserving the plaintext (scheme-interface hook)."""
        return a * public.obfuscator(as_random_source(rng)) % public.nsquare

    # -- kernel-backed batch hooks ----------------------------------------

    def encrypt_vector(
        self,
        public: PaillierPublicKey,
        plaintexts: Sequence[int],
        rng: Union[RandomSource, bytes, str, int, None] = None,
    ) -> Tuple[int, ...]:
        """Encrypt a plaintext vector, through the engine when one is set."""
        if self.engine is not None and self.engine.supports_key(public):
            return self.engine.encrypt_vector(public, plaintexts, rng)
        return super().encrypt_vector(public, plaintexts, rng)

    def rerandomize_vector(
        self,
        public: PaillierPublicKey,
        ciphertexts: Sequence[int],
        rng: Union[RandomSource, bytes, str, int, None] = None,
    ) -> Tuple[int, ...]:
        """Batched rerandomisation, pooled and engine-backed when possible.

        With an engine configured, the whole vector goes through one
        :meth:`~repro.crypto.engine.CryptoEngine.rerandomize_vector`
        call; a matching :class:`RandomnessPool` supplies precomputed
        obfuscators in one batched drain.  Falls back to the per-element
        base path otherwise.
        """
        pool = (
            self.pool
            if self.pool is not None and self.pool.public_key == public
            else None
        )
        if self.engine is not None and self.engine.supports_key(public):
            return self.engine.rerandomize_vector(
                public, ciphertexts, rng, pool=pool
            )
        if pool is not None:
            nsquare = public.nsquare
            return tuple(
                ct * ob % nsquare
                for ct, ob in zip(
                    ciphertexts, pool.take_many(len(ciphertexts))
                )
            )
        return super().rerandomize_vector(public, ciphertexts, rng)

    def weighted_product(
        self,
        public: PaillierPublicKey,
        ciphertexts: Sequence[int],
        weights: Sequence[int],
        initial: Optional[int] = None,
    ) -> int:
        """The server aggregate ``prod_i c_i^{w_i} mod n^2``, batched.

        Runs the simultaneous-multiexp bucket kernel (weights reduced
        into Z_n exactly as ``ciphertext_scale`` does, so the result is
        bit-for-bit the naive loop's); a configured engine partitions
        the batch across worker processes as well.
        """
        if not self.use_multiexp and self.engine is None:
            return super().weighted_product(public, ciphertexts, weights, initial)
        if len(ciphertexts) != len(weights):
            raise ValueError("ciphertext/weight length mismatch")
        if self.engine is not None:
            return self.engine.weighted_product(
                public.nsquare, public.n, ciphertexts, weights, initial
            )
        return multi_exponent(
            ciphertexts,
            [w % public.n for w in weights],
            public.nsquare,
            initial=initial,
        )
