"""Exponential (additively homomorphic) ElGamal over a Schnorr group.

This scheme is included as an *ablation comparator* for Paillier
(DESIGN.md §4): it satisfies the same homomorphic identities —

    E(a) (*) E(b) = E(a + b),    E(a)^k = E(a * k)

— but stores the plaintext in the exponent (``g^m``), so decryption
requires solving a discrete logarithm.  That is fine for small sums and
hopeless for the 32-bit values the paper's databases hold, which is
exactly the point the ablation bench quantifies: scheme choice is not
incidental, Paillier's full-range decryption is what makes the private
sum protocol practical.

Group: a safe prime ``p = 2q + 1`` with generator ``g`` of the order-q
subgroup (quadratic residues).  Decryption recovers ``m`` from ``g^m``
with baby-step/giant-step, bounded by a caller-supplied ``max_plaintext``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from repro.crypto.ntheory import bytes_for_bits, isqrt, modinv
from repro.crypto.primes import is_probable_prime, random_safe_prime
from repro.crypto.rng import RandomSource, as_random_source
from repro.crypto.scheme import AdditiveHomomorphicScheme, SchemeKeyPair
from repro.exceptions import DecryptionError, KeyGenerationError

__all__ = [
    "ElGamalPublicKey",
    "ElGamalPrivateKey",
    "ExponentialElGamalScheme",
    "generate_elgamal_keypair",
    "SchnorrGroup",
]

# A couple of precomputed safe-prime groups so tests and benches don't pay
# safe-prime generation on every run (generation is supported but slow).
# Both verified prime at import time in the test suite.
_PRECOMPUTED_SAFE_PRIMES: Dict[int, int] = {
    256: 0xE83F5153C75CD6B890673E4447DBFD90B719B31094EB7CDA450894E54A7148EF,
    128: 0x9371FF50DF71B104AC59E05D2CDB6113,
}


class SchnorrGroup:
    """The order-q subgroup of Z*_p for a safe prime p = 2q + 1."""

    __slots__ = ("p", "q", "g")

    def __init__(self, p: int, g: Optional[int] = None) -> None:
        if p % 2 == 0 or not is_probable_prime(p):
            raise KeyGenerationError("p must be an odd prime")
        q = (p - 1) // 2
        if not is_probable_prime(q):
            raise KeyGenerationError("p must be a safe prime (q = (p-1)/2 prime)")
        self.p = p
        self.q = q
        self.g = g if g is not None else self._find_generator()

    def _find_generator(self) -> int:
        # Any quadratic residue != 1 generates the order-q subgroup.
        for base in (2, 3, 5, 7, 11, 13):
            candidate = base * base % self.p
            if candidate != 1:
                return candidate
        raise KeyGenerationError("no generator found")  # pragma: no cover

    def random_exponent(self, rng: RandomSource) -> int:
        """A uniform exponent in [1, q) (secret keys, blinding)."""
        return rng.randrange(1, self.q)

    def contains(self, element: int) -> bool:
        """Subgroup membership test: x^q == 1 (mod p)."""
        return 0 < element < self.p and pow(element, self.q, self.p) == 1


class ElGamalPublicKey:
    """Public key ``h = g^x`` over a :class:`SchnorrGroup`."""

    __slots__ = ("group", "h")

    def __init__(self, group: SchnorrGroup, h: int) -> None:
        self.group = group
        self.h = h

    def encrypt_raw(
        self, plaintext: int, rng: Optional[RandomSource] = None
    ) -> Tuple[int, int]:
        """Encrypt ``plaintext`` (mod q) as ``(g^r, g^m * h^r)``."""
        source = as_random_source(rng)
        r = self.group.random_exponent(source)
        g, p = self.group.g, self.group.p
        c1 = pow(g, r, p)
        c2 = pow(g, plaintext % self.group.q, p) * pow(self.h, r, p) % p
        return c1, c2

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ElGamalPublicKey)
            and self.group.p == other.group.p
            and self.h == other.h
        )

    def __hash__(self) -> int:
        return hash(("elgamal-pk", self.group.p, self.h))


class ElGamalPrivateKey:
    """Private exponent ``x`` with a bounded discrete-log decryptor."""

    __slots__ = ("public_key", "x", "_bsgs_table", "_bsgs_stride")

    def __init__(self, public_key: ElGamalPublicKey, x: int) -> None:
        self.public_key = public_key
        self.x = x
        self._bsgs_table: Optional[Dict[int, int]] = None
        self._bsgs_stride = 0

    def decrypt_raw(
        self, ciphertext: Tuple[int, int], max_plaintext: int
    ) -> int:
        """Recover ``m`` from ``(c1, c2)`` assuming ``0 <= m <= max_plaintext``.

        Cost is O(sqrt(max_plaintext)) group operations (baby-step /
        giant-step) — this is the scheme's fundamental limitation that
        the ablation bench measures.
        """
        c1, c2 = ciphertext
        p = self.public_key.group.p
        g_to_m = c2 * modinv(pow(c1, self.x, p), p) % p
        return self._discrete_log(g_to_m, max_plaintext)

    def _discrete_log(self, target: int, bound: int) -> int:
        g = self.public_key.group.g
        p = self.public_key.group.p
        stride = isqrt(bound) + 1
        if self._bsgs_table is None or self._bsgs_stride < stride:
            table: Dict[int, int] = {}
            e = 1
            for j in range(stride):
                table.setdefault(e, j)
                e = e * g % p
            self._bsgs_table = table
            self._bsgs_stride = stride
        giant = modinv(pow(g, stride, p), p)
        gamma = target
        for i in range(stride + 1):
            j = self._bsgs_table.get(gamma)
            if j is not None and i * stride + j <= bound:
                return i * stride + j
            gamma = gamma * giant % p
        raise DecryptionError(
            "plaintext exceeds discrete-log bound %d" % bound
        )


def generate_elgamal_keypair(
    bits: int = 256,
    rng: Union[RandomSource, bytes, str, int, None] = None,
    group: Optional[SchnorrGroup] = None,
) -> SchemeKeyPair:
    """Generate an exponential-ElGamal key pair.

    Uses a precomputed safe-prime group when one of the right size is
    available (256 or 128 bits), otherwise generates a fresh safe prime —
    correct but slow, so tests stick to the precomputed sizes.
    """
    source = as_random_source(rng)
    if group is None:
        if bits in _PRECOMPUTED_SAFE_PRIMES:
            group = SchnorrGroup(_PRECOMPUTED_SAFE_PRIMES[bits])
        else:
            group = SchnorrGroup(random_safe_prime(bits, source))
    x = group.random_exponent(source)
    public = ElGamalPublicKey(group, pow(group.g, x, group.p))
    return SchemeKeyPair(public, ElGamalPrivateKey(public, x))


class ExponentialElGamalScheme(AdditiveHomomorphicScheme):
    """Scheme-interface adapter for exponential ElGamal.

    Ciphertexts are ``(c1, c2)`` pairs.  ``decrypt`` is bounded by
    :attr:`max_plaintext`, which callers must size to the largest sum the
    protocol can produce.
    """

    name = "exp-elgamal"

    def __init__(self, max_plaintext: int = 1 << 20) -> None:
        if max_plaintext < 1:
            raise ValueError("max_plaintext must be positive")
        self.max_plaintext = max_plaintext

    def generate(self, bits: int = 256, rng: Union[RandomSource, bytes, str, int, None] = None) -> SchemeKeyPair:
        """Generate a key pair (scheme-interface hook)."""
        return generate_elgamal_keypair(bits, rng)

    def plaintext_modulus(self, public: ElGamalPublicKey) -> int:
        """The plaintext modulus M (scheme-interface hook)."""
        return public.group.q

    def ciphertext_size_bytes(self, public: ElGamalPublicKey) -> int:
        """Wire size of one ciphertext in bytes (scheme-interface hook)."""
        return 2 * bytes_for_bits(public.group.p.bit_length())

    def encrypt(
        self,
        public: ElGamalPublicKey,
        plaintext: int,
        rng: Union[RandomSource, bytes, str, int, None] = None,
    ) -> Tuple[int, int]:
        """Encrypt a plaintext into a fresh ciphertext (scheme-interface hook)."""
        return public.encrypt_raw(plaintext, as_random_source(rng))

    def decrypt(self, private: ElGamalPrivateKey, ciphertext: Tuple[int, int]) -> int:
        """Decrypt a ciphertext to its representative in [0, M) (scheme-interface hook)."""
        return private.decrypt_raw(ciphertext, self.max_plaintext)

    def ciphertext_add(
        self, public: ElGamalPublicKey, a: Tuple[int, int], b: Tuple[int, int]
    ) -> Tuple[int, int]:
        """Homomorphic addition of two ciphertexts (scheme-interface hook)."""
        p = public.group.p
        return (a[0] * b[0] % p, a[1] * b[1] % p)

    def ciphertext_scale(
        self, public: ElGamalPublicKey, a: Tuple[int, int], scalar: int
    ) -> Tuple[int, int]:
        """Homomorphic scalar multiplication (scheme-interface hook)."""
        p = public.group.p
        k = scalar % public.group.q
        return (pow(a[0], k, p), pow(a[1], k, p))

    def identity(self, public: ElGamalPublicKey) -> Tuple[int, int]:
        """A deterministic encryption of zero (scheme-interface hook)."""
        return (1, 1)

    def rerandomize(
        self,
        public: ElGamalPublicKey,
        a: Tuple[int, int],
        rng: Union[RandomSource, bytes, str, int, None] = None,
    ) -> Tuple[int, int]:
        """Refresh a ciphertext's randomness, preserving the plaintext (scheme-interface hook)."""
        zero = public.encrypt_raw(0, as_random_source(rng))
        return self.ciphertext_add(public, a, zero)
