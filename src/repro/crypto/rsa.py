"""Minimal RSA: the trapdoor permutation underlying the EGL oblivious
transfer (:mod:`repro.ot.egl`).

This is *textbook* RSA on purpose — the oblivious-transfer construction
needs the raw trapdoor permutation ``x -> x^e mod n`` and its inverse,
not a padded encryption scheme.  It must not be used for general-purpose
encryption.  Private operations use the standard CRT speedup.
"""

from __future__ import annotations

from typing import Union

from repro.crypto.ntheory import crt_pair, modinv
from repro.crypto.primes import random_prime_pair
from repro.crypto.rng import RandomSource, as_random_source
from repro.crypto.scheme import SchemeKeyPair
from repro.exceptions import KeyGenerationError

__all__ = ["RSAPublicKey", "RSAPrivateKey", "generate_rsa_keypair"]

_DEFAULT_E = 65537


class RSAPublicKey:
    """RSA public key ``(n, e)`` exposing the raw permutation."""

    __slots__ = ("n", "e")

    def __init__(self, n: int, e: int = _DEFAULT_E) -> None:
        self.n = n
        self.e = e

    def apply(self, x: int) -> int:
        """The trapdoor permutation: ``x^e mod n``."""
        return pow(x % self.n, self.e, self.n)

    def random_element(self, rng: Union[RandomSource, None] = None) -> int:
        """A uniform element of Z_n (good enough for OT blinding)."""
        return as_random_source(rng).randbelow(self.n)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RSAPublicKey) and (self.n, self.e) == (other.n, other.e)

    def __hash__(self) -> int:
        return hash(("rsa-pk", self.n, self.e))


class RSAPrivateKey:
    """RSA private key with CRT-accelerated inversion."""

    __slots__ = ("public_key", "p", "q", "d", "_dp", "_dq")

    def __init__(self, public_key: RSAPublicKey, p: int, q: int, d: int) -> None:
        if p * q != public_key.n:
            raise KeyGenerationError("p * q does not match the public modulus")
        self.public_key = public_key
        self.p = p
        self.q = q
        self.d = d
        self._dp = d % (p - 1)
        self._dq = d % (q - 1)

    def invert(self, y: int) -> int:
        """The trapdoor inverse: ``y^d mod n`` via CRT."""
        mp = pow(y % self.p, self._dp, self.p)
        mq = pow(y % self.q, self._dq, self.q)
        return crt_pair(mp, self.p, mq, self.q)


def generate_rsa_keypair(
    bits: int = 512,
    rng: Union[RandomSource, bytes, str, int, None] = None,
    e: int = _DEFAULT_E,
) -> SchemeKeyPair:
    """Generate an RSA key pair with a ``bits``-bit modulus."""
    if bits < 32:
        raise KeyGenerationError("RSA modulus of %d bits is too small" % bits)
    source = as_random_source(rng)
    while True:
        p, q = random_prime_pair(bits // 2, source)
        phi = (p - 1) * (q - 1)
        try:
            d = modinv(e, phi)
        except ValueError:
            continue  # e shares a factor with phi; redraw primes
        public = RSAPublicKey(p * q, e)
        return SchemeKeyPair(public, RSAPrivateKey(public, p, q, d))
