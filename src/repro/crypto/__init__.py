"""Cryptographic substrate: number theory, primes, and the cryptosystems.

The package is self-contained — pure Python on built-in big integers, no
``gmpy2``/``phe``/OpenSSL — and provides everything the protocols in
:mod:`repro.spfe` and the Yao baseline in :mod:`repro.yao` need:

* :mod:`repro.crypto.paillier` — the paper's cryptosystem (the default).
* :mod:`repro.crypto.elgamal` — exponential ElGamal, an ablation comparator.
* :mod:`repro.crypto.goldwasser_micali` — GM bit encryption.
* :mod:`repro.crypto.rsa` — the trapdoor permutation for oblivious transfer.
* :mod:`repro.crypto.simulated` — the cost-modelled Paillier stand-in.
* :mod:`repro.crypto.multiexp` — batch exponentiation kernels
  (simultaneous multiexp, fixed-base windowed tables).
* :mod:`repro.crypto.engine` — multi-process execution engine fanning
  the kernels out over cores.
"""

from repro.crypto.damgard_jurik import DamgardJurikScheme, generate_dj_keypair
from repro.crypto.engine import CryptoEngine
from repro.crypto.multiexp import FixedBaseTable, multi_exponent
from repro.crypto.paillier import (
    EncryptedNumber,
    PaillierPrivateKey,
    PaillierPublicKey,
    PaillierScheme,
    RandomnessPool,
    generate_keypair,
)
from repro.crypto.rng import DeterministicRandom, RandomSource, SecureRandom
from repro.crypto.scheme import AdditiveHomomorphicScheme, SchemeKeyPair
from repro.crypto.simulated import SimulatedPaillier

__all__ = [
    "AdditiveHomomorphicScheme",
    "CryptoEngine",
    "DamgardJurikScheme",
    "DeterministicRandom",
    "EncryptedNumber",
    "FixedBaseTable",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "PaillierScheme",
    "RandomSource",
    "RandomnessPool",
    "SchemeKeyPair",
    "SecureRandom",
    "SimulatedPaillier",
    "generate_dj_keypair",
    "generate_keypair",
    "multi_exponent",
]
