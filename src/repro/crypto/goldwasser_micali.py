"""The Goldwasser–Micali cryptosystem (bit encryption, XOR-homomorphic).

GM is the historical first semantically secure cryptosystem and is
included both for completeness of the crypto substrate and because its
quadratic-residuosity machinery independently exercises the Jacobi /
Blum-prime code paths the rest of the library depends on.

* Public key: Blum modulus ``n = p * q`` (p, q ≡ 3 mod 4) and a
  pseudo-residue ``z`` (Jacobi symbol +1, but a non-residue).
* ``Encrypt(b; r) = z^b * r^2 mod n`` — a random residue for b = 0 and a
  random pseudo-residue for b = 1.
* ``Decrypt(c)``: c is a residue iff the bit is 0, decided via Euler's
  criterion modulo p.
* Homomorphism: ``E(a) * E(b) = E(a XOR b)`` — multiplication of
  ciphertexts flips residuosity like XOR flips bits.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.crypto.ntheory import jacobi
from repro.crypto.primes import random_blum_prime
from repro.crypto.rng import RandomSource, as_random_source
from repro.crypto.scheme import SchemeKeyPair
from repro.exceptions import DecryptionError, EncryptionError, KeyGenerationError

__all__ = [
    "GMPublicKey",
    "GMPrivateKey",
    "generate_gm_keypair",
    "encrypt_bits",
    "decrypt_bits",
]


class GMPublicKey:
    """GM public key ``(n, z)`` with ``z`` a Jacobi-(+1) non-residue."""

    __slots__ = ("n", "z")

    def __init__(self, n: int, z: int) -> None:
        if jacobi(z, n) != 1:
            raise KeyGenerationError("z must have Jacobi symbol +1")
        self.n = n
        self.z = z

    def encrypt_bit(self, bit: int, rng: Optional[RandomSource] = None) -> int:
        """Encrypt one bit: a random residue (0) or pseudo-residue (1)."""
        if bit not in (0, 1):
            raise EncryptionError("GM encrypts single bits, got %r" % (bit,))
        source = as_random_source(rng)
        while True:
            r = source.randrange(1, self.n)
            if _gcd(r, self.n) == 1:
                break
        c = r * r % self.n
        if bit:
            c = c * self.z % self.n
        return c

    def xor(self, a: int, b: int) -> int:
        """Homomorphic XOR: multiply ciphertexts."""
        return a * b % self.n

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GMPublicKey) and (self.n, self.z) == (other.n, other.z)

    def __hash__(self) -> int:
        return hash(("gm-pk", self.n, self.z))


class GMPrivateKey:
    """GM private key: the factorization of the Blum modulus."""

    __slots__ = ("public_key", "p", "q")

    def __init__(self, public_key: GMPublicKey, p: int, q: int) -> None:
        if p * q != public_key.n:
            raise KeyGenerationError("p * q does not match the public modulus")
        self.public_key = public_key
        self.p = p
        self.q = q

    def decrypt_bit(self, ciphertext: int) -> int:
        """0 if the ciphertext is a quadratic residue mod p, else 1."""
        if not 0 < ciphertext < self.public_key.n:
            raise DecryptionError("ciphertext outside Z*_n")
        legendre = pow(ciphertext, (self.p - 1) // 2, self.p)
        if legendre == 1:
            return 0
        if legendre == self.p - 1:
            return 1
        raise DecryptionError("ciphertext shares a factor with the modulus")


def generate_gm_keypair(
    bits: int = 256,
    rng: Union[RandomSource, bytes, str, int, None] = None,
) -> SchemeKeyPair:
    """Generate a GM key pair with a ``bits``-bit Blum modulus.

    With p ≡ q ≡ 3 (mod 4), the element ``n - 1`` (= -1 mod n) has
    Jacobi symbol +1 but is a non-residue — the canonical choice of z.
    """
    source = as_random_source(rng)
    p = random_blum_prime(bits // 2, source)
    q = random_blum_prime(bits // 2, source)
    while q == p:
        q = random_blum_prime(bits // 2, source)
    n = p * q
    public = GMPublicKey(n, n - 1)
    return SchemeKeyPair(public, GMPrivateKey(public, p, q))


def encrypt_bits(
    public: GMPublicKey, bits: List[int], rng: Optional[RandomSource] = None
) -> List[int]:
    """Encrypt a bit vector (convenience for tests and docs)."""
    source = as_random_source(rng)
    return [public.encrypt_bit(b, source) for b in bits]


def decrypt_bits(private: GMPrivateKey, ciphertexts: List[int]) -> List[int]:
    """Decrypt a vector of GM ciphertexts."""
    return [private.decrypt_bit(c) for c in ciphertexts]


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
