"""Canonical wire encodings for integers, keys, and ciphertexts.

The network layer (:mod:`repro.net`) accounts for every byte a protocol
moves, so the library needs one authoritative answer to "how big is this
message".  These helpers define that answer: fixed-width big-endian
integer fields sized by the key parameters, plus small framing headers.

The encodings are also genuinely invertible — the test suite round-trips
keys and ciphertexts through bytes — so the sizes reported to the
performance model are the sizes a real deployment would ship.
"""

from __future__ import annotations

import struct
from typing import Optional, Sequence, Tuple

from repro.crypto.ntheory import bytes_for_bits

__all__ = [
    "encode_int",
    "decode_int",
    "encode_int_seq",
    "decode_int_seq",
    "pack_int_vector",
    "unpack_int_vector",
    "ciphertext_bytes",
    "public_key_bytes",
    "frame_overhead_bytes",
]

_LENGTH_FIELD = struct.Struct(">I")

#: Self-describing packed-vector header: magic, version, element width
#: (bytes), element count.  Used by the crypto engine to ship integer
#: vectors to worker processes as one flat buffer instead of a pickled
#: list of Python ints.
_VECTOR_HEADER = struct.Struct(">2sBII")
_VECTOR_MAGIC = b"RV"
_VECTOR_VERSION = 1

#: Bytes of framing added around each protocol message (a 4-byte type tag
#: plus a 4-byte length field — mirrors a minimal TCP application framing).
FRAME_HEADER_BYTES = 8


def encode_int(value: int, width: int) -> bytes:
    """Encode a non-negative integer into exactly ``width`` big-endian bytes."""
    if value < 0:
        raise ValueError("cannot encode negative integer %d" % value)
    return value.to_bytes(width, "big")


def decode_int(data: bytes) -> int:
    """Decode a big-endian unsigned integer from bytes."""
    return int.from_bytes(data, "big")


def encode_int_seq(values: Tuple[int, ...], width: int) -> bytes:
    """Encode a sequence of equal-width integers with a count prefix."""
    parts = [_LENGTH_FIELD.pack(len(values))]
    parts.extend(encode_int(v, width) for v in values)
    return b"".join(parts)


def decode_int_seq(data: bytes, width: int) -> Tuple[int, ...]:
    """Inverse of :func:`encode_int_seq`."""
    (count,) = _LENGTH_FIELD.unpack_from(data, 0)
    expected = _LENGTH_FIELD.size + count * width
    if len(data) != expected:
        raise ValueError(
            "encoded sequence has %d bytes, expected %d" % (len(data), expected)
        )
    offset = _LENGTH_FIELD.size
    return tuple(
        decode_int(data[offset + i * width : offset + (i + 1) * width])
        for i in range(count)
    )


def pack_int_vector(values: Sequence[int], width: Optional[int] = None) -> bytes:
    """Pack non-negative integers into one self-describing byte buffer.

    The layout is a fixed header (magic, version, element width in
    bytes, element count) followed by ``count`` big-endian fields of
    exactly ``width`` bytes.  ``width=None`` sizes the fields to the
    largest element.  This is the length-prefixed codec the
    :class:`~repro.crypto.engine.CryptoEngine` warm workers receive
    work through: a packed buffer pickles as a near-memcpy ``bytes``
    object, where a list of big ints costs a per-element encode on
    every dispatch.
    """
    if width is None:
        width = 1
        for value in values:
            if value < 0:
                raise ValueError("cannot pack negative integer %d" % value)
            width = max(width, (value.bit_length() + 7) // 8)
    elif width < 1:
        raise ValueError("width must be positive, got %d" % width)
    header = _VECTOR_HEADER.pack(
        _VECTOR_MAGIC, _VECTOR_VERSION, width, len(values)
    )
    parts = [header]
    parts.extend(value.to_bytes(width, "big") for value in values)
    return b"".join(parts)


def unpack_int_vector(blob: bytes) -> Tuple[int, ...]:
    """Inverse of :func:`pack_int_vector`; validates the header exactly."""
    if len(blob) < _VECTOR_HEADER.size:
        raise ValueError("packed vector truncated: %d bytes" % len(blob))
    magic, version, width, count = _VECTOR_HEADER.unpack_from(blob, 0)
    if magic != _VECTOR_MAGIC:
        raise ValueError("bad packed-vector magic %r" % magic)
    if version != _VECTOR_VERSION:
        raise ValueError("unsupported packed-vector version %d" % version)
    expected = _VECTOR_HEADER.size + width * count
    if len(blob) != expected:
        raise ValueError(
            "packed vector has %d bytes, header promises %d"
            % (len(blob), expected)
        )
    offset = _VECTOR_HEADER.size
    return tuple(
        int.from_bytes(blob[offset + i * width : offset + (i + 1) * width], "big")
        for i in range(count)
    )


def ciphertext_bytes(modulus_bits: int) -> int:
    """Wire size of one Paillier ciphertext for an n of ``modulus_bits`` bits.

    Paillier ciphertexts live in Z*_{n^2}, i.e. ``2 * modulus_bits`` bits.
    With the paper's 512-bit keys a ciphertext is 128 bytes.
    """
    return bytes_for_bits(2 * modulus_bits)


def public_key_bytes(modulus_bits: int) -> int:
    """Wire size of a serialized Paillier public key (just n; g = n+1)."""
    return bytes_for_bits(modulus_bits)


def frame_overhead_bytes() -> int:
    """Framing bytes added per protocol message."""
    return FRAME_HEADER_BYTES
