"""Canonical wire encodings for integers, keys, and ciphertexts.

The network layer (:mod:`repro.net`) accounts for every byte a protocol
moves, so the library needs one authoritative answer to "how big is this
message".  These helpers define that answer: fixed-width big-endian
integer fields sized by the key parameters, plus small framing headers.

The encodings are also genuinely invertible — the test suite round-trips
keys and ciphertexts through bytes — so the sizes reported to the
performance model are the sizes a real deployment would ship.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.crypto.ntheory import bytes_for_bits

__all__ = [
    "encode_int",
    "decode_int",
    "encode_int_seq",
    "decode_int_seq",
    "ciphertext_bytes",
    "public_key_bytes",
    "frame_overhead_bytes",
]

_LENGTH_FIELD = struct.Struct(">I")

#: Bytes of framing added around each protocol message (a 4-byte type tag
#: plus a 4-byte length field — mirrors a minimal TCP application framing).
FRAME_HEADER_BYTES = 8


def encode_int(value: int, width: int) -> bytes:
    """Encode a non-negative integer into exactly ``width`` big-endian bytes."""
    if value < 0:
        raise ValueError("cannot encode negative integer %d" % value)
    return value.to_bytes(width, "big")


def decode_int(data: bytes) -> int:
    """Decode a big-endian unsigned integer from bytes."""
    return int.from_bytes(data, "big")


def encode_int_seq(values: Tuple[int, ...], width: int) -> bytes:
    """Encode a sequence of equal-width integers with a count prefix."""
    parts = [_LENGTH_FIELD.pack(len(values))]
    parts.extend(encode_int(v, width) for v in values)
    return b"".join(parts)


def decode_int_seq(data: bytes, width: int) -> Tuple[int, ...]:
    """Inverse of :func:`encode_int_seq`."""
    (count,) = _LENGTH_FIELD.unpack_from(data, 0)
    expected = _LENGTH_FIELD.size + count * width
    if len(data) != expected:
        raise ValueError(
            "encoded sequence has %d bytes, expected %d" % (len(data), expected)
        )
    offset = _LENGTH_FIELD.size
    return tuple(
        decode_int(data[offset + i * width : offset + (i + 1) * width])
        for i in range(count)
    )


def ciphertext_bytes(modulus_bits: int) -> int:
    """Wire size of one Paillier ciphertext for an n of ``modulus_bits`` bits.

    Paillier ciphertexts live in Z*_{n^2}, i.e. ``2 * modulus_bits`` bits.
    With the paper's 512-bit keys a ciphertext is 128 bytes.
    """
    return bytes_for_bits(2 * modulus_bits)


def public_key_bytes(modulus_bits: int) -> int:
    """Wire size of a serialized Paillier public key (just n; g = n+1)."""
    return bytes_for_bits(modulus_bits)


def frame_overhead_bytes() -> int:
    """Framing bytes added per protocol message."""
    return FRAME_HEADER_BYTES
