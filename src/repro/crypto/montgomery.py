"""Montgomery-form modular arithmetic (REDC) for the crypto kernels.

Montgomery multiplication replaces the division inside ``a * b % n``
with shifts and masks: operands are carried as residues ``aR mod n``
for ``R = 2^k > n``, and the reduction step ``REDC(t) = t * R^{-1} mod n``
costs three word-aligned multiplications instead of one multiplication
plus one division.  On word-based bignum implementations this is the
classic inner-loop win; CPython's big-int division is itself a tight C
loop, so here the measured balance is close (see
``docs/performance.md`` § Montgomery) — which is exactly why the
:mod:`repro.crypto.calibration` pass *measures* the Montgomery fold
against the builtin operator and only routes to it where it wins,
instead of assuming.

The API is a context object per modulus:

* :class:`MontgomeryContext` precomputes ``R``, ``R^2 mod n`` and
  ``n' = -n^{-1} mod R`` once per modulus (Paillier uses one ciphertext
  modulus ``n^2`` per key, so the setup amortises over every fold).
* :meth:`MontgomeryContext.redc` is the reduction primitive,
  :meth:`~MontgomeryContext.mul` multiplies two Montgomery residues,
  :meth:`~MontgomeryContext.pow` is a windowed exponentiation carried
  entirely in Montgomery form.

Every operation is bit-for-bit compatible with the ``pow``/``%``
operators it replaces — the property suite in
``tests/crypto/test_montgomery.py`` asserts equality exhaustively —
so :func:`~repro.crypto.multiexp.multi_exponent` can switch domains
per call without perturbing the serial==parallel determinism guarantee.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import ParameterError

__all__ = ["MontgomeryContext"]

#: Window width for :meth:`MontgomeryContext.pow` (16-entry table).
_POW_WINDOW = 4


class MontgomeryContext:
    """Precomputed Montgomery constants for one odd modulus.

    Attributes:
        modulus: the (odd) modulus ``n``.
        shift: ``k`` such that ``R = 2^k`` is the smallest byte-aligned
            power of two above ``n``.
        r: ``R mod n`` — the Montgomery representation of 1.
        r2: ``R^2 mod n`` — multiplier that converts into the domain.
    """

    __slots__ = ("modulus", "shift", "mask", "r", "r2", "n_prime")

    def __init__(self, modulus: int) -> None:
        if modulus < 3:
            raise ParameterError("Montgomery modulus must be at least 3")
        if modulus % 2 == 0:
            raise ParameterError("Montgomery arithmetic requires an odd modulus")
        self.modulus = modulus
        # byte-aligned R keeps the masks/shifts on limb boundaries
        self.shift = (modulus.bit_length() + 7) // 8 * 8
        r_full = 1 << self.shift
        self.mask = r_full - 1
        self.r = r_full % modulus
        self.r2 = r_full * r_full % modulus
        # n' = -n^{-1} mod R; exists because gcd(n, R) = 1 for odd n
        self.n_prime = (-pow(modulus, -1, r_full)) & self.mask

    # -- domain conversion -------------------------------------------------

    def to_mont(self, value: int) -> int:
        """Map ``value`` into the Montgomery domain (``value * R mod n``)."""
        return self.redc((value % self.modulus) * self.r2)

    def from_mont(self, mont: int) -> int:
        """Map a Montgomery residue back to the ordinary domain."""
        return self.redc(mont)

    # -- core arithmetic ---------------------------------------------------

    def redc(self, t: int) -> int:
        """Montgomery reduction: ``t * R^{-1} mod n`` for ``t < n * R``."""
        m = ((t & self.mask) * self.n_prime) & self.mask
        reduced = (t + m * self.modulus) >> self.shift
        if reduced >= self.modulus:
            reduced -= self.modulus
        return reduced

    def mul(self, a_mont: int, b_mont: int) -> int:
        """Product of two Montgomery residues, still in the domain."""
        t = a_mont * b_mont
        m = ((t & self.mask) * self.n_prime) & self.mask
        reduced = (t + m * self.modulus) >> self.shift
        if reduced >= self.modulus:
            reduced -= self.modulus
        return reduced

    def one(self) -> int:
        """The Montgomery representation of 1 (``R mod n``)."""
        return self.r

    def pow(self, base: int, exponent: int) -> int:
        """``base ** exponent % modulus`` via a windowed Montgomery ladder.

        ``base`` and the result are *ordinary* residues; the squaring
        chain runs entirely in the Montgomery domain.
        """
        if exponent < 0:
            raise ParameterError("exponent must be non-negative")
        if exponent == 0:
            return 1 % self.modulus
        base_m = self.to_mont(base)
        if exponent == 1:
            return self.redc(base_m)
        # 4-bit window table: base^0 .. base^15 in Montgomery form
        table: List[int] = [self.r, base_m]
        for _ in range(2, 1 << _POW_WINDOW):
            table.append(self.mul(table[-1], base_m))
        bits = exponent.bit_length()
        windows = -(-bits // _POW_WINDOW)  # ceil
        acc = self.r
        for index in range(windows - 1, -1, -1):
            if index != windows - 1:
                for _ in range(_POW_WINDOW):
                    acc = self.mul(acc, acc)
            digit = (exponent >> (index * _POW_WINDOW)) & ((1 << _POW_WINDOW) - 1)
            if digit:
                acc = self.mul(acc, table[digit])
        return self.redc(acc)

    def __repr__(self) -> str:
        return "MontgomeryContext(bits=%d)" % self.modulus.bit_length()
