"""Elementary number theory on Python big integers.

These routines are the arithmetic bedrock of every cryptosystem in
:mod:`repro.crypto`.  They are deliberately written against plain Python
``int`` so the library has no dependency on ``gmpy2``; CPython's built-in
``pow(base, exp, mod)`` already uses an efficient windowed exponentiation.

All functions validate their inputs and raise :class:`ValueError` (or a
subclass of :class:`repro.exceptions.ReproError` where appropriate) on
domain errors rather than returning sentinel values.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

__all__ = [
    "egcd",
    "modinv",
    "lcm",
    "crt_pair",
    "crt",
    "jacobi",
    "isqrt",
    "is_perfect_square",
    "int_bit_length",
    "bytes_for_bits",
    "product_mod",
]


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` such that ``a*x + b*y == g == gcd(a, b)``.
    The returned ``g`` is always non-negative.

    >>> egcd(240, 46)
    (2, -9, 47)
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    if old_r < 0:
        old_r, old_x, old_y = -old_r, -old_x, -old_y
    return old_r, old_x, old_y


def modinv(a: int, m: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``m``.

    Raises :class:`ValueError` if ``a`` is not invertible mod ``m`` —
    a condition the Paillier key generator relies on to reject bad moduli.

    >>> modinv(3, 11)
    4
    """
    if m <= 0:
        raise ValueError("modulus must be positive, got %d" % m)
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError("%d is not invertible modulo %d (gcd=%d)" % (a, m, g))
    return x % m


def lcm(a: int, b: int) -> int:
    """Least common multiple of two non-negative integers."""
    if a == 0 or b == 0:
        return 0
    return abs(a // math.gcd(a, b) * b)


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> int:
    """Chinese remainder theorem for two *coprime* moduli.

    Returns the unique ``x`` in ``[0, m1*m2)`` with ``x ≡ r1 (mod m1)``
    and ``x ≡ r2 (mod m2)``.  Used by CRT-accelerated Paillier and RSA
    private-key operations.
    """
    g = math.gcd(m1, m2)
    if g != 1:
        raise ValueError("crt_pair requires coprime moduli (gcd=%d)" % g)
    # x = r1 + m1 * ((r2 - r1) * m1^{-1} mod m2)
    diff = (r2 - r1) % m2
    x = r1 + m1 * (diff * modinv(m1, m2) % m2)
    return x % (m1 * m2)


def crt(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """Chinese remainder theorem for an arbitrary list of coprime moduli.

    >>> crt([2, 3, 2], [3, 5, 7])
    23
    """
    if len(residues) != len(moduli):
        raise ValueError("residues and moduli must have equal length")
    if not moduli:
        raise ValueError("crt requires at least one congruence")
    x, m = residues[0] % moduli[0], moduli[0]
    for r_i, m_i in zip(residues[1:], moduli[1:]):
        x = crt_pair(x, m, r_i, m_i)
        m *= m_i
    return x


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol ``(a/n)`` for odd ``n > 0``.

    Returns -1, 0, or 1.  The Goldwasser–Micali cryptosystem uses this to
    pick pseudo-residues, and the Solovay–Strassen check in the test suite
    uses it as an independent primality oracle.
    """
    if n <= 0 or n % 2 == 0:
        raise ValueError("Jacobi symbol is defined for odd positive n")
    a %= n
    result = 1
    while a != 0:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def isqrt(n: int) -> int:
    """Integer square root (floor) of a non-negative integer."""
    if n < 0:
        raise ValueError("isqrt of negative number")
    return math.isqrt(n)


def is_perfect_square(n: int) -> bool:
    """Whether ``n`` is a perfect square.  Rejects negative inputs as False."""
    if n < 0:
        return False
    r = math.isqrt(n)
    return r * r == n


def int_bit_length(n: int) -> int:
    """Bit length of ``abs(n)``; zero has bit length 0 (as in Python)."""
    return abs(n).bit_length()


def bytes_for_bits(bits: int) -> int:
    """Number of bytes needed to hold ``bits`` bits (at least 1 for bits=0)."""
    if bits < 0:
        raise ValueError("bit count must be non-negative")
    return max(1, (bits + 7) // 8)


def product_mod(values: Iterable[int], modulus: int) -> int:
    """Product of ``values`` reduced modulo ``modulus``.

    This is the server-side aggregation primitive of the selected-sum
    protocol: multiplying homomorphic ciphertexts adds their plaintexts.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    acc = 1 % modulus
    for v in values:
        acc = acc * v % modulus
    return acc
