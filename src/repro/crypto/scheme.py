"""Abstract interface for additively homomorphic encryption schemes.

The selected-sum protocol (paper §2) needs exactly the algebra this
interface captures::

    E(a) (*) E(b)  = E(a + b)          -- ciphertext_add
    E(a) ^ c       = E(a * c)          -- ciphertext_scale

Three implementations exist:

* :class:`repro.crypto.paillier.PaillierScheme` — the real cryptosystem
  the paper uses (and the default).
* :class:`repro.crypto.elgamal.ExponentialElGamalScheme` — an ablation
  comparator with discrete-log-limited decryption.
* :class:`repro.crypto.simulated.SimulatedPaillier` — a semantics-
  preserving stand-in with cost accounting, used to run paper-scale
  experiments quickly (see DESIGN.md §3).

Protocols in :mod:`repro.spfe` are written against this interface only,
so any of the three can be swapped in without touching protocol code —
which is precisely how the benches run the same protocol logic at
n = 100,000 that the tests verify with real cryptography at n = 1,000.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

__all__ = ["AdditiveHomomorphicScheme", "SchemeKeyPair"]


class SchemeKeyPair:
    """A (public, private) key pair produced by a scheme's ``generate``."""

    __slots__ = ("public", "private")

    def __init__(self, public: Any, private: Any) -> None:
        self.public = public
        self.private = private

    def __iter__(self) -> Any:
        return iter((self.public, self.private))

    def __repr__(self) -> str:
        return "SchemeKeyPair(public=%r)" % (self.public,)


class AdditiveHomomorphicScheme:
    """Additively homomorphic public-key encryption, abstractly.

    Concrete schemes expose plain-int ciphertext handles via these hooks
    (the richer :class:`~repro.crypto.paillier.EncryptedNumber` API sits on
    top for library users).  Protocol code uses the hook form because it
    maps one-to-one onto cost-model events.
    """

    #: Short machine-readable scheme name (used in reports and benches).
    name: str = "abstract"

    # -- key management -------------------------------------------------

    def generate(self, bits: int, rng: Any = None) -> SchemeKeyPair:
        """Generate a key pair with a ``bits``-bit modulus."""
        raise NotImplementedError

    def plaintext_modulus(self, public: Any) -> int:
        """The modulus M the plaintext group Z_M lives in (paper's M)."""
        raise NotImplementedError

    def ciphertext_size_bytes(self, public: Any) -> int:
        """Wire size of one ciphertext under ``public``, in bytes."""
        raise NotImplementedError

    # -- core operations -------------------------------------------------

    def encrypt(self, public: Any, plaintext: int, rng: Any = None) -> Any:
        """Encrypt ``plaintext`` (reduced into Z_M) under ``public``."""
        raise NotImplementedError

    def decrypt(self, private: Any, ciphertext: Any) -> int:
        """Decrypt to the representative in ``[0, M)``."""
        raise NotImplementedError

    def ciphertext_add(self, public: Any, a: Any, b: Any) -> Any:
        """Homomorphic addition: a ciphertext of ``D(a) + D(b)``."""
        raise NotImplementedError

    def ciphertext_scale(self, public: Any, a: Any, scalar: int) -> Any:
        """Homomorphic scalar multiply: a ciphertext of ``D(a) * scalar``."""
        raise NotImplementedError

    def identity(self, public: Any) -> Any:
        """A (deterministic) ciphertext of zero — the product identity."""
        raise NotImplementedError

    def rerandomize(self, public: Any, a: Any, rng: Any = None) -> Any:
        """Fresh randomness on an existing ciphertext (same plaintext)."""
        raise NotImplementedError

    # -- convenience -----------------------------------------------------

    def encrypt_vector(
        self, public: Any, plaintexts: Sequence[int], rng: Any = None
    ) -> Tuple[Any, ...]:
        """Encrypt a sequence of plaintexts (the client's index vector)."""
        return tuple(self.encrypt(public, m, rng) for m in plaintexts)

    def weighted_product(
        self,
        public: Any,
        ciphertexts: Sequence[Any],
        weights: Sequence[int],
        initial: Optional[Any] = None,
    ) -> Any:
        """The server-side aggregation of the selected-sum protocol.

        Computes ``prod_i c_i ^ w_i`` — i.e. a ciphertext of
        ``sum_i D(c_i) * w_i`` — skipping zero weights, starting from
        ``initial`` (a running partial product) if given.
        """
        if len(ciphertexts) != len(weights):
            raise ValueError("ciphertext/weight length mismatch")
        acc = self.identity(public) if initial is None else initial
        for c, w in zip(ciphertexts, weights):
            if w == 0:
                continue
            term = c if w == 1 else self.ciphertext_scale(public, c, w)
            acc = self.ciphertext_add(public, acc, term)
        return acc

    def rerandomize_vector(
        self, public: Any, ciphertexts: Sequence[Any], rng: Any = None
    ) -> Tuple[Any, ...]:
        """Refresh the randomness of a ciphertext vector.

        The default is one :meth:`rerandomize` per element; schemes with
        batch infrastructure (Paillier through a
        :class:`~repro.crypto.engine.CryptoEngine` and its obfuscator
        pool) override this with a pooled batch path.
        """
        return tuple(self.rerandomize(public, c, rng) for c in ciphertexts)
