"""Multi-core execution engine for the crypto kernels.

CPython's big-int ``pow`` holds the GIL, so threads cannot speed up the
two hot paths (client vector encryption, server aggregation) — real
parallelism needs processes.  :class:`CryptoEngine` partitions both
paths into chunks and fans the chunks out over a
``concurrent.futures.ProcessPoolExecutor``:

* ``encrypt_vector`` — each chunk is encrypted by a worker process
  running the same deterministic kernel as the serial path.
* ``weighted_product`` — each chunk runs the
  :func:`~repro.crypto.multiexp.multi_exponent` bucket kernel; the
  parent multiplies the partial products together.

**Determinism.**  Chunking depends only on the input length and
``chunk_size`` — never on the worker count — and every chunk derives an
independent HMAC-DRBG seed from the caller's randomness source *before*
any work is dispatched.  A seeded run therefore produces identical
ciphertexts whether it executes serially, on 2 workers, or on 32, which
the engine tests assert byte for byte.

**Fallback.**  ``workers <= 1``, a pool that cannot start (restricted
containers), or a pool that breaks mid-run all degrade to running the
identical chunk kernels in-process — same results, one core.  The pool
is created lazily on first parallel call and torn down by
:meth:`close` (a context manager exit works too);
:class:`~repro.net.server.SpfeServer` closes an engine it was given as
part of its drain path.

**Thread safety.**  One engine is shared by every worker thread of a
concurrent :class:`~repro.net.server.SpfeServer`, so all shared pool
state — lazy pool creation, the ``pool_broken`` flag, batch counters,
the fixed-base generator cache — is mutated only under an internal
lock.  ``seclint`` (rule SEC004) enforces this mechanically.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.crypto.multiexp import FixedBaseTable, multi_exponent
from repro.crypto.rng import RandomSource, as_random_source
from repro.exceptions import ParameterError
from repro.obs.registry import Counter, Histogram, MetricsRegistry

__all__ = ["CryptoEngine", "DEFAULT_CHUNK_SIZE"]

#: Elements per dispatched chunk.  Large enough that a 512-bit chunk
#: costs hundreds of milliseconds (amortising process round-trips and
#: per-chunk table builds), small enough to load-balance a pool.
DEFAULT_CHUNK_SIZE = 512

#: Seed width for per-chunk DRBGs (HMAC-SHA256 state size).
_CHUNK_SEED_BYTES = 32


# -- chunk kernels (top-level so ProcessPoolExecutor can pickle them) ---------


def _encrypt_chunk(
    n: int,
    plaintexts: Sequence[int],
    seed: bytes,
    fixed_base_h: Optional[int],
    exponent_bits: int,
    window: Optional[int],
) -> List[int]:
    """Encrypt one chunk of plaintexts under Paillier modulus ``n``.

    Runs identically in-process and in a worker: all randomness comes
    from the chunk's own DRBG seed.  With ``fixed_base_h`` set, the
    obfuscators are fixed-base powers ``(h^n)^x`` (see
    :class:`~repro.crypto.multiexp.FixedBaseTable`); otherwise each is
    a fresh full ``r^n mod n^2``.
    """
    from repro.crypto.paillier import PaillierPublicKey
    from repro.crypto.rng import DeterministicRandom

    public = PaillierPublicKey(n)
    rng = DeterministicRandom(seed)
    if fixed_base_h is None:
        return [public.encrypt_raw(m, rng) for m in plaintexts]
    table = FixedBaseTable(
        pow(fixed_base_h, n, public.nsquare),
        public.nsquare,
        exponent_bits,
        window,
    )
    out = []
    for m in plaintexts:
        x = rng.randrange(1, table.capacity)
        out.append(public.raw_encrypt(m % n, table.pow(x)))
    return out


def _weighted_chunk(
    ct_modulus: int,
    exp_modulus: int,
    ciphertexts: Sequence[int],
    weights: Sequence[int],
    use_multiexp: bool,
    window: Optional[int],
) -> int:
    """Fold one chunk of the server aggregate; returns the partial product."""
    exponents = [w % exp_modulus for w in weights]
    if use_multiexp:
        return multi_exponent(ciphertexts, exponents, ct_modulus, window=window)
    acc = 1
    for ciphertext, exponent in zip(ciphertexts, exponents):
        if exponent == 0:
            continue
        term = (
            ciphertext
            if exponent == 1
            else pow(ciphertext, exponent, ct_modulus)
        )
        acc = acc * term % ct_modulus
    return acc


class CryptoEngine:
    """Partitioned, optionally multi-process executor for the kernels.

    Args:
        workers: process count; ``<= 1`` runs everything in-process.
        use_multiexp: route aggregation through the bucket kernel
            (False falls back to per-element ``pow`` — the CLI's
            ``--no-multiexp`` escape hatch for A/B measurement).
        fixed_base: draw encryption obfuscators as fixed-base powers
            ``(h^n)^x`` with a per-key random ``h`` instead of a full
            ``r^n`` per element (~6x faster; the randomness then ranges
            over the subgroup generated by ``h`` — see
            ``docs/performance.md`` for the assumption this trades on).
        chunk_size: elements per dispatched chunk.  Results never
            depend on it, but it fixes the seed derivation schedule, so
            two runs only match ciphertext-for-ciphertext when it is
            equal.
        window: bucket/table window override (None adapts per batch).
        metrics: optional :class:`~repro.obs.registry.MetricsRegistry`;
            when given, every chunk fan-out observes its wall-clock into
            ``repro_engine_batch_seconds{mode=parallel|serial}``, batch
            counts appear as ``repro_engine_batches_total``, and every
            pool downgrade bumps ``repro_engine_pool_fallbacks_total``.
            Pass the server's registry to expose engine health on the
            same ``/metrics`` page.
    """

    def __init__(
        self,
        workers: int = 1,
        use_multiexp: bool = True,
        fixed_base: bool = False,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        window: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 0:
            raise ParameterError("workers must be non-negative")
        if chunk_size < 1:
            raise ParameterError("chunk_size must be positive")
        self.workers = workers
        self.use_multiexp = use_multiexp
        self.fixed_base = fixed_base
        self.chunk_size = chunk_size
        self.window = window
        #: guards every write to the shared pool state below: one engine
        #: is shared by all workers of a concurrent SpfeServer, so lazy
        #: pool creation, breakage flags, batch counters, and the
        #: fixed-base generator cache all race without it
        self._lock = threading.Lock()
        self._pool: Optional[Any] = None
        #: True once the pool failed to start or broke; serial from then on
        self.pool_broken = False
        self._closed = False
        #: chunk batches executed in worker processes vs in-process
        self.parallel_batches = 0
        self.serial_batches = 0
        #: per-key fixed-base generators, keyed by modulus
        self._fixed_base_h: Dict[int, int] = {}
        self.metrics = metrics
        self._batch_seconds: Dict[str, Histogram] = {}
        self._batches_total: Dict[str, Counter] = {}
        self._pool_fallbacks: Optional[Counter] = None
        if metrics is not None:
            for mode in ("parallel", "serial"):
                self._batch_seconds[mode] = metrics.histogram(
                    "repro_engine_batch_seconds",
                    "Wall-clock seconds per chunk fan-out, by execution mode.",
                    labels={"mode": mode},
                )
                self._batches_total[mode] = metrics.counter(
                    "repro_engine_batches_total",
                    "Chunk batches executed, by execution mode.",
                    labels={"mode": mode},
                )
            self._pool_fallbacks = metrics.counter(
                "repro_engine_pool_fallbacks_total",
                "Times the process pool was downgraded to the serial path.",
            )

    # -- lifecycle --------------------------------------------------------

    def __enter__(self) -> "CryptoEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down; further calls run serially."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        # shut down outside the lock: waiting for in-flight chunk maps
        # must not block threads that only need to bump a counter
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def _ensure_pool(self) -> Optional[Any]:
        """The live pool, or None when parallelism is unavailable."""
        if self.workers <= 1:
            return None
        with self._lock:
            if self.pool_broken or self._closed:
                return None
            if self._pool is None:
                try:
                    from concurrent.futures import ProcessPoolExecutor

                    self._pool = ProcessPoolExecutor(max_workers=self.workers)
                # Any pool-start failure (restricted container, missing
                # sem_open, fork limits) must degrade to the bit-identical
                # serial path, never crash an encryption; pool_broken
                # records the downgrade and the pool-start-failure
                # regression tests cover it.
                # seclint: disable=SEC005 -- start failure degrades to serial by design
                except Exception:
                    self.pool_broken = True
                    if self._pool_fallbacks is not None:
                        self._pool_fallbacks.inc()
                    return None
            return self._pool

    def _observe_batch(self, mode: str, seconds: float) -> None:
        """Record one fan-out's duration and count (no-op without metrics)."""
        histogram = self._batch_seconds.get(mode)
        if histogram is not None:
            histogram.observe(seconds)
        counter = self._batches_total.get(mode)
        if counter is not None:
            counter.inc()

    def _run_chunks(
        self, fn: Callable[..., Any], tasks: List[Tuple[Any, ...]]
    ) -> List[Any]:
        """Run ``fn(*task)`` for every task, in the pool when possible."""
        pool = self._ensure_pool() if len(tasks) > 1 else None
        if pool is not None:
            started = time.perf_counter()
            try:
                results = list(pool.map(fn, *zip(*tasks)))
                with self._lock:
                    self.parallel_batches += 1
                self._observe_batch("parallel", time.perf_counter() - started)
                return results
            # A pool broken mid-run (killed worker, BrokenProcessPool)
            # degrades to redoing the same deterministic chunks
            # serially; a genuine kernel bug reproduces on the serial
            # redo and raises there, so nothing is masked.  Covered by
            # the serial-redo regression tests.
            # seclint: disable=SEC005 -- broken pool degrades to serial redo by design
            except Exception:
                with self._lock:
                    self.pool_broken = True
                    self._pool = None
                if self._pool_fallbacks is not None:
                    self._pool_fallbacks.inc()
                pool.shutdown(wait=False, cancel_futures=True)
        started = time.perf_counter()
        results = [fn(*task) for task in tasks]
        with self._lock:
            self.serial_batches += 1
        self._observe_batch("serial", time.perf_counter() - started)
        return results

    # -- key compatibility ------------------------------------------------

    @staticmethod
    def supports_key(public: Any) -> bool:
        """True for Paillier-shaped keys the encryption kernel handles."""
        return hasattr(public, "nsquare") and hasattr(public, "n")

    # -- hot paths --------------------------------------------------------

    def _chunks(self, length: int) -> List[Tuple[int, int]]:
        return [
            (start, min(start + self.chunk_size, length))
            for start in range(0, length, self.chunk_size)
        ]

    def _fixed_base_generator(
        self, public: Any, source: RandomSource
    ) -> Optional[int]:
        """The per-key ``h`` for fixed-base obfuscators (None = disabled)."""
        if not self.fixed_base:
            return None
        with self._lock:
            h = self._fixed_base_h.get(public.n)
            if h is None:
                while True:
                    h = source.randrange(2, public.n)
                    if math.gcd(h, public.n) == 1:
                        break
                self._fixed_base_h[public.n] = h
            return h

    def encrypt_vector(
        self,
        public: Any,
        plaintexts: Sequence[int],
        rng: Union[RandomSource, bytes, str, int, None] = None,
    ) -> Tuple[int, ...]:
        """Encrypt a plaintext vector under a Paillier public key.

        Chunks the vector, derives one DRBG seed per chunk from ``rng``
        up front (so the ciphertexts are a pure function of the seed
        and ``chunk_size``, independent of worker count), and encrypts
        the chunks in parallel when a pool is available.
        """
        if not self.supports_key(public):
            raise ParameterError(
                "engine encryption requires a Paillier public key, got %r"
                % type(public).__name__
            )
        if not plaintexts:
            return ()
        source = as_random_source(rng)
        h = self._fixed_base_generator(public, source)
        spans = self._chunks(len(plaintexts))
        tasks = [
            (
                public.n,
                list(plaintexts[start:stop]),
                source.randbytes(_CHUNK_SEED_BYTES),
                h,
                public.bits,
                self.window,
            )
            for start, stop in spans
        ]
        chunks = self._run_chunks(_encrypt_chunk, tasks)
        return tuple(ct for chunk in chunks for ct in chunk)

    def weighted_product(
        self,
        ct_modulus: int,
        exp_modulus: int,
        ciphertexts: Sequence[int],
        weights: Sequence[int],
        initial: Optional[int] = None,
    ) -> int:
        """``initial * prod_i c_i^{w_i} mod ct_modulus``, partitioned.

        Scheme-agnostic: Paillier passes ``(n^2, n)``, Damgård–Jurik
        ``(n^{s+1}, n^s)``.  Weights are reduced into the exponent
        group per chunk, matching the naive ``ciphertext_scale`` loop.
        """
        if len(ciphertexts) != len(weights):
            raise ParameterError(
                "ciphertext/weight length mismatch: %d vs %d"
                % (len(ciphertexts), len(weights))
            )
        acc = 1 if initial is None else initial % ct_modulus
        if not ciphertexts:
            return acc
        tasks = [
            (
                ct_modulus,
                exp_modulus,
                list(ciphertexts[start:stop]),
                list(weights[start:stop]),
                self.use_multiexp,
                self.window,
            )
            for start, stop in self._chunks(len(ciphertexts))
        ]
        for partial in self._run_chunks(_weighted_chunk, tasks):
            acc = acc * partial % ct_modulus
        return acc
