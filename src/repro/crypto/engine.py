"""Multi-core execution engine for the crypto kernels (v2: warm workers).

CPython's big-int ``pow`` holds the GIL, so threads cannot speed up the
two hot paths (client vector encryption, server aggregation) — real
parallelism needs processes.  :class:`CryptoEngine` partitions both
paths into chunks and fans the chunks out over a persistent
:class:`WarmWorkerPool`:

* ``encrypt_vector`` — each chunk is encrypted by a worker process
  running the same deterministic kernel as the serial path.
* ``weighted_product`` — each chunk runs the
  :func:`~repro.crypto.multiexp.multi_exponent` bucket kernel; the
  parent multiplies the partial products together.

**What changed from v1.**  The first engine lost to single-core
multiexp because every dispatched chunk paid twice: pickling a list of
big Python ints per batch, and rebuilding the per-key fixed-base table
inside every chunk.  v2 removes both costs:

* Workers are spawned once per engine and *primed* — the
  ``ProcessPoolExecutor`` initializer builds the per-key context
  (public key, fixed-base table, Montgomery constants) before any work
  arrives, and a per-process :class:`KeyContextCache` keeps it warm
  across every subsequent chunk.  The in-process path shares the same
  cache, so serial callers stop rebuilding tables per chunk too.
* Work ships as one packed big-endian byte buffer per chunk
  (:func:`~repro.crypto.serialization.pack_int_vector`): pickling a
  ``bytes`` object is a near-memcpy, where a list of 1024-bit ints
  costs a per-element encode on every dispatch.
* Mode selection is *measured*, not assumed: an optional
  :class:`~repro.crypto.calibration.CalibrationProfile` (built by
  ``repro calibrate``, cached via :mod:`repro.store`) records the
  serial/multiexp/parallel crossover per (key_bits, n) and the engine
  routes each call to the measured-fastest path.  Without a profile
  the v1 heuristic applies (pool whenever it exists and there is more
  than one chunk).

**Determinism.**  Chunking depends only on the input length and the
chunk size — never on the worker count or selected mode — and every
chunk derives an independent HMAC-DRBG seed from the caller's
randomness source *before* any work is dispatched.  A seeded run
therefore produces identical ciphertexts whether it executes serially,
on 2 workers, or on 32, which the engine tests assert byte for byte.
Mode selection only ever changes *where* a chunk runs (or which
bit-identical kernel folds it), so calibration cannot perturb outputs.

**Fallback.**  ``workers <= 1``, a pool that cannot start (restricted
containers), or a pool that breaks mid-run all degrade to running the
identical chunk kernels in-process — same results, one core.  The pool
is created lazily on first parallel call and torn down by
:meth:`close` (a context manager exit works too);
:class:`~repro.net.server.SpfeServer` closes an engine it was given as
part of its drain path.

**Thread safety.**  One engine is shared by every worker thread of a
concurrent :class:`~repro.net.server.SpfeServer`.  Pool lifecycle
state lives in :class:`WarmWorkerPool` behind its own lock; the
engine's batch counters and fixed-base generator cache are mutated
only under the engine lock.  ``seclint`` (rule SEC004) enforces both
mechanically.
"""

from __future__ import annotations

import math
import struct
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.crypto.montgomery import MontgomeryContext
from repro.crypto.multiexp import FixedBaseTable, multi_exponent
from repro.crypto.rng import RandomSource, as_random_source
from repro.crypto.serialization import pack_int_vector, unpack_int_vector
from repro.exceptions import ParameterError
from repro.obs.registry import Counter, Histogram, MetricsRegistry

__all__ = [
    "CryptoEngine",
    "WarmWorkerPool",
    "KeyContextCache",
    "DEFAULT_CHUNK_SIZE",
    "chunk_size_for",
]

#: Elements per dispatched chunk at the 512-bit reference key size.
#: Large enough that a chunk costs hundreds of milliseconds (amortising
#: process round-trips), small enough to load-balance a pool.
DEFAULT_CHUNK_SIZE = 512

#: Reference key size DEFAULT_CHUNK_SIZE is tuned for.
_REFERENCE_KEY_BITS = 512

#: Adaptive chunk-size clamp range.
_MIN_CHUNK_SIZE = 16
_MAX_CHUNK_SIZE = 4096

#: Seed width for per-chunk DRBGs (HMAC-SHA256 state size).
_CHUNK_SEED_BYTES = 32


def chunk_size_for(key_bits: int) -> int:
    """Adaptive chunk size: bigger keys get smaller chunks.

    Per-element cost grows roughly cubically with the key size (quadratic
    big-int multiplication times a linearly longer exponent), so keeping
    the *wall-clock* per chunk roughly constant means scaling the element
    count by ``(reference / key_bits)^2`` — one factor of ``key_bits``
    is deliberately left ungained so very small keys do not balloon into
    chunks whose payload dwarfs the worker round-trip.  Clamped to
    ``[16, 4096]``.  The schedule depends only on ``key_bits``, never on
    worker count, so determinism is unaffected.
    """
    if key_bits < 1:
        raise ParameterError("key_bits must be positive")
    scaled = DEFAULT_CHUNK_SIZE * _REFERENCE_KEY_BITS**2 // max(key_bits, 1) ** 2
    return max(_MIN_CHUNK_SIZE, min(_MAX_CHUNK_SIZE, scaled))


# -- packed task codec --------------------------------------------------------
#
# A chunk task is a handful of length-prefixed byte frames: the key blob
# (shared by every chunk of a batch — workers cache the derived context
# under it), then per-chunk payloads.  Everything inside the frames is
# the big-endian packed-vector codec from repro.crypto.serialization.

_FRAME_LEN = struct.Struct(">I")

#: Key-blob kind tags (first byte of a key blob / task).
_KIND_ENCRYPT = b"\x01"
_KIND_WEIGHTED = b"\x02"

#: Weighted-kernel flag bits (packed into the key blob).
_FLAG_MULTIEXP = 1
_FLAG_MONTGOMERY = 2


def _pack_frames(*frames: bytes) -> bytes:
    parts: List[bytes] = []
    for frame in frames:
        parts.append(_FRAME_LEN.pack(len(frame)))
        parts.append(frame)
    return b"".join(parts)


def _unpack_frames(blob: bytes) -> List[bytes]:
    frames: List[bytes] = []
    offset = 0
    total = len(blob)
    while offset < total:
        if offset + _FRAME_LEN.size > total:
            raise ParameterError("truncated task frame header")
        (length,) = _FRAME_LEN.unpack_from(blob, offset)
        offset += _FRAME_LEN.size
        if offset + length > total:
            raise ParameterError("truncated task frame body")
        frames.append(blob[offset : offset + length])
        offset += length
    return frames


def _encrypt_key_blob(
    n: int, fixed_base_h: Optional[int], exponent_bits: int, window: Optional[int]
) -> bytes:
    return _KIND_ENCRYPT + pack_int_vector(
        [n, 0 if fixed_base_h is None else fixed_base_h, exponent_bits, window or 0]
    )


def _weighted_key_blob(
    ct_modulus: int,
    exp_modulus: int,
    window: Optional[int],
    use_multiexp: bool,
    montgomery: bool,
) -> bytes:
    flags = (_FLAG_MULTIEXP if use_multiexp else 0) | (
        _FLAG_MONTGOMERY if montgomery else 0
    )
    return _KIND_WEIGHTED + pack_int_vector(
        [ct_modulus, exp_modulus, window or 0, flags]
    )


class _EncryptContext:
    """Derived per-key encryption state a worker keeps warm."""

    __slots__ = ("public", "table")

    def __init__(self, blob: bytes) -> None:
        from repro.crypto.paillier import PaillierPublicKey

        n, h, exponent_bits, window = unpack_int_vector(blob)
        self.public = PaillierPublicKey(n)
        self.table: Optional[FixedBaseTable] = None
        if h:
            # This build is the expensive part v1 repeated per chunk;
            # here it happens once per key per process.
            self.table = FixedBaseTable(
                pow(h, n, self.public.nsquare),
                self.public.nsquare,
                exponent_bits,
                window or None,
            )


class _WeightedContext:
    """Derived per-key aggregation state a worker keeps warm."""

    __slots__ = ("ct_modulus", "exp_modulus", "window", "use_multiexp", "montgomery")

    def __init__(self, blob: bytes) -> None:
        ct_modulus, exp_modulus, window, flags = unpack_int_vector(blob)
        self.ct_modulus = ct_modulus
        self.exp_modulus = exp_modulus
        self.window = window or None
        self.use_multiexp = bool(flags & _FLAG_MULTIEXP)
        self.montgomery: Optional[MontgomeryContext] = None
        if flags & _FLAG_MONTGOMERY and ct_modulus % 2 == 1:
            self.montgomery = MontgomeryContext(ct_modulus)


def _context_from_blob(key_blob: bytes) -> Any:
    kind, body = key_blob[:1], key_blob[1:]
    if kind == _KIND_ENCRYPT:
        return _EncryptContext(body)
    if kind == _KIND_WEIGHTED:
        return _WeightedContext(body)
    raise ParameterError("unknown key-blob kind %r" % kind)


class KeyContextCache:
    """Small LRU of derived per-key contexts, keyed by packed key blob.

    One instance lives at module level in every process (parent and
    workers alike): the first chunk for a key pays the context build
    (fixed-base table, Montgomery constants), every later chunk — and
    with pool priming, the first one too — finds it warm.  Bounded so a
    long-lived server churning through keys cannot grow it without
    limit.  Thread-safe: the parent process shares it across server
    worker threads.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ParameterError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._contexts: "OrderedDict[bytes, Any]" = OrderedDict()

    def get(self, key_blob: bytes) -> Any:
        """The cached context for ``key_blob``, building it on first use."""
        with self._lock:
            context = self._contexts.get(key_blob)
            if context is not None:
                self._contexts.move_to_end(key_blob)
                return context
        # Build outside the lock: context construction can cost tens of
        # milliseconds (table build) and must not stall other keys.
        built = _context_from_blob(key_blob)
        with self._lock:
            winner = self._contexts.setdefault(key_blob, built)
            self._contexts.move_to_end(key_blob)
            while len(self._contexts) > self.capacity:
                self._contexts.popitem(last=False)
        return winner

    def __len__(self) -> int:
        with self._lock:
            return len(self._contexts)


#: The per-process context cache the kernels below read through.  With
#: the default ``fork`` start method, contexts built in the parent
#: before pool creation are inherited by the workers for free; the pool
#: initializer primes the rest.
_WORKER_CACHE = KeyContextCache()


def _prime_worker(key_blob: Optional[bytes]) -> None:
    """Pool initializer: build the key context before any work arrives."""
    if key_blob:
        _WORKER_CACHE.get(key_blob)


# -- chunk kernels (top-level so ProcessPoolExecutor can pickle them) ---------


def _encrypt_chunk_packed(task: bytes) -> bytes:
    """Encrypt one packed chunk; returns the packed ciphertext vector.

    Runs identically in-process and in a worker: all randomness comes
    from the chunk's own DRBG seed, all state from the (cached) key
    context.  With a fixed-base table in the context the obfuscators
    are table powers ``(h^n)^x``; otherwise each is a full
    ``r^n mod n^2``.
    """
    from repro.crypto.rng import DeterministicRandom

    key_blob, seed, payload = _unpack_frames(task)
    context = _WORKER_CACHE.get(key_blob)
    plaintexts = unpack_int_vector(payload)
    rng = DeterministicRandom(seed)
    public = context.public
    if context.table is None:
        out = [public.encrypt_raw(m, rng) for m in plaintexts]
    else:
        table = context.table
        out = []
        for m in plaintexts:
            x = rng.randrange(1, table.capacity)
            out.append(public.raw_encrypt(m % public.n, table.pow(x)))
    return pack_int_vector(out)


def _weighted_chunk_packed(task: bytes) -> bytes:
    """Fold one packed chunk of the aggregate; returns the packed partial."""
    key_blob, ct_blob, weight_blob = _unpack_frames(task)
    context = _WORKER_CACHE.get(key_blob)
    ciphertexts = unpack_int_vector(ct_blob)
    exp_modulus = context.exp_modulus
    ct_modulus = context.ct_modulus
    exponents = [w % exp_modulus for w in unpack_int_vector(weight_blob)]
    if context.use_multiexp:
        partial = multi_exponent(
            ciphertexts,
            exponents,
            ct_modulus,
            window=context.window,
            montgomery=context.montgomery or False,
        )
    else:
        partial = 1
        for ciphertext, exponent in zip(ciphertexts, exponents):
            if exponent == 0:
                continue
            term = (
                ciphertext
                if exponent == 1
                else pow(ciphertext, exponent, ct_modulus)
            )
            partial = partial * term % ct_modulus
    return pack_int_vector([partial])


class WarmWorkerPool:
    """Lifecycle of the persistent worker pool: spawn once, prime, reuse.

    Owns the ``ProcessPoolExecutor`` handle plus its breakage/closed
    flags behind one lock, so :class:`CryptoEngine` never manipulates
    raw pool state.  Workers are created lazily on the first parallel
    batch and *primed* with the batch's key blob — each worker builds
    the per-key context in its initializer, before the first chunk
    lands on it.
    """

    def __init__(
        self, workers: int, on_break: Optional[Callable[[], None]] = None
    ) -> None:
        if workers < 0:
            raise ParameterError("workers must be non-negative")
        self.workers = workers
        #: invoked exactly once per broken-transition (metrics hook)
        self._on_break = on_break
        self._lock = threading.Lock()
        self._executor: Optional[Any] = None
        self._broken = False
        self._closed = False
        self._primed_key: Optional[bytes] = None

    @property
    def broken(self) -> bool:
        """True once the pool failed to start or broke mid-run."""
        with self._lock:
            return self._broken

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        with self._lock:
            return self._closed

    def acquire(self, key_blob: Optional[bytes] = None) -> Optional[Any]:
        """The live executor, or None when parallelism is unavailable.

        The first acquisition spawns the workers with ``key_blob`` as
        priming context; later acquisitions reuse them (the per-worker
        cache covers additional keys on first touch).
        """
        if self.workers <= 1:
            return None
        with self._lock:
            if self._broken or self._closed:
                return None
            if self._executor is None:
                try:
                    from concurrent.futures import ProcessPoolExecutor

                    self._executor = ProcessPoolExecutor(
                        max_workers=self.workers,
                        initializer=_prime_worker,
                        initargs=(key_blob,),
                    )
                    self._primed_key = key_blob
                # Any pool-start failure (restricted container, missing
                # sem_open, fork limits) must degrade to the bit-identical
                # serial path, never crash an encryption; the broken flag
                # records the downgrade and the pool-start-failure
                # regression tests cover it.
                # seclint: disable=SEC005 -- start failure degrades to serial by design
                except Exception:
                    self._broken = True
                    if self._on_break is not None:
                        self._on_break()
                    return None
            return self._executor

    def mark_broken(self) -> Optional[Any]:
        """Record mid-run breakage; returns the dead executor to shut down."""
        with self._lock:
            transitioned = not self._broken
            self._broken = True
            executor, self._executor = self._executor, None
        if transitioned and self._on_break is not None:
            self._on_break()
        return executor

    def close(self) -> None:
        """Shut the workers down; the pool stays unavailable afterwards."""
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
        # shut down outside the lock: waiting for in-flight chunk maps
        # must not block threads that only need to check a flag
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


class CryptoEngine:
    """Partitioned, optionally multi-process executor for the kernels.

    Args:
        workers: process count; ``<= 1`` runs everything in-process.
        use_multiexp: route aggregation through the bucket kernel
            (False falls back to per-element ``pow`` — the CLI's
            ``--no-multiexp`` escape hatch for A/B measurement).
        fixed_base: draw encryption obfuscators as fixed-base powers
            ``(h^n)^x`` with a per-key random ``h`` instead of a full
            ``r^n`` per element (~6x faster; the randomness then ranges
            over the subgroup generated by ``h`` — see
            ``docs/performance.md`` for the assumption this trades on).
        chunk_size: elements per dispatched chunk; ``None`` (the
            default) adapts to the key size via :func:`chunk_size_for`.
            Results never depend on it, but it fixes the seed
            derivation schedule, so two runs only match
            ciphertext-for-ciphertext when it is equal.
        window: bucket/table window override (None adapts per batch).
        calibration: optional
            :class:`~repro.crypto.calibration.CalibrationProfile`; when
            given, every batch is routed to the mode the profile
            measured fastest for the nearest (key_bits, n) point.
            Build one with ``repro calibrate`` (persisted via
            :mod:`repro.store`).
        private_key: optional Paillier private key.  A key-owning
            client that hands it over gets CRT-split obfuscators
            (half-width exponentiations mod p^2 and q^2, ~1.4x faster)
            on every in-process encryption chunk — byte-identical
            ciphertexts, so this composes with determinism.  The key
            never crosses a process boundary: parallel chunks fall back
            to the public-key kernel, which produces the same bytes.
        metrics: optional :class:`~repro.obs.registry.MetricsRegistry`;
            when given, every chunk fan-out observes its wall-clock into
            ``repro_engine_batch_seconds{mode=parallel|serial}``, batch
            counts appear as ``repro_engine_batches_total``, per-batch
            mode routing as
            ``repro_engine_mode_selected_total{kind,mode}``, and every
            pool downgrade bumps ``repro_engine_pool_fallbacks_total``.
            Pass the server's registry to expose engine health on the
            same ``/metrics`` page.
    """

    #: Calibration kinds and the modes the router understands for each.
    MODES: Dict[str, Tuple[str, ...]] = {
        "encrypt": ("serial", "parallel"),
        "weighted": ("serial", "multiexp", "multiexp_mont", "parallel"),
    }

    def __init__(
        self,
        workers: int = 1,
        use_multiexp: bool = True,
        fixed_base: bool = False,
        chunk_size: Optional[int] = None,
        window: Optional[int] = None,
        calibration: Optional[Any] = None,
        private_key: Optional[Any] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 0:
            raise ParameterError("workers must be non-negative")
        if chunk_size is not None and chunk_size < 1:
            raise ParameterError("chunk_size must be positive")
        self.workers = workers
        self.use_multiexp = use_multiexp
        self.fixed_base = fixed_base
        self.chunk_size = chunk_size
        self.window = window
        self.calibration = calibration
        self.private_key = private_key
        #: guards the shared engine state below (batch counters and the
        #: fixed-base generator cache); pool lifecycle state has its own
        #: lock inside WarmWorkerPool
        self._lock = threading.Lock()
        self._pool = WarmWorkerPool(workers, on_break=self._note_pool_fallback)
        self._closed = False
        #: chunk batches executed in worker processes vs in-process
        self.parallel_batches = 0
        self.serial_batches = 0
        #: per-key fixed-base generators, keyed by modulus
        self._fixed_base_h: Dict[int, int] = {}
        self.metrics = metrics
        self._batch_seconds: Dict[str, Histogram] = {}
        self._batches_total: Dict[str, Counter] = {}
        self._mode_selected: Dict[Tuple[str, str], Counter] = {}
        self._pool_fallbacks: Optional[Counter] = None
        if metrics is not None:
            for mode in ("parallel", "serial"):
                self._batch_seconds[mode] = metrics.histogram(
                    "repro_engine_batch_seconds",
                    "Wall-clock seconds per chunk fan-out, by execution mode.",
                    labels={"mode": mode},
                )
                self._batches_total[mode] = metrics.counter(
                    "repro_engine_batches_total",
                    "Chunk batches executed, by execution mode.",
                    labels={"mode": mode},
                )
            for kind, modes in self.MODES.items():
                for mode in modes:
                    self._mode_selected[(kind, mode)] = metrics.counter(
                        "repro_engine_mode_selected_total",
                        "Batches routed to each kernel mode by the "
                        "calibrated selector.",
                        labels={"kind": kind, "mode": mode},
                    )
            self._pool_fallbacks = metrics.counter(
                "repro_engine_pool_fallbacks_total",
                "Times the process pool was downgraded to the serial path.",
            )

    # -- lifecycle --------------------------------------------------------

    def __enter__(self) -> "CryptoEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down; further calls run serially."""
        with self._lock:
            self._closed = True
        self._pool.close()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    @property
    def pool_broken(self) -> bool:
        """True once the pool failed to start or broke; serial from then on."""
        return self._pool.broken

    # -- mode selection ---------------------------------------------------

    def _select_mode(self, kind: str, key_bits: int, size: int) -> Optional[str]:
        """The calibrated mode for this batch, or None for the heuristic."""
        if self.calibration is None:
            return None
        mode = self.calibration.best_mode(kind, key_bits, size)
        if mode is None or mode not in self.MODES.get(kind, ()):
            return None
        if mode == "parallel" and (self.workers <= 1 or self.pool_broken):
            # Measured-fastest was parallel but this engine cannot run
            # it; the next-best in-process kernel is the bucket fold.
            mode = "multiexp" if kind == "weighted" else "serial"
        return mode

    def _note_mode(self, kind: str, mode: str) -> None:
        counter = self._mode_selected.get((kind, mode))
        if counter is not None:
            counter.inc()

    def _note_pool_fallback(self) -> None:
        """Pool-breakage hook: count the downgrade (no-op without metrics)."""
        if self._pool_fallbacks is not None:
            self._pool_fallbacks.inc()

    def _observe_batch(self, mode: str, seconds: float) -> None:
        """Record one fan-out's duration and count (no-op without metrics)."""
        histogram = self._batch_seconds.get(mode)
        if histogram is not None:
            histogram.observe(seconds)
        counter = self._batches_total.get(mode)
        if counter is not None:
            counter.inc()

    # -- chunk execution --------------------------------------------------

    def _run_packed(
        self,
        tasks: List[bytes],
        key_blob: bytes,
        parallel: bool,
        serial_fn: Optional[Callable[[bytes], bytes]] = None,
    ) -> List[bytes]:
        """Run the packed kernel over every task, in the pool when asked.

        ``serial_fn`` overrides the in-process kernel (the CRT-split
        encryption path); the pool always runs the public-key kernel,
        which produces identical bytes.
        """
        kernel = _KERNELS[key_blob[:1]]
        executor = (
            self._pool.acquire(key_blob) if parallel and len(tasks) > 1 else None
        )
        if executor is not None:
            started = time.perf_counter()
            try:
                results = list(executor.map(kernel, tasks))
                with self._lock:
                    self.parallel_batches += 1
                self._observe_batch("parallel", time.perf_counter() - started)
                return results
            # A pool broken mid-run (killed worker, BrokenProcessPool)
            # degrades to redoing the same deterministic chunks
            # serially; a genuine kernel bug reproduces on the serial
            # redo and raises there, so nothing is masked.  Covered by
            # the serial-redo regression tests.
            # seclint: disable=SEC005 -- broken pool degrades to serial redo by design
            except Exception:
                dead = self._pool.mark_broken()
                if dead is not None:
                    dead.shutdown(wait=False, cancel_futures=True)
        fn = serial_fn if serial_fn is not None else kernel
        started = time.perf_counter()
        results = [fn(task) for task in tasks]
        with self._lock:
            self.serial_batches += 1
        self._observe_batch("serial", time.perf_counter() - started)
        return results

    # -- key compatibility ------------------------------------------------

    @staticmethod
    def supports_key(public: Any) -> bool:
        """True for Paillier-shaped keys the encryption kernel handles."""
        return hasattr(public, "nsquare") and hasattr(public, "n")

    # -- hot paths --------------------------------------------------------

    def _chunk_size_for(self, key_bits: int) -> int:
        """The effective chunk size: explicit override or adaptive."""
        if self.chunk_size is not None:
            return self.chunk_size
        return chunk_size_for(key_bits)

    def _chunks(self, length: int, chunk_size: int) -> List[Tuple[int, int]]:
        return [
            (start, min(start + chunk_size, length))
            for start in range(0, length, chunk_size)
        ]

    def _fixed_base_generator(
        self, public: Any, source: RandomSource
    ) -> Optional[int]:
        """The per-key ``h`` for fixed-base obfuscators (None = disabled)."""
        if not self.fixed_base:
            return None
        with self._lock:
            h = self._fixed_base_h.get(public.n)
            if h is None:
                while True:
                    h = source.randrange(2, public.n)
                    if math.gcd(h, public.n) == 1:
                        break
                self._fixed_base_h[public.n] = h
            return h

    def _crt_serial_fn(self, public: Any) -> Optional[Callable[[bytes], bytes]]:
        """The CRT-split in-process encryption kernel, when eligible.

        Eligible when the engine holds the private key for ``public``
        and the batch draws full ``r^n`` obfuscators (the fixed-base
        path never computes ``r^n``, so there is nothing to split).
        The replacement draws ``r`` identically and computes the same
        obfuscator through half-width exponentiations — byte-identical
        output, measured ~1.4x faster.
        """
        private = self.private_key
        if (
            private is None
            or self.fixed_base
            or getattr(private, "public_key", None) != public
            or not hasattr(private, "obfuscator_from_r")
        ):
            return None

        def crt_encrypt_chunk(task: bytes) -> bytes:
            from repro.crypto.rng import DeterministicRandom

            _key_blob, seed, payload = _unpack_frames(task)
            rng = DeterministicRandom(seed)
            out = []
            for m in unpack_int_vector(payload):
                while True:
                    candidate = rng.randrange(1, public.n)
                    if math.gcd(candidate, public.n) == 1:
                        break
                out.append(
                    public.raw_encrypt(
                        m % public.n, private.obfuscator_from_r(candidate)
                    )
                )
            return pack_int_vector(out)

        return crt_encrypt_chunk

    def encrypt_vector(
        self,
        public: Any,
        plaintexts: Sequence[int],
        rng: Union[RandomSource, bytes, str, int, None] = None,
    ) -> Tuple[int, ...]:
        """Encrypt a plaintext vector under a Paillier public key.

        Chunks the vector, derives one DRBG seed per chunk from ``rng``
        up front (so the ciphertexts are a pure function of the seed
        and chunk size, independent of worker count and routing mode),
        and encrypts the chunks in parallel when the router picks the
        pool.
        """
        if not self.supports_key(public):
            raise ParameterError(
                "engine encryption requires a Paillier public key, got %r"
                % type(public).__name__
            )
        if not plaintexts:
            return ()
        source = as_random_source(rng)
        h = self._fixed_base_generator(public, source)
        key_blob = _encrypt_key_blob(public.n, h, public.bits, self.window)
        chunk_size = self._chunk_size_for(public.bits)
        tasks = [
            _pack_frames(
                key_blob,
                source.randbytes(_CHUNK_SEED_BYTES),
                pack_int_vector(list(plaintexts[start:stop])),
            )
            for start, stop in self._chunks(len(plaintexts), chunk_size)
        ]
        mode = self._select_mode("encrypt", public.bits, len(plaintexts))
        parallel = self.workers > 1 if mode is None else mode == "parallel"
        self._note_mode("encrypt", "parallel" if parallel else "serial")
        chunks = self._run_packed(
            tasks, key_blob, parallel, serial_fn=self._crt_serial_fn(public)
        )
        return tuple(ct for chunk in chunks for ct in unpack_int_vector(chunk))

    def weighted_product(
        self,
        ct_modulus: int,
        exp_modulus: int,
        ciphertexts: Sequence[int],
        weights: Sequence[int],
        initial: Optional[int] = None,
    ) -> int:
        """``initial * prod_i c_i^{w_i} mod ct_modulus``, partitioned.

        Scheme-agnostic: Paillier passes ``(n^2, n)``, Damgård–Jurik
        ``(n^{s+1}, n^s)``.  Weights are reduced into the exponent
        group per chunk, matching the naive ``ciphertext_scale`` loop.
        Every routing mode folds the same residues, so the result is
        one fixed integer regardless of calibration.
        """
        if len(ciphertexts) != len(weights):
            raise ParameterError(
                "ciphertext/weight length mismatch: %d vs %d"
                % (len(ciphertexts), len(weights))
            )
        acc = 1 if initial is None else initial % ct_modulus
        if not ciphertexts:
            return acc
        key_bits = exp_modulus.bit_length()
        mode = self._select_mode("weighted", key_bits, len(ciphertexts))
        use_multiexp = self.use_multiexp and mode != "serial"
        montgomery = mode == "multiexp_mont" and ct_modulus % 2 == 1
        parallel = self.workers > 1 if mode is None else mode == "parallel"
        if mode is not None:
            self._note_mode("weighted", mode)
        else:
            self._note_mode(
                "weighted",
                "parallel"
                if parallel
                else ("multiexp" if use_multiexp else "serial"),
            )
        key_blob = _weighted_key_blob(
            ct_modulus, exp_modulus, self.window, use_multiexp, montgomery
        )
        chunk_size = self._chunk_size_for(key_bits)
        tasks = [
            _pack_frames(
                key_blob,
                pack_int_vector(list(ciphertexts[start:stop])),
                pack_int_vector([w % exp_modulus for w in weights[start:stop]]),
            )
            for start, stop in self._chunks(len(ciphertexts), chunk_size)
        ]
        for packed in self._run_packed(tasks, key_blob, parallel):
            (partial,) = unpack_int_vector(packed)
            acc = acc * partial % ct_modulus
        return acc

    def rerandomize_vector(
        self,
        public: Any,
        ciphertexts: Sequence[int],
        rng: Union[RandomSource, bytes, str, int, None] = None,
        pool: Optional[Any] = None,
    ) -> Tuple[int, ...]:
        """Refresh the randomness of every ciphertext, batched.

        With ``pool`` (a :class:`~repro.crypto.paillier.RandomnessPool`)
        the obfuscators come from one :meth:`take_many` drain — pooled
        values cost a single lock round-trip, and any shortfall is
        computed in one unlocked batch.  Without a pool each obfuscator
        is a fresh ``r^n`` from ``rng`` (the CRT split applies when the
        engine holds the private key).  The multiplications themselves
        are cheap; the obfuscators dominate, which is why the pool tier
        (persisted by :mod:`repro.store`) is the fast path.
        """
        if not self.supports_key(public):
            raise ParameterError(
                "engine rerandomisation requires a Paillier public key, got %r"
                % type(public).__name__
            )
        if not ciphertexts:
            return ()
        nsquare = public.nsquare
        if pool is not None:
            obfuscators = pool.take_many(len(ciphertexts))
        else:
            source = as_random_source(rng)
            private = self.private_key
            use_crt = (
                private is not None
                and not self.fixed_base
                and getattr(private, "public_key", None) == public
                and hasattr(private, "obfuscator_from_r")
            )
            obfuscators = []
            for _ in ciphertexts:
                while True:
                    candidate = source.randrange(1, public.n)
                    if math.gcd(candidate, public.n) == 1:
                        break
                obfuscators.append(
                    private.obfuscator_from_r(candidate)
                    if use_crt
                    else pow(candidate, public.n, nsquare)
                )
        return tuple(
            ct * ob % nsquare for ct, ob in zip(ciphertexts, obfuscators)
        )


#: Kernel dispatch by key-blob kind tag.
_KERNELS: Dict[bytes, Callable[[bytes], bytes]] = {
    _KIND_ENCRYPT: _encrypt_chunk_packed,
    _KIND_WEIGHTED: _weighted_chunk_packed,
}
