"""Semantics-preserving simulated Paillier for paper-scale experiments.

The paper's experiments run the protocol on databases of up to 100,000
elements with 512-bit keys.  Doing that with pure-Python big-int
cryptography would take minutes per data point, and the timing would
reflect CPython's ``pow`` rather than the paper's 2004 hardware anyway.

:class:`SimulatedPaillier` solves both problems (DESIGN.md §3, substitution
1): it implements the *exact algebra* of Paillier — same plaintext
modulus structure, same homomorphic identities, same message sizes — but
represents a ciphertext as ``(plaintext mod M, nonce)``.  The nonce gives
every fresh encryption a distinct identity (mirroring semantic security's
randomised ciphertexts) without the modular exponentiation.

Protocol code cannot tell the difference: the test suite runs every
protocol against both the real and the simulated scheme and asserts the
transcript structure and results agree.  Timing for simulated runs comes
from the :mod:`repro.timing` cost model, never from the wall clock.

``SimulatedPaillier`` deliberately implements the same
:class:`~repro.crypto.scheme.AdditiveHomomorphicScheme` interface —
swapping it for the real scheme is a one-argument change.
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple, Union

from repro.crypto.ntheory import bytes_for_bits
from repro.crypto.rng import RandomSource, as_random_source
from repro.crypto.scheme import AdditiveHomomorphicScheme, SchemeKeyPair
from repro.exceptions import DecryptionError, EncryptionError, KeyMismatchError

__all__ = ["SimulatedPublicKey", "SimulatedPrivateKey", "SimCiphertext", "SimulatedPaillier"]


class SimulatedPublicKey:
    """Stand-in public key: a modulus of the right size, no trapdoor.

    The modulus is an arbitrary odd integer with the top bit set — the
    protocols only need ``M`` for reduction and the bit size for wire
    accounting, not its factorisation.
    """

    __slots__ = ("n", "bits", "max_int", "key_id")

    _next_key_id = itertools.count(1)

    def __init__(self, n: int) -> None:
        self.n = n
        self.bits = n.bit_length()
        self.max_int = n // 3 - 1
        self.key_id = next(self._next_key_id)

    def encode_signed(self, value: int) -> int:
        """Map a signed integer into Z_n (mirrors real Paillier)."""
        if abs(value) > self.max_int:
            raise EncryptionError(
                "value %d exceeds signed capacity +/-%d" % (value, self.max_int)
            )
        return value % self.n

    def decode_signed(self, encoded: int) -> int:
        """Inverse of :meth:`encode_signed`; detects overflow."""
        if encoded <= self.max_int:
            return encoded
        if encoded >= self.n - self.max_int:
            return encoded - self.n
        raise DecryptionError("decoded plaintext fell in the overflow gap")

    def __repr__(self) -> str:
        return "SimulatedPublicKey(bits=%d)" % self.bits


class SimulatedPrivateKey:
    """Stand-in private key: just a capability reference to the public key."""

    __slots__ = ("public_key",)

    def __init__(self, public_key: SimulatedPublicKey) -> None:
        self.public_key = public_key


class SimCiphertext:
    """A simulated ciphertext: tracked plaintext plus a freshness nonce.

    Equality compares (key, plaintext, nonce): two independent encryptions
    of the same plaintext are *not* equal, mirroring semantic security.
    """

    __slots__ = ("key_id", "plaintext", "nonce")

    def __init__(self, key_id: int, plaintext: int, nonce: int) -> None:
        self.key_id = key_id
        self.plaintext = plaintext
        self.nonce = nonce

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SimCiphertext)
            and (self.key_id, self.plaintext, self.nonce)
            == (other.key_id, other.plaintext, other.nonce)
        )

    def __hash__(self) -> int:
        return hash((self.key_id, self.plaintext, self.nonce))

    def __repr__(self) -> str:
        return "SimCiphertext(nonce=%d)" % self.nonce


class SimulatedPaillier(AdditiveHomomorphicScheme):
    """Drop-in Paillier substitute with identical algebra and sizes."""

    name = "simulated-paillier"

    def __init__(self, rng: Union[RandomSource, bytes, str, int, None] = None) -> None:
        self._rng = as_random_source(rng)
        self._nonce = itertools.count(1)

    # -- key management ---------------------------------------------------

    def generate(self, bits: int = 512, rng: Union[RandomSource, bytes, str, int, None] = None) -> SchemeKeyPair:
        """Generate a key pair (scheme-interface hook)."""
        source = as_random_source(rng) if rng is not None else self._rng
        # Any odd modulus of the right size; no primality needed without
        # a trapdoor to protect.
        n = source.randbits(bits) | (1 << (bits - 1)) | 1
        public = SimulatedPublicKey(n)
        return SchemeKeyPair(public, SimulatedPrivateKey(public))

    def plaintext_modulus(self, public: SimulatedPublicKey) -> int:
        """The plaintext modulus M (scheme-interface hook)."""
        return public.n

    def ciphertext_size_bytes(self, public: SimulatedPublicKey) -> int:
        # Same as real Paillier: ciphertexts live in Z_{n^2}.
        """Wire size of one ciphertext in bytes (scheme-interface hook)."""
        return bytes_for_bits(2 * public.bits)

    # -- operations ----------------------------------------------------------

    def encrypt(
        self,
        public: SimulatedPublicKey,
        plaintext: int,
        rng: Union[RandomSource, bytes, str, int, None] = None,
    ) -> SimCiphertext:
        """Encrypt a plaintext into a fresh ciphertext (scheme-interface hook)."""
        return SimCiphertext(public.key_id, plaintext % public.n, next(self._nonce))

    def decrypt(
        self, private: SimulatedPrivateKey, ciphertext: SimCiphertext
    ) -> int:
        """Decrypt a ciphertext to its representative in [0, M) (scheme-interface hook)."""
        if ciphertext.key_id != private.public_key.key_id:
            raise KeyMismatchError("ciphertext was produced under a different key")
        return ciphertext.plaintext

    def ciphertext_add(
        self, public: SimulatedPublicKey, a: SimCiphertext, b: SimCiphertext
    ) -> SimCiphertext:
        """Homomorphic addition of two ciphertexts (scheme-interface hook)."""
        self._check(public, a)
        self._check(public, b)
        return SimCiphertext(
            public.key_id, (a.plaintext + b.plaintext) % public.n, next(self._nonce)
        )

    def ciphertext_scale(
        self, public: SimulatedPublicKey, a: SimCiphertext, scalar: int
    ) -> SimCiphertext:
        """Homomorphic scalar multiplication (scheme-interface hook)."""
        self._check(public, a)
        return SimCiphertext(
            public.key_id, a.plaintext * (scalar % public.n) % public.n, next(self._nonce)
        )

    def identity(self, public: SimulatedPublicKey) -> SimCiphertext:
        # Deterministic, like Paillier's ciphertext 1 (= E(0) with r = 1).
        """A deterministic encryption of zero (scheme-interface hook)."""
        return SimCiphertext(public.key_id, 0, 0)

    def rerandomize(
        self,
        public: SimulatedPublicKey,
        a: SimCiphertext,
        rng: Union[RandomSource, bytes, str, int, None] = None,
    ) -> SimCiphertext:
        """Refresh a ciphertext's randomness, preserving the plaintext (scheme-interface hook)."""
        self._check(public, a)
        return SimCiphertext(public.key_id, a.plaintext, next(self._nonce))

    # -- helpers ----------------------------------------------------------------

    def _check(self, public: SimulatedPublicKey, c: SimCiphertext) -> None:
        if c.key_id != public.key_id:
            raise KeyMismatchError("ciphertext/key mismatch in simulated scheme")
