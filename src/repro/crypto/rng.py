"""Random-number sources for the cryptosystems.

Two sources are provided behind one tiny interface:

* :class:`SecureRandom` — wraps :mod:`secrets` / ``os.urandom`` and is the
  default for any real use of the cryptosystems.
* :class:`DeterministicRandom` — an HMAC-DRBG (NIST SP 800-90A style,
  HMAC-SHA256) seeded from caller-supplied bytes.  Experiments and tests
  use it so that every benchmark run and every regression test is exactly
  reproducible, which the paper's experimental methodology (fixed
  workloads, repeated sweeps) requires.

The interface is intentionally minimal — ``randbits``, ``randbelow``,
``randrange`` — because that is all the key generators and encryptors
need.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from typing import Union

__all__ = ["RandomSource", "SecureRandom", "DeterministicRandom", "as_random_source"]


class RandomSource:
    """Abstract source of uniformly random integers."""

    def randbits(self, bits: int) -> int:
        """Return a uniform integer in ``[0, 2**bits)``."""
        raise NotImplementedError

    def randbelow(self, upper: int) -> int:
        """Return a uniform integer in ``[0, upper)`` for ``upper >= 1``."""
        if upper <= 0:
            raise ValueError("upper bound must be positive")
        bits = upper.bit_length()
        while True:
            candidate = self.randbits(bits)
            if candidate < upper:
                return candidate

    def randrange(self, lower: int, upper: int) -> int:
        """Return a uniform integer in ``[lower, upper)``."""
        if upper <= lower:
            raise ValueError("empty range [%d, %d)" % (lower, upper))
        return lower + self.randbelow(upper - lower)

    def randbytes(self, length: int) -> bytes:
        """Return ``length`` uniform random bytes."""
        if length < 0:
            raise ValueError("length must be non-negative")
        return self.randbits(8 * length).to_bytes(length, "big") if length else b""


class SecureRandom(RandomSource):
    """Cryptographically secure randomness from the operating system."""

    def randbits(self, bits: int) -> int:
        """Uniform integer in [0, 2**bits) from the OS CSPRNG."""
        if bits < 0:
            raise ValueError("bit count must be non-negative")
        if bits == 0:
            return 0
        return secrets.randbits(bits)

    def randbytes(self, length: int) -> bytes:
        """``length`` bytes from the OS CSPRNG."""
        if length < 0:
            raise ValueError("length must be non-negative")
        return secrets.token_bytes(length)


class DeterministicRandom(RandomSource):
    """HMAC-SHA256 DRBG for reproducible experiments and tests.

    The generator follows the HMAC-DRBG construction: internal state
    ``(K, V)`` is updated with every reseed and every generate call, so
    output streams for different seeds are independent and a given seed
    always yields the same stream.

    This generator is *deterministic by design* and must not be used where
    real security is required; :class:`SecureRandom` is the default
    everywhere in the library.
    """

    _HASHLEN = 32  # SHA-256 output size in bytes

    def __init__(self, seed: Union[bytes, str, int]) -> None:
        self._key = b"\x00" * self._HASHLEN
        self._value = b"\x01" * self._HASHLEN
        self._update(_seed_to_bytes(seed))

    def _hmac(self, key: bytes, data: bytes) -> bytes:
        return hmac.new(key, data, hashlib.sha256).digest()

    def _update(self, data: bytes = b"") -> None:
        self._key = self._hmac(self._key, self._value + b"\x00" + data)
        self._value = self._hmac(self._key, self._value)
        if data:
            self._key = self._hmac(self._key, self._value + b"\x01" + data)
            self._value = self._hmac(self._key, self._value)

    def randbytes(self, length: int) -> bytes:
        """``length`` bytes from the deterministic HMAC-DRBG stream."""
        if length < 0:
            raise ValueError("length must be non-negative")
        out = bytearray()
        while len(out) < length:
            self._value = self._hmac(self._key, self._value)
            out.extend(self._value)
        self._update()
        return bytes(out[:length])

    def randbits(self, bits: int) -> int:
        """Uniform integer in [0, 2**bits) from the DRBG stream."""
        if bits < 0:
            raise ValueError("bit count must be non-negative")
        if bits == 0:
            return 0
        raw = int.from_bytes(self.randbytes((bits + 7) // 8), "big")
        return raw >> ((8 - bits % 8) % 8)


def _seed_to_bytes(seed: Union[bytes, str, int]) -> bytes:
    if isinstance(seed, bytes):
        return seed
    if isinstance(seed, str):
        return seed.encode("utf-8")
    if isinstance(seed, int):
        if seed < 0:
            seed = -2 * seed + 1  # fold negatives into distinct positives
        length = max(1, (seed.bit_length() + 7) // 8)
        return seed.to_bytes(length, "big")
    raise TypeError("seed must be bytes, str, or int, got %r" % type(seed).__name__)


def as_random_source(rng: Union[RandomSource, bytes, str, int, None]) -> RandomSource:
    """Coerce a convenience value into a :class:`RandomSource`.

    ``None`` yields a fresh :class:`SecureRandom`; a seed value yields a
    :class:`DeterministicRandom`; an existing source passes through.
    """
    if rng is None:
        return SecureRandom()
    if isinstance(rng, RandomSource):
        return rng
    return DeterministicRandom(rng)
