"""Prime generation and primality testing.

The Paillier, RSA, ElGamal, and Goldwasser–Micali key generators all pull
their primes from here.  Testing is Miller–Rabin with a deterministic
witness set for 64-bit inputs and random witnesses above that, preceded by
trial division against a precomputed table of small primes (the standard
speed/assurance tradeoff used by production crypto libraries).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.crypto.rng import RandomSource, as_random_source
from repro.exceptions import KeyGenerationError

__all__ = [
    "SMALL_PRIMES",
    "is_probable_prime",
    "miller_rabin",
    "next_prime",
    "random_prime",
    "random_prime_pair",
    "random_safe_prime",
    "random_blum_prime",
    "sieve_upto",
]

# Deterministic Miller-Rabin witness set: correct for all n < 3.3e24
# (Sorenson & Webster), which covers every input our 64-bit fast path sees.
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981

_DEFAULT_ROUNDS = 40  # error probability <= 4^-40 per composite


def sieve_upto(limit: int) -> List[int]:
    """All primes strictly below ``limit`` via the sieve of Eratosthenes."""
    if limit <= 2:
        return []
    flags = bytearray([1]) * limit
    flags[0] = flags[1] = 0
    for p in range(2, int(limit**0.5) + 1):
        if flags[p]:
            flags[p * p :: p] = bytearray(len(flags[p * p :: p]))
    return [i for i, f in enumerate(flags) if f]


SMALL_PRIMES: Tuple[int, ...] = tuple(sieve_upto(10_000))


def miller_rabin(n: int, witnesses: Iterator[int]) -> bool:
    """Miller–Rabin test of odd ``n > 2`` against explicit witnesses.

    Returns False as soon as any witness proves ``n`` composite.
    """
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in witnesses:
        a %= n
        if a in (0, 1, n - 1):
            continue
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def is_probable_prime(
    n: int, rng: Optional[RandomSource] = None, rounds: int = _DEFAULT_ROUNDS
) -> bool:
    """Probabilistic primality test.

    Deterministic (no false answers) for ``n`` below ~3.3e24; above that
    the error probability is at most ``4**-rounds`` per composite.
    """
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    if n < _DETERMINISTIC_BOUND:
        return miller_rabin(n, iter(_DETERMINISTIC_WITNESSES))
    source = as_random_source(rng)
    witnesses = (source.randrange(2, n - 1) for _ in range(rounds))
    return miller_rabin(n, witnesses)


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = max(n + 1, 2)
    if candidate > 2 and candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 1 if candidate == 2 else 2
    return candidate


def random_prime(
    bits: int, rng: Optional[RandomSource] = None, max_attempts: int = 100_000
) -> int:
    """Random prime of exactly ``bits`` bits (top and bottom bits set).

    Setting the top bit guarantees products of two such primes have the
    expected modulus size; setting the bottom bit skips even candidates.
    """
    if bits < 2:
        raise KeyGenerationError("cannot generate a prime of %d bits" % bits)
    source = as_random_source(rng)
    for _ in range(max_attempts):
        candidate = source.randbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, source):
            return candidate
    raise KeyGenerationError(
        "no %d-bit prime found in %d attempts" % (bits, max_attempts)
    )


def random_prime_pair(
    bits: int, rng: Optional[RandomSource] = None
) -> Tuple[int, int]:
    """Two distinct primes of ``bits`` bits each, suitable for an RSA or
    Paillier modulus of ``2*bits`` bits.

    Guarantees ``p != q`` and, for Paillier's simplified decryption
    (``g = n + 1``), that ``gcd(pq, (p-1)(q-1)) == 1`` — automatic when
    ``p`` and ``q`` are distinct primes of equal size, but asserted anyway.
    """
    source = as_random_source(rng)
    p = random_prime(bits, source)
    q = random_prime(bits, source)
    while q == p:
        q = random_prime(bits, source)
    n = p * q
    phi = (p - 1) * (q - 1)
    if _gcd(n, phi) != 1:  # pragma: no cover - impossible for equal-size primes
        raise KeyGenerationError("gcd(n, phi) != 1; regenerate primes")
    return p, q


def random_safe_prime(
    bits: int, rng: Optional[RandomSource] = None, max_attempts: int = 1_000_000
) -> int:
    """Random safe prime ``p = 2q + 1`` with ``q`` prime, of ``bits`` bits.

    Safe primes give the ElGamal scheme a large prime-order subgroup and
    give the DDH-based oblivious transfer its group.  Generation is slow
    for large sizes, so the tests use modest sizes and the library caches
    a few precomputed groups (:mod:`repro.crypto.elgamal`).
    """
    if bits < 3:
        raise KeyGenerationError("safe primes need at least 3 bits")
    source = as_random_source(rng)
    for _ in range(max_attempts):
        q = random_prime(bits - 1, source)
        p = 2 * q + 1
        if is_probable_prime(p, source):
            return p
    raise KeyGenerationError(
        "no %d-bit safe prime found in %d attempts" % (bits, max_attempts)
    )


def random_blum_prime(
    bits: int, rng: Optional[RandomSource] = None, max_attempts: int = 100_000
) -> int:
    """Random prime congruent to 3 mod 4 (a Blum prime).

    Goldwasser–Micali uses a Blum modulus so that -1 is a canonical
    quadratic non-residue with Jacobi symbol +1.
    """
    source = as_random_source(rng)
    for _ in range(max_attempts):
        p = random_prime(bits, source)
        if p % 4 == 3:
            return p
    raise KeyGenerationError(
        "no %d-bit Blum prime found in %d attempts" % (bits, max_attempts)
    )


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
