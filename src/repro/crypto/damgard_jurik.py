"""The Damgård–Jurik generalization of Paillier.

Paillier works in Z*_{n^2} with plaintext space Z_n.  Damgård & Jurik
(PKC 2001) generalize to Z*_{n^{s+1}} with plaintext space Z_{n^s} for
any s >= 1 — the s = 1 case *is* Paillier.  The point for this library:
the selected-sum protocol's plaintext space bounds the largest sum (and
the largest weighted sum) it can carry; Damgård–Jurik raises that bound
without touching the key size, at a ciphertext-size and compute cost
linear in s.  The scheme ablation benches quantify the tradeoff.

Encryption: ``E(m; r) = (1 + n)^m * r^{n^s} mod n^{s+1}``.

Decryption uses the standard iterative algorithm: given
``c^d mod n^{s+1}`` with ``d ≡ 1 (mod n^s)`` and ``d ≡ 0 (mod λ)``,
extract ``m`` digit-by-digit in base n via the polynomial expansion of
``(1 + n)^m`` (Damgård–Jurik, §4.2).

The class implements :class:`~repro.crypto.scheme.
AdditiveHomomorphicScheme`, so every protocol in :mod:`repro.spfe` runs
over it unchanged — which the integration tests exercise.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

from repro.crypto.multiexp import multi_exponent
from repro.crypto.ntheory import bytes_for_bits, lcm, modinv
from repro.crypto.primes import random_prime_pair
from repro.crypto.rng import RandomSource, as_random_source
from repro.crypto.scheme import AdditiveHomomorphicScheme, SchemeKeyPair
from repro.exceptions import (
    DecryptionError,
    EncryptionError,
    KeyGenerationError,
)

__all__ = [
    "DamgardJurikPublicKey",
    "DamgardJurikPrivateKey",
    "DamgardJurikScheme",
    "generate_dj_keypair",
]


class DamgardJurikPublicKey:
    """Public key ``(n, s)``: plaintexts in Z_{n^s}, ciphertexts in Z*_{n^{s+1}}."""

    __slots__ = ("n", "s", "n_to_s", "modulus", "bits")

    def __init__(self, n: int, s: int) -> None:
        if s < 1:
            raise KeyGenerationError("s must be at least 1")
        if n < 6:
            raise KeyGenerationError("modulus too small")
        self.n = n
        self.s = s
        self.n_to_s = n**s
        self.modulus = n ** (s + 1)
        self.bits = n.bit_length()

    def _g_to_m(self, m: int) -> int:
        """(1 + n)^m mod n^{s+1} via the binomial expansion (s+1 terms)."""
        result = 1
        term = 1
        for k in range(1, self.s + 1):
            # term = C(m, k) * n^k, built incrementally.
            term = term * (m - k + 1) // k
            result = (result + term * pow(self.n, k, self.modulus)) % self.modulus
        return result

    def raw_encrypt(self, plaintext: int, r: int) -> int:
        """Encrypt ``plaintext`` in [0, n^s) with explicit randomness r."""
        if not 0 <= plaintext < self.n_to_s:
            raise EncryptionError("plaintext outside [0, n^s)")
        g_to_m = pow(1 + self.n, plaintext, self.modulus)
        return g_to_m * pow(r, self.n_to_s, self.modulus) % self.modulus

    def encrypt_raw(self, plaintext: int, rng: Optional[RandomSource] = None) -> int:
        """Encrypt a plaintext in [0, n^s) with explicit randomness ``r``."""
        source = as_random_source(rng)
        while True:
            r = source.randrange(1, self.n)
            if math.gcd(r, self.n) == 1:
                return self.raw_encrypt(plaintext % self.n_to_s, r)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DamgardJurikPublicKey)
            and (self.n, self.s) == (other.n, other.s)
        )

    def __hash__(self) -> int:
        return hash(("dj-pk", self.n, self.s))

    def __repr__(self) -> str:
        return "DamgardJurikPublicKey(bits=%d, s=%d)" % (self.bits, self.s)


class DamgardJurikPrivateKey:
    """Private key: λ = lcm(p-1, q-1) plus the digit-extraction decryptor."""

    __slots__ = ("public_key", "p", "q", "_d")

    def __init__(
        self, public_key: DamgardJurikPublicKey, p: int, q: int
    ) -> None:
        if p * q != public_key.n:
            raise KeyGenerationError("p * q does not match the public modulus")
        self.public_key = public_key
        self.p = p
        self.q = q
        lam = lcm(p - 1, q - 1)
        # d ≡ 0 (mod λ), d ≡ 1 (mod n^s)  — CRT over coprime moduli.
        n_to_s = public_key.n_to_s
        self._d = lam * (modinv(lam % n_to_s, n_to_s)) % (lam * n_to_s)
        if self._d % lam != 0 or self._d % n_to_s != 1:
            raise KeyGenerationError("failed to construct decryption exponent")

    def raw_decrypt(self, ciphertext: int) -> int:
        """Recover m in [0, n^s) by iterated discrete-log extraction."""
        pk = self.public_key
        if not 0 <= ciphertext < pk.modulus:
            raise DecryptionError("ciphertext outside Z_{n^{s+1}}")
        # c^d = (1 + n)^m mod n^{s+1}; extract m base-n digit block-wise.
        value = pow(ciphertext, self._d, pk.modulus)
        return self._log_one_plus_n(value)

    def _log_one_plus_n(self, value: int) -> int:
        """Discrete log of ``value`` to base (1 + n) in Z*_{n^{s+1}}.

        Damgård–Jurik's algorithm: for j = 1..s, reduce mod n^{j+1},
        compute L(·) = (· - 1)/n, and strip the known binomial tail of
        the digits recovered so far.
        """
        pk = self.public_key
        n = pk.n
        m = 0
        for j in range(1, pk.s + 1):
            mod_j1 = n ** (j + 1)
            mod_j = n**j
            u = value % mod_j1
            t1 = (u - 1) // n  # L(u mod n^{j+1})
            # Strip the binomial tail of the digits recovered so far:
            # m_j = t1 - sum_{k=2..j} C(m, k) n^{k-1}  (mod n^j).
            correction = 0
            for k in range(2, j + 1):
                correction = (
                    correction + _binomial(m, k) * pow(n, k - 1, mod_j)
                ) % mod_j
            m = (t1 - correction) % mod_j
        return m


def _binomial(m: int, k: int) -> int:
    """C(m, k) for non-negative k (m may be any non-negative int)."""
    result = 1
    for i in range(k):
        result = result * (m - i) // (i + 1)
    return result


def generate_dj_keypair(
    bits: int = 512,
    s: int = 2,
    rng: Union[RandomSource, bytes, str, int, None] = None,
) -> SchemeKeyPair:
    """Generate a Damgård–Jurik key pair (s = 1 is exactly Paillier)."""
    if bits < 16:
        raise KeyGenerationError("key size %d too small" % bits)
    source = as_random_source(rng)
    p, q = random_prime_pair(bits // 2, source)
    public = DamgardJurikPublicKey(p * q, s)
    return SchemeKeyPair(public, DamgardJurikPrivateKey(public, p, q))


class DamgardJurikScheme(AdditiveHomomorphicScheme):
    """Scheme-interface adapter; plug into any :mod:`repro.spfe` protocol.

    The server aggregate uses the same simultaneous-multiexp kernel as
    Paillier — the homomorphic identities are identical with
    ``(n^{s+1}, n^s)`` in place of ``(n^2, n)`` — and an optional
    :class:`~repro.crypto.engine.CryptoEngine` partitions it across
    processes (engine *encryption* stays Paillier-only; the fixed-base
    obfuscator trick needs the ``g = n + 1`` shortcut).
    """

    name = "damgard-jurik"

    def __init__(
        self,
        s: int = 2,
        engine: Optional[object] = None,
        use_multiexp: bool = True,
    ) -> None:
        if s < 1:
            raise KeyGenerationError("s must be at least 1")
        self.s = s
        self.engine = engine
        self.use_multiexp = use_multiexp

    def generate(self, bits: int = 512, rng: Union[RandomSource, bytes, str, int, None] = None) -> SchemeKeyPair:
        """Generate a key pair (scheme-interface hook)."""
        return generate_dj_keypair(bits, self.s, rng)

    def plaintext_modulus(self, public: DamgardJurikPublicKey) -> int:
        """The plaintext modulus M (scheme-interface hook)."""
        return public.n_to_s

    def ciphertext_size_bytes(self, public: DamgardJurikPublicKey) -> int:
        """Wire size of one ciphertext in bytes (scheme-interface hook)."""
        return bytes_for_bits((public.s + 1) * public.bits)

    def encrypt(
        self,
        public: DamgardJurikPublicKey,
        plaintext: int,
        rng: Union[RandomSource, bytes, str, int, None] = None,
    ) -> int:
        """Encrypt a plaintext into a fresh ciphertext (scheme-interface hook)."""
        return public.encrypt_raw(plaintext, as_random_source(rng))

    def decrypt(self, private: DamgardJurikPrivateKey, ciphertext: int) -> int:
        """Decrypt a ciphertext to its representative in [0, M) (scheme-interface hook)."""
        return private.raw_decrypt(ciphertext)

    def ciphertext_add(self, public: DamgardJurikPublicKey, a: int, b: int) -> int:
        """Homomorphic addition of two ciphertexts (scheme-interface hook)."""
        return a * b % public.modulus

    def ciphertext_scale(
        self, public: DamgardJurikPublicKey, a: int, scalar: int
    ) -> int:
        """Homomorphic scalar multiplication (scheme-interface hook)."""
        return pow(a, scalar % public.n_to_s, public.modulus)

    def identity(self, public: DamgardJurikPublicKey) -> int:
        """A deterministic encryption of zero (scheme-interface hook)."""
        return 1

    def rerandomize(
        self,
        public: DamgardJurikPublicKey,
        a: int,
        rng: Union[RandomSource, bytes, str, int, None] = None,
    ) -> int:
        """Refresh a ciphertext's randomness, preserving the plaintext (scheme-interface hook)."""
        zero = public.encrypt_raw(0, as_random_source(rng))
        return a * zero % public.modulus

    def weighted_product(
        self,
        public: DamgardJurikPublicKey,
        ciphertexts: Sequence[int],
        weights: Sequence[int],
        initial: Optional[int] = None,
    ) -> int:
        """The server aggregate ``prod_i c_i^{w_i} mod n^{s+1}``, batched."""
        if not self.use_multiexp and self.engine is None:
            return super().weighted_product(public, ciphertexts, weights, initial)
        if len(ciphertexts) != len(weights):
            raise ValueError("ciphertext/weight length mismatch")
        if self.engine is not None:
            return self.engine.weighted_product(
                public.modulus, public.n_to_s, ciphertexts, weights, initial
            )
        return multi_exponent(
            ciphertexts,
            [w % public.n_to_s for w in weights],
            public.modulus,
            initial=initial,
        )
