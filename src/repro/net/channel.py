"""In-memory channels with byte accounting and virtual transfer timing.

A :class:`Pipe` is one direction of a connection: it moves
:class:`~repro.net.wire.Message` objects between two parties, counts every
byte, and — for modelled runs — computes when each message *arrives*
given a :class:`~repro.net.link.LinkModel` and the sender's virtual clock.

Arrival computation models a serializing link: a message starts
transmitting when both the sender has produced it and the link is free;
it occupies the link for its serialization time; it arrives one
propagation latency after transmission ends.  This is what makes the
paper's §3.2 pipeline parallelism meaningful: while batch *i* is on the
wire, the client can encrypt batch *i+1* and the server can multiply
batch *i-1*.

A :class:`Channel` bundles the two directions of a client/server
connection plus per-party transcripts for privacy audits.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

from repro.exceptions import ChannelError
from repro.net.link import LinkModel
from repro.net.wire import Message, MessageLog

__all__ = ["Pipe", "Channel"]


class Pipe:
    """One direction of a connection, with accounting.

    In modelled runs, :meth:`send` takes the sender's virtual time and
    returns the arrival time at the receiver.  In live runs callers pass
    ``sender_time=0.0`` and ignore the return value — byte counters still
    accumulate so communication can be costed after the fact.
    """

    def __init__(self, link: LinkModel, name: str = "pipe") -> None:
        self.link = link
        self.name = name
        self._queue: Deque[Tuple[Message, float]] = deque()
        self._link_free_at = 0.0
        self.bytes_sent = 0
        self.messages_sent = 0

    def send(self, message: Message, sender_time: float = 0.0) -> float:
        """Queue a message; return its arrival time at the receiver."""
        self.bytes_sent += message.wire_bytes
        self.messages_sent += 1
        serial = message.wire_bytes * 8.0 / self.link.bandwidth_bps
        # The per-message overhead (marshalling + syscall) serializes with
        # the stream, so it occupies the link like transmission time does.
        start = max(sender_time, self._link_free_at)
        self._link_free_at = start + self.link.per_message_overhead_s + serial
        arrival = self._link_free_at + self.link.latency_s
        self._queue.append((message, arrival))
        return arrival

    def recv(self) -> Tuple[Message, float]:
        """Dequeue the next message and its arrival time (FIFO)."""
        if not self._queue:
            raise ChannelError("recv on empty pipe %r" % self.name)
        return self._queue.popleft()

    def pending(self) -> int:
        """Messages queued but not yet received."""
        return len(self._queue)

    def reset_clock(self) -> None:
        """Forget link occupancy (new protocol run on the same pipe)."""
        self._link_free_at = 0.0


class Channel:
    """A bidirectional client/server connection with transcripts.

    Attributes:
        uplink: client -> server pipe.
        downlink: server -> client pipe.
        server_view: transcript of everything the server received — the
            object privacy audits inspect for client-privacy violations.
        client_view: transcript of everything the client received.
    """

    def __init__(self, link: LinkModel, name: str = "channel") -> None:
        self.link = link
        self.name = name
        self.uplink = Pipe(link, name + ":up")
        self.downlink = Pipe(link, name + ":down")
        self.server_view = MessageLog()
        self.client_view = MessageLog()

    # -- client side -------------------------------------------------------

    def client_send(self, message: Message, sender_time: float = 0.0) -> float:
        """Send client -> server; returns the virtual arrival time."""
        return self.uplink.send(message, sender_time)

    def client_recv(self) -> Tuple[Message, float]:
        """Receive at the client (recorded in the client's transcript)."""
        message, arrival = self.downlink.recv()
        self.client_view.record(message)
        return message, arrival

    # -- server side -------------------------------------------------------

    def server_send(self, message: Message, sender_time: float = 0.0) -> float:
        """Send server -> client; returns the virtual arrival time."""
        return self.downlink.send(message, sender_time)

    def server_recv(self) -> Tuple[Message, float]:
        """Receive at the server (recorded in the server's transcript)."""
        message, arrival = self.uplink.recv()
        self.server_view.record(message)
        return message, arrival

    # -- accounting ----------------------------------------------------------

    @property
    def bytes_up(self) -> int:
        return self.uplink.bytes_sent

    @property
    def bytes_down(self) -> int:
        return self.downlink.bytes_sent

    def total_bytes(self) -> int:
        """All bytes moved in both directions."""
        return self.bytes_up + self.bytes_down

    def drain_check(self) -> None:
        """Assert the protocol consumed everything it was sent."""
        if self.uplink.pending() or self.downlink.pending():
            raise ChannelError(
                "protocol finished with undelivered messages on %r" % self.name
            )
