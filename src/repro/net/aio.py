"""Asyncio connection front-end for the selected-sum server.

:class:`AsyncSpfeServer` is the event-loop sibling of the
thread-per-connection :class:`~repro.net.server.SpfeServer`.  The
ROADMAP's north star is serving heavy traffic from very large user
populations; a thread per connection caps concurrent sessions at the
thread budget long before the CPU is busy, while an event loop holds
thousands of mostly-idle connections (slow senders, clients sleeping
between BUSY retries, resumable sessions trickling chunks) at the cost
of a file descriptor each.

The split of responsibilities:

* **this module** owns sockets and concurrency: ``asyncio.start_server``
  accepts, per-read deadlines are ``asyncio.wait_for`` budgets, BUSY
  shedding and graceful drain are coroutines;
* the **protocol layer is unchanged**:
  :meth:`~repro.spfe.session.ServerSession.receive_bytes` is a pure
  byte-in/byte-out state machine with no I/O of its own, so the same
  session object serves both front-ends (the loop-safety audit note
  lives on the class);
* **CPU-heavy folds** (modular exponentiation over ciphertext chunks)
  run through ``loop.run_in_executor`` on a bounded thread pool, so
  bignum math never stalls the event loop — and an installed
  :class:`~repro.crypto.engine.CryptoEngine` still routes them onto its
  worker processes;
* **accounting** is the shared, backend-neutral
  :class:`~repro.net.core.ServerAccounting` — admission budget, outcome
  classification, gauges, and the drain trigger are byte-for-byte the
  semantics of the threaded front-end, which is what makes
  ``serve --backend {threads,asyncio}`` an operational knob rather than
  a behaviour change.

The public lifecycle is deliberately synchronous — ``start()``,
``stop()``, ``wait()``, ``initiate_drain()``, context manager — with
the event loop confined to one daemon thread.  Callers, tests, and
``repro.cli`` drive either backend through the identical surface.

Admission mirrors the threaded design: an ``asyncio.Semaphore`` of
``max_sessions`` bounds concurrent serving, a queued-waiter count
bounded by ``accept_backlog`` models the accept queue, and anything
beyond (or past the ``max_queries`` budget) is shed with a typed BUSY
frame under the same small send budget.  Drain stops the listener,
sheds the queue, lets in-flight sessions finish under the drain
deadline, then force-cancels stragglers (accounted as drops).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import signal
import socket
import threading
import time
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.datastore.database import ServerDatabase
from repro.exceptions import (
    ParameterError,
    TransportError,
    TransportTimeout,
)
from repro.net import codec
from repro.net.core import (
    DEFAULT_DRAIN_DEADLINE_S,
    _POLL_S,
    _SHED_SEND_BUDGET_S,
    ServerAccounting,
    ServerStats,
)
from repro.net.transport import DEFAULT_RECV_BYTES
from repro.obs.http import StatsEndpoint
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.spfe.session import ServerSession, SessionRegistry
from repro.spfe.validation import ServerPolicy
from repro.store.state import StateStore

__all__ = ["AsyncSpfeServer"]

#: how long start() waits for the loop thread to come up before giving up
_BOOT_TIMEOUT_S = 10.0


class AsyncSpfeServer:
    """Event-loop selected-sum server; same surface as ``SpfeServer``.

    Constructor arguments, counters, admission semantics, and the
    lifecycle API match :class:`~repro.net.server.SpfeServer` exactly —
    see that class for the parameter reference.  The differences are
    operational: concurrency is ``max_sessions`` coroutine slots rather
    than worker threads, and protocol folds run on an internal
    ``ThreadPoolExecutor`` (one thread per slot) via
    ``loop.run_in_executor``.
    """

    def __init__(
        self,
        database: ServerDatabase,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        policy: Optional[ServerPolicy] = None,
        registry: Optional[SessionRegistry] = None,
        store: Optional[StateStore] = None,
        max_sessions: int = 4,
        accept_backlog: int = 8,
        read_timeout: Optional[float] = 30.0,
        connection_deadline_s: Optional[float] = None,
        max_queries: int = 0,
        busy_retry_ms: int = 250,
        engine: Optional[object] = None,
        metrics: Optional[MetricsRegistry] = None,
        stats_port: Optional[int] = None,
        log: Optional[Callable[[str], object]] = None,
    ) -> None:
        if max_sessions < 1:
            raise ParameterError("max_sessions must be positive")
        if accept_backlog < 1:
            raise ParameterError("accept_backlog must be positive")
        if max_queries < 0:
            raise ParameterError("max_queries must be non-negative")
        if stats_port is not None and stats_port < 0:
            raise ParameterError("stats_port must be non-negative")
        self.database = database
        self.host = host
        self.policy = policy if policy is not None else ServerPolicy()
        self.store = store if registry is None else None
        self.registry = (
            registry
            if registry is not None
            else SessionRegistry.from_policy(self.policy, store=self.store)
        )
        self.max_sessions = max_sessions
        self.accept_backlog = accept_backlog
        self.read_timeout = read_timeout
        self.connection_deadline_s = connection_deadline_s
        self.max_queries = max_queries
        self.busy_retry_ms = busy_retry_ms
        self.engine = engine
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = ServerStats(self.metrics)
        self.tracer = Tracer(registry=self.metrics)
        self.stats_port = stats_port
        self._stats_endpoint: Optional[StatsEndpoint] = None
        self._log = log
        self._core = ServerAccounting(
            self.stats,
            metrics=self.metrics,
            max_queries=max_queries,
            backend="asyncio",
            note=self._note,
        )
        self._requested_port = port
        self._listener: Optional[socket.socket] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._executor: Optional[concurrent.futures.ThreadPoolExecutor] = None
        #: loop-owned state, created inside _main on the loop thread
        self._aio_drain: Optional[asyncio.Event] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._tasks: "Set[asyncio.Task]" = set()
        self._queued = 0
        self._ready = threading.Event()
        self._boot_error: Optional[BaseException] = None
        self._drain = threading.Event()
        self._stopped = threading.Event()
        self._loop_done = threading.Event()
        self._finalize_lock = threading.Lock()
        self._finalized = False
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "AsyncSpfeServer":
        """Bind the listener, then bring the event loop up on a thread.

        The socket is bound synchronously so :attr:`port` is valid the
        moment ``start`` returns; the loop thread only adopts it.  Like
        the threaded front-end, startup is transactional: any failure
        (stats port taken, loop boot error) closes whatever was bound
        and resets state so a corrected retry can start again.
        """
        if self._started:
            raise ParameterError("server already started")
        self._started = True
        try:
            self._listener = socket.create_server(
                (self.host, self._requested_port), backlog=self.accept_backlog
            )
            self._listener.setblocking(False)
            if self.stats_port is not None:
                self._stats_endpoint = StatsEndpoint(
                    self.metrics,
                    host=self.host,
                    port=self.stats_port,
                    health=self._health,
                ).start()
            self._loop = asyncio.new_event_loop()
            self._loop_thread = threading.Thread(
                target=self._run_loop, name="spfe-aio-loop", daemon=True
            )
            self._loop_thread.start()
            self._ready.wait(timeout=_BOOT_TIMEOUT_S)
            if self._boot_error is not None:
                raise self._boot_error
            if not self._ready.is_set():
                raise TransportError("event loop failed to come up")
        except BaseException:
            self._abort_start()
            raise
        return self

    def _abort_start(self) -> None:
        """Unwind a partially started server so ``start`` can be retried."""
        self._drain.set()
        if self._loop_thread is not None:
            self._signal_loop_drain()
            self._loop_thread.join(timeout=5.0)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._stats_endpoint is not None:
            self._stats_endpoint.close()
        self._listener = None
        self._stats_endpoint = None
        self._loop = None
        self._loop_thread = None
        self._boot_error = None
        self._ready = threading.Event()
        self._loop_done = threading.Event()
        self._drain = threading.Event()
        self._started = False

    @property
    def port(self) -> int:
        """The bound port (resolves an ephemeral bind)."""
        if self._listener is None:
            raise ParameterError("server not started")
        return self._listener.getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) pair."""
        if self._listener is None:
            raise ParameterError("server not started")
        return self._listener.getsockname()[:2]

    @property
    def stats_address(self) -> Tuple[str, int]:
        """The stats endpoint's bound (host, port); needs ``stats_port``."""
        if self._stats_endpoint is None:
            raise ParameterError("stats endpoint not enabled (pass stats_port)")
        return self._stats_endpoint.address

    @property
    def draining(self) -> bool:
        """True once drain has been initiated."""
        return self._drain.is_set()

    @property
    def stopped(self) -> bool:
        """True once the loop has exited and sockets are closed."""
        return self._stopped.is_set()

    def initiate_drain(self) -> None:
        """Begin graceful shutdown (non-blocking, signal-handler safe).

        Stops accepting, sheds queued connections with BUSY, and lets
        in-flight sessions run to completion.  Call :meth:`stop` or
        :meth:`wait` to block until the drain finishes.
        """
        self._drain.set()
        self._signal_loop_drain()

    def _signal_loop_drain(self) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._set_aio_drain)
        except RuntimeError:
            pass  # the loop closed between the check and the call

    def _set_aio_drain(self) -> None:
        # runs on the loop thread
        if self._aio_drain is not None:
            self._aio_drain.set()

    def install_signal_handlers(self) -> Callable[[], None]:
        """Wire SIGINT/SIGTERM to :meth:`initiate_drain`.

        Returns a zero-argument callable restoring the previous
        handlers.  Must run on the main thread (a Python constraint).
        """
        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(
                signum, lambda _sig, _frame: self.initiate_drain()
            )
        def restore() -> None:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        return restore

    def wait(self, drain_deadline_s: Optional[float] = None) -> None:
        """Block until drain is initiated, then finish the shutdown.

        The wait loop wakes periodically so signal handlers installed by
        :meth:`install_signal_handlers` get a chance to run on the main
        thread.
        """
        while not self._drain.wait(_POLL_S):
            pass
        self._finalize(drain_deadline_s)

    def stop(self, drain_deadline_s: Optional[float] = None) -> None:
        """Initiate drain and block until the server is fully stopped."""
        self.initiate_drain()
        self._finalize(drain_deadline_s)

    def __enter__(self) -> "AsyncSpfeServer":
        """Context-manager entry: start the server."""
        return self.start() if not self._started else self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: drain and stop."""
        self.stop()

    def _health(self) -> Dict[str, Any]:
        """The ``/healthz`` document: status plus liveness details.

        ``workers_alive`` reports the loop thread (0 or 1): the asyncio
        front-end has no worker pool whose attrition could be watched,
        so a live event loop *is* the liveness signal.
        """
        if self._stopped.is_set():
            status = "stopped"
        elif self._drain.is_set():
            status = "draining"
        else:
            status = "ok"
        loop_alive = (
            self._loop_thread is not None and self._loop_thread.is_alive()
        )
        return {
            "status": status,
            "in_flight_sessions": self._core.in_flight(),
            "workers_alive": 1 if loop_alive else 0,
            "max_sessions": self.max_sessions,
        }

    def _note(self, message: str) -> None:
        if self._log is not None:
            self._log(message + "\n")

    def _finalize(self, drain_deadline_s: Optional[float]) -> None:
        """Wait out the drain deadline, then force-cancel stragglers."""
        with self._finalize_lock:
            if self._finalized:
                return
            deadline = (
                drain_deadline_s
                if drain_deadline_s is not None
                else DEFAULT_DRAIN_DEADLINE_S
            )
            if self._loop_thread is not None:
                if not self._loop_done.wait(timeout=max(deadline, 1.0)):
                    # Drain deadline exceeded: cancel the remaining
                    # session tasks; each accounts itself as a drop.
                    loop = self._loop
                    if loop is not None and not loop.is_closed():
                        try:
                            loop.call_soon_threadsafe(self._cancel_stragglers)
                        except RuntimeError:
                            pass
                    self._loop_done.wait(timeout=5.0)
                self._loop_thread.join(timeout=5.0)
            if self._listener is not None:
                try:
                    self._listener.close()
                except OSError:
                    pass
            if self.engine is not None:
                # Last step of the drain: no session can still be folding
                # once the loop has exited, so the kernel pool can be
                # torn down without cutting work short.
                self.engine.close()
            if self._stats_endpoint is not None:
                self._stats_endpoint.close()
            self._finalized = True
            self._stopped.set()

    def _cancel_stragglers(self) -> None:
        # runs on the loop thread
        for task in list(self._tasks):
            task.cancel()

    # -- event loop ---------------------------------------------------------

    def _run_loop(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        # seclint: disable=SEC005 -- boot errors must surface to start()
        except BaseException as exc:
            if self._boot_error is None:
                self._boot_error = exc
        finally:
            self._loop.close()
            self._ready.set()  # unblock start() even on early death
            self._loop_done.set()

    async def _main(self) -> None:
        self._aio_drain = asyncio.Event()
        self._slots = asyncio.Semaphore(self.max_sessions)
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_sessions, thread_name_prefix="spfe-aio-fold"
        )
        try:
            server = await asyncio.start_server(
                self._handle_connection, sock=self._listener
            )
        except OSError as exc:
            self._boot_error = exc
            self._ready.set()
            self._executor.shutdown(wait=False)
            return
        if self._drain.is_set():
            self._aio_drain.set()  # drain won the boot race
        self._ready.set()
        await self._aio_drain.wait()
        # Drain: refuse new connections at the TCP level.  Handler tasks
        # spawned before the close shed themselves on the drain event;
        # in-flight sessions run to completion (or are force-cancelled
        # by _finalize at the drain deadline and account as drops).
        server.close()
        await server.wait_closed()
        while self._tasks:
            await asyncio.wait(list(self._tasks))
        # Folds are bounded by the session tasks just awaited, so there
        # is no queued work to wait for; don't block the loop exit.
        self._executor.shutdown(wait=False)

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        peer = writer.get_extra_info("peername") or ("?", 0)
        self.stats.add("connections_accepted")
        assert self._aio_drain is not None and self._slots is not None
        if self._aio_drain.is_set():
            await self._shed(reader, writer, peer, "draining")
            return
        if not self._core.admit_query_budget():
            await self._shed(reader, writer, peer, "query budget exhausted")
            return
        # The queued-waiter bound plays the accept queue's role in the
        # threaded front-end: at most accept_backlog connections may sit
        # waiting for a session slot; beyond that, shed.
        if self._queued >= self.accept_backlog:
            self._core.release_query_budget()
            await self._shed(reader, writer, peer)
            return
        self._queued += 1
        try:
            admitted = await self._acquire_slot()
        except asyncio.CancelledError:
            self._core.release_query_budget()
            self._close_writer(writer)
            return
        finally:
            self._queued -= 1
        if not admitted:
            self._core.release_query_budget()
            await self._shed(reader, writer, peer, "draining")
            return
        self._core.session_admitted()
        served = False
        try:
            served = await self._serve_connection(reader, writer, peer)
        # seclint: disable=SEC005 -- handler tasks must survive session bugs
        except Exception as exc:
            # A bug in session handling must cost one connection, never
            # the server: mirror the threaded worker's catch-all so the
            # outcome invariant survives injected handler bugs too.
            self.stats.add("sessions_dropped")
            self.stats.add("sessions_errored_internal")
            self._note("dropped %s: internal error: %r" % (peer, exc))
            self._close_writer(writer)
        finally:
            self._slots.release()
            if self._core.retire_session(served):
                self.initiate_drain()

    async def _acquire_slot(self) -> bool:
        """Wait for a session slot; False when drain wins the race."""
        assert self._aio_drain is not None and self._slots is not None
        acquire = asyncio.ensure_future(self._slots.acquire())
        drain = asyncio.ensure_future(self._aio_drain.wait())
        try:
            await asyncio.wait(
                {acquire, drain}, return_when=asyncio.FIRST_COMPLETED
            )
        except asyncio.CancelledError:
            acquire.cancel()
            drain.cancel()
            await asyncio.gather(acquire, drain, return_exceptions=True)
            if acquire.done() and not acquire.cancelled():
                self._slots.release()  # acquired in the cancellation race
            raise
        drain_won = drain.done() and not acquire.done()
        acquire.cancel()
        drain.cancel()
        await asyncio.gather(acquire, drain, return_exceptions=True)
        if acquire.done() and not acquire.cancelled():
            if drain_won:
                # acquired between the wait and the cancel: give it back
                self._slots.release()
                return False
            return True
        return False

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        peer: Tuple,
    ) -> bool:
        """Run one session over the stream pair; True when served.

        Structurally the twin of the threaded ``_serve_connection``:
        reads are deadline-bounded (per-read timeout under the optional
        total connection budget), replies go back inline, and every exit
        path funnels through the shared outcome classification.  The
        fold — :meth:`ServerSession.receive_bytes` — runs on the
        executor so a large-key modular exponentiation never freezes
        the other connections on the loop.
        """
        session = ServerSession(
            self.database,
            registry=self.registry,
            policy=self.policy,
            engine=self.engine,
            tracer=self.tracer,
        )
        loop = asyncio.get_running_loop()
        self._core.connection_attached()
        started = time.monotonic()
        outcome = "detached"
        detail = ""
        served = False
        try:
            while True:
                timeout = self._core.budgeted_timeout(
                    started, self.read_timeout, self.connection_deadline_s
                )
                try:
                    data = await asyncio.wait_for(
                        reader.read(DEFAULT_RECV_BYTES), timeout
                    )
                except asyncio.TimeoutError as exc:
                    raise TransportTimeout(
                        "no data within %.1fs" % (timeout or 0.0)
                    ) from exc
                except OSError as exc:
                    raise TransportError("recv failed: %s" % exc) from exc
                if not data:
                    break  # peer closed; a resumable client will reconnect
                reply = await loop.run_in_executor(
                    self._executor, session.receive_bytes, data
                )
                if reply:
                    await self._send_reply(writer, reply)
                if session.errored or session.finished:
                    break
        except TransportError as exc:
            outcome = "dropped"
            detail = str(exc)
        except asyncio.CancelledError:
            # force-cancelled at the drain deadline: the peer never got
            # its RESULT, so this is a drop (not re-raised — the task
            # must finish its accounting and let _main's wait complete)
            outcome = "dropped"
            detail = "force-cancelled at the drain deadline"
        # seclint: disable=SEC005 -- internal bugs must still account the session
        except Exception as exc:
            outcome = "internal"
            detail = repr(exc)
        finally:
            self._close_writer(writer)
            self._core.connection_detached()
            served = self._core.account_outcome(session, outcome, peer, detail)
        return served

    async def _send_reply(
        self, writer: asyncio.StreamWriter, reply: bytes
    ) -> None:
        """Write one protocol reply; failures surface as TransportError."""
        try:
            writer.write(reply)
            await writer.drain()
        except OSError as exc:
            raise TransportError("send failed: %s" % exc) from exc

    async def _shed(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        peer: Tuple,
        reason: str = "pool and backlog full",
    ) -> None:
        """Refuse a connection with a typed BUSY frame (best effort).

        The send runs under the same small budget as the threaded shed
        thread, so a peer that never reads cannot hold the handler task
        (and its memory) hostage.  Like the threaded `_send_busy`, the
        close is preceded by a half-close and a bounded drain of the
        peer's already-sent bytes: closing with unread data pending can
        degrade to an RST that destroys the BUSY frame in flight.
        """
        self.stats.add("sessions_shed")
        self._note("shed %s: %s" % (peer, reason))
        try:
            writer.write(codec.encode_busy(self.busy_retry_ms))
            await asyncio.wait_for(writer.drain(), _SHED_SEND_BUDGET_S)
            if writer.can_write_eof():
                writer.write_eof()
            await asyncio.wait_for(reader.read(-1), _SHED_SEND_BUDGET_S)
        except (OSError, asyncio.TimeoutError):
            pass
        except asyncio.CancelledError:
            pass  # shutting down: the close below is all that matters
        finally:
            self._close_writer(writer)

    def _close_writer(self, writer: asyncio.StreamWriter) -> None:
        """Best-effort synchronous close of a stream writer."""
        try:
            writer.close()
        except OSError:
            pass
