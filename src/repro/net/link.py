"""Link models: the communication media of the paper's two testbeds.

The paper measures the protocol over (a) a high-performance cluster
(64 Gbps switch, gigabit NICs) and (b) a 56 Kbps dial-up modem between
Chicago and Hoboken, and discusses wireless multihop as the motivating
worst case.  A :class:`LinkModel` reduces a medium to the three numbers
that matter for a streaming protocol:

* ``bandwidth_bps`` — sustained throughput;
* ``latency_s`` — one-way propagation delay, paid once per direction of a
  message stream (messages in a stream are pipelined, as over TCP);
* ``per_message_overhead_s`` — fixed cost per message (framing,
  serialization, syscalls).  For the paper's unbatched protocol, which
  ships each encrypted index as its own message, this term is what makes
  communication time visible even on the gigabit switch.

Presets are in :data:`links`; each is calibrated in
:mod:`repro.experiments.environments` discussion and DESIGN.md §3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ParameterError

__all__ = ["LinkModel", "links"]


@dataclass(frozen=True)
class LinkModel:
    """A point-to-point communication medium.

    Attributes:
        name: human-readable identifier used in reports.
        bandwidth_bps: sustained throughput in bits per second.
        latency_s: one-way propagation delay in seconds.
        per_message_overhead_s: fixed per-message cost in seconds
            (marshalling + socket write), paid by the sending side.
    """

    name: str
    bandwidth_bps: float
    latency_s: float
    per_message_overhead_s: float

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ParameterError("bandwidth must be positive")
        if self.latency_s < 0 or self.per_message_overhead_s < 0:
            raise ParameterError("latency and overhead must be non-negative")

    def transfer_seconds(self, payload_bytes: int, messages: int = 1) -> float:
        """Time to move ``messages`` messages totalling ``payload_bytes``.

        Messages are assumed pipelined (a continuous stream), so
        propagation latency is paid once for the stream while bandwidth
        and per-message overhead scale with volume.
        """
        if payload_bytes < 0:
            raise ParameterError("payload size must be non-negative")
        if messages < 0:
            raise ParameterError("message count must be non-negative")
        if payload_bytes == 0 and messages == 0:
            return 0.0
        serial = payload_bytes * 8.0 / self.bandwidth_bps
        return self.latency_s + serial + messages * self.per_message_overhead_s

    def seconds_per_message(self, payload_bytes: int) -> float:
        """Marginal cost of one more message of ``payload_bytes`` in a stream."""
        return (
            payload_bytes * 8.0 / self.bandwidth_bps + self.per_message_overhead_s
        )


class _LinkPresets:
    """The communication media of the paper (attribute-style access).

    ``cluster``   — the Stevens HPC facility: gigabit host NICs behind a
                    64 Gbps switch (Figures 2, 4, 5, 7, 9).
    ``modem``     — the Chicago <-> Hoboken 56 Kbps dial-up connection
                    (Figures 3 and 6).
    ``wireless_multihop`` — the decelerated medium the paper's abstract
                    motivates: ~500 Kbps effective with multihop latency.
    ``loopback``  — effectively free communication, for isolating compute.
    """

    def __init__(self) -> None:
        self.cluster = LinkModel(
            name="cluster-gigabit",
            bandwidth_bps=1e9,
            latency_s=100e-6,
            per_message_overhead_s=450e-6,
        )
        self.modem = LinkModel(
            name="modem-56k",
            bandwidth_bps=56e3,
            latency_s=150e-3,
            per_message_overhead_s=450e-6,
        )
        self.wireless_multihop = LinkModel(
            name="wireless-multihop",
            bandwidth_bps=500e3,
            latency_s=40e-3,
            per_message_overhead_s=450e-6,
        )
        self.loopback = LinkModel(
            name="loopback",
            bandwidth_bps=1e12,
            latency_s=0.0,
            per_message_overhead_s=0.0,
        )

    def by_name(self, name: str) -> LinkModel:
        for link in vars(self).values():
            if isinstance(link, LinkModel) and link.name == name:
                return link
        raise ParameterError("unknown link preset %r" % name)


links = _LinkPresets()
