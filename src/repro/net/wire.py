"""Protocol message framing and size accounting.

Every message a protocol sends is wrapped in a :class:`Message` carrying
its type tag, payload, and *wire size* — the number of bytes the message
would occupy serialized, which is what the link models charge for.
Payloads stay as Python objects in transit (the channel is in-memory);
sizes come from the scheme's ciphertext size plus fixed framing, so the
byte counts match what a real socket deployment would move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List

from repro.crypto.serialization import FRAME_HEADER_BYTES

__all__ = ["Message", "MessageLog", "vector_wire_bytes"]


@dataclass(frozen=True)
class Message:
    """One protocol message.

    Attributes:
        kind: message type tag (e.g. ``"enc-indices"``, ``"result"``).
        payload: the in-memory payload object.
        wire_bytes: serialized size including framing.
        sender: name of the sending party.
    """

    kind: str
    payload: Any
    wire_bytes: int
    sender: str

    def __post_init__(self) -> None:
        if self.wire_bytes < 0:
            raise ValueError("wire size must be non-negative")


@dataclass
class MessageLog:
    """Transcript of messages seen from one party's point of view.

    Privacy audits (:mod:`repro.spfe.privacy`) inspect these transcripts:
    the server's log must contain only ciphertexts and key material, never
    a plaintext index.
    """

    entries: List[Message] = field(default_factory=list)

    def record(self, message: Message) -> None:
        """Append a received message to the transcript."""
        self.entries.append(message)

    def total_bytes(self) -> int:
        """Sum of wire sizes over the transcript."""
        return sum(m.wire_bytes for m in self.entries)

    def count(self, kind: str = "") -> int:
        """Number of messages (optionally of one kind)."""
        if not kind:
            return len(self.entries)
        return sum(1 for m in self.entries if m.kind == kind)

    def payloads(self, kind: str) -> List[Any]:
        """Payloads of every message of one kind, in order."""
        return [m.payload for m in self.entries if m.kind == kind]


def vector_wire_bytes(count: int, element_bytes: int, per_message: bool) -> int:
    """Wire size of a ``count``-element vector of fixed-size elements.

    ``per_message=True`` models the paper's unbatched protocol, which
    ships each element as its own framed message; ``False`` models one
    framed message carrying the whole vector (or one batch).
    """
    if count < 0 or element_bytes < 0:
        raise ValueError("sizes must be non-negative")
    frames = count if per_message else 1
    return count * element_bytes + frames * FRAME_HEADER_BYTES
