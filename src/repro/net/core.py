"""Backend-neutral accounting and admission core for server front-ends.

The repo now ships two connection front-ends for the selected-sum
server: the thread-per-connection :class:`~repro.net.server.SpfeServer`
and the event-loop :class:`~repro.net.aio.AsyncSpfeServer`.  Both must
answer the same operational questions — how many sessions were served,
dropped, shed, rejected; is the ``max_queries`` budget spent; when does
a drain begin — and they must answer them *identically*, or the choice
of ``--backend`` silently changes what the metrics mean.

This module is the single implementation both front-ends delegate to:

* :class:`ServerStats` — the named counters, each a thin view over a
  ``repro_server_<field>_total`` registry counter;
* :class:`ServerAccounting` — the query budget (admit / release /
  atomic retire), the in-flight and active-connection gauges, the
  per-connection deadline budget, and the one outcome-classification
  path that turns a finished connection into exactly one of
  served / dropped / rejected.

The outcome invariant the test tier enforces on both backends::

    sessions_served + sessions_dropped + sessions_rejected
        == sessions_admitted        (once the server has drained)

``sessions_admitted`` counts connections handed to the protocol layer
(admission control passed); shed connections never enter the invariant.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.exceptions import ParameterError, TransportTimeout, ValidationError
from repro.obs.registry import Counter, MetricsRegistry

__all__ = [
    "ServerAccounting",
    "ServerStats",
    "DEFAULT_DRAIN_DEADLINE_S",
    "SERVER_BACKENDS",
]

DEFAULT_DRAIN_DEADLINE_S = 30.0

#: how often blocking loops wake to check for drain (also the accept poll)
_POLL_S = 0.1

#: per-connection send budget for BUSY frames — small enough that even a
#: flood of never-reading peers drains quickly
_SHED_SEND_BUDGET_S = 0.05

#: the front-ends selectable via ``serve --backend``
SERVER_BACKENDS: Tuple[str, ...] = ("threads", "asyncio")

#: prefix turning a ServerStats field into its registry metric name
_METRIC_PREFIX = "repro_server_"

#: built-in counters and their exposition help text
_FIELD_HELP: Dict[str, str] = {
    "connections_accepted": "TCP connections accepted by the listener.",
    "sessions_admitted":
        "Connections that passed admission control and were handed to "
        "the protocol layer (served + dropped + rejected reconcile "
        "against this at drain).",
    "sessions_served": "Protocol runs served to completion.",
    "sessions_dropped":
        "Sessions lost to transport failures, peer disconnects, or "
        "internal errors.",
    "sessions_shed":
        "Connections refused with a typed BUSY frame (admission control).",
    "sessions_rejected": "Sessions answered with a typed ERROR frame.",
    "validation_rejections":
        "Rejected sessions that failed a trust-boundary or policy check.",
    "sessions_errored_internal":
        "Dropped sessions whose cause was a server-side internal error, "
        "not the peer (also counted in sessions_dropped).",
    "bytes_in": "Application bytes received across all sessions.",
    "bytes_out": "Application bytes sent across all sessions.",
}


class ServerStats:
    """Named per-server counters, backed by a metrics registry.

    Historically this class kept its own closed dict of counters; it is
    now a thin view over :class:`~repro.obs.registry.MetricsRegistry`
    :class:`~repro.obs.registry.Counter` instruments (one
    ``repro_server_<field>_total`` each), so the same numbers that
    :meth:`snapshot` reports in-process are scraped from ``/metrics``
    without a second bookkeeping path that could drift.  ``add``/``get``
    still reject unknown names — accounting typos stay loud — but the
    field set is open: :meth:`register` adds new counters.

    ``sessions_admitted`` counts connections that passed admission
    control; ``sessions_served`` counts completed protocol runs;
    ``dropped`` is transport-level losses (timeouts, resets, budget
    exhaustion), of which ``sessions_errored_internal`` were the
    server's own fault; ``shed`` is admission-control rejections (BUSY);
    ``rejected`` is sessions answered with a typed ERROR, of which
    ``validation_rejections`` failed a trust-boundary or policy check.
    Byte counters aggregate the per-session accounting.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._counters: Dict[str, Counter] = {}
        for name, help_text in _FIELD_HELP.items():
            self.register(name, help_text)

    def register(self, name: str, help_text: str = "") -> Counter:
        """Add (or fetch) the counter for ``name``; returns the instrument.

        Call during setup, before concurrent ``add``/``get`` traffic:
        the name->instrument map itself is not lock-guarded.
        """
        counter = self.metrics.counter(_METRIC_PREFIX + name + "_total", help_text)
        self._counters[name] = counter
        return counter

    def add(self, name: str, amount: int = 1) -> int:
        """Bump a counter; returns its new value."""
        counter = self._counters.get(name)
        if counter is None:
            raise ParameterError("unknown counter %r" % name)
        return counter.inc(amount)

    def get(self, name: str) -> int:
        """Read one counter."""
        counter = self._counters.get(name)
        if counter is None:
            raise ParameterError("unknown counter %r" % name)
        return counter.value

    def snapshot(self) -> Dict[str, int]:
        """A copy of all counters (one consistent read per counter)."""
        return {name: counter.value for name, counter in self._counters.items()}

    def summary(self) -> str:
        """Human-readable multi-line summary (printed on shutdown)."""
        snap = self.snapshot()
        return (
            "sessions: %d served, %d dropped (%d internal), %d shed, "
            "%d rejected (%d validation)\n"
            "bytes: %d in, %d out (%d connections)"
            % (
                snap["sessions_served"],
                snap["sessions_dropped"],
                snap["sessions_errored_internal"],
                snap["sessions_shed"],
                snap["sessions_rejected"],
                snap["validation_rejections"],
                snap["bytes_in"],
                snap["bytes_out"],
                snap["connections_accepted"],
            )
        )


class ServerAccounting:
    """The admission, budget, and outcome bookkeeping both backends share.

    One instance belongs to one server.  The front-end owns sockets and
    concurrency (threads or an event loop); everything that must mean
    the same thing regardless of front-end lives here:

    * the ``max_queries`` budget — :meth:`admit_query_budget`,
      :meth:`release_query_budget`, and the atomic :meth:`retire_session`
      (served-bump and in-flight release under one ``_budget_lock``
      acquisition, so an admission check can never observe a finishing
      session in both totals);
    * the in-flight / active-connection gauges plus a peak-concurrency
      gauge the fleet tests assert ``max_sessions`` bounds against;
    * :meth:`budgeted_timeout`, the per-read deadline under an optional
      total ``connection_deadline_s`` wall-clock budget;
    * :meth:`account_outcome`, the single classification path from a
      finished connection to exactly one of served / dropped / rejected
      (plus the byte totals and the ``sessions_errored_internal`` tag).

    ``backend`` is exported as a ``repro_server_backend`` info gauge
    (value 1, ``backend`` label) so a scrape can tell which front-end
    produced the numbers.
    """

    def __init__(
        self,
        stats: ServerStats,
        *,
        metrics: MetricsRegistry,
        max_queries: int = 0,
        backend: str = "threads",
        note: Optional[Callable[[str], None]] = None,
    ) -> None:
        if backend not in SERVER_BACKENDS:
            raise ParameterError(
                "unknown server backend %r (expected one of %s)"
                % (backend, ", ".join(SERVER_BACKENDS))
            )
        self.stats = stats
        self.max_queries = max_queries
        self.backend = backend
        self._note = note if note is not None else (lambda message: None)
        self._budget_lock = threading.Lock()
        #: admitted-but-unfinished sessions counted against max_queries
        self._in_flight = 0
        self._in_flight_gauge = metrics.gauge(
            "repro_server_in_flight_sessions",
            "Admitted sessions not yet retired (queued or being served).",
        )
        self._active_gauge = metrics.gauge(
            "repro_server_active_connections",
            "Connections currently attached to a worker.",
        )
        self._peak_lock = threading.Lock()
        self._active_peak = 0
        self._active_peak_gauge = metrics.gauge(
            "repro_server_active_connections_peak",
            "High-water mark of concurrently served connections.",
        )
        metrics.gauge(
            "repro_server_backend",
            "Info gauge: 1 for the connection front-end serving this "
            "process (threads or asyncio).",
            labels={"backend": backend},
        ).set(1)

    # -- query budget -------------------------------------------------------

    def admit_query_budget(self) -> bool:
        """Reserve an in-flight slot; False when max_queries is spent.

        The budget counts served plus in-flight sessions, so admission
        stops as soon as enough work to satisfy the budget has *started*
        — extra clients are shed with BUSY and can retry, and a slot is
        released if its session drops or is rejected.  In-flight is
        tracked (and exported as a gauge) even without a budget.
        """
        with self._budget_lock:
            if self.max_queries:
                served = self.stats.get("sessions_served")
                if served + self._in_flight >= self.max_queries:
                    return False
            self._in_flight += 1
            self._in_flight_gauge.set(self._in_flight)
            return True

    def release_query_budget(self) -> None:
        """Release an admitted slot that never became a served session."""
        with self._budget_lock:
            self._in_flight -= 1
            self._in_flight_gauge.set(self._in_flight)

    def retire_session(self, served: bool) -> bool:
        """Atomically retire one admitted session; True = budget now met.

        The ``sessions_served`` bump and the in-flight release happen
        under the same ``_budget_lock`` acquisition that
        :meth:`admit_query_budget` takes.  When they were two separate
        steps, an admission check running between them saw the finishing
        session counted in *both* ``served`` and in-flight and could
        shed a connection the budget actually allowed (transient
        double-count at the ``max_queries`` boundary).  The caller
        initiates its drain when this returns True — the core holds no
        reference to the front-end.
        """
        with self._budget_lock:
            self._in_flight -= 1
            self._in_flight_gauge.set(self._in_flight)
            if served:
                total = self.stats.add("sessions_served")
                if self.max_queries and total >= self.max_queries:
                    return True
        return False

    def in_flight(self) -> int:
        """The current number of admitted-but-unretired sessions."""
        with self._budget_lock:
            return self._in_flight

    # -- per-connection bookkeeping -----------------------------------------

    def session_admitted(self) -> None:
        """Count one connection handed to the protocol layer."""
        self.stats.add("sessions_admitted")

    def connection_attached(self) -> None:
        """A connection is now actively being served; tracks the peak."""
        active = int(self._active_gauge.inc())
        with self._peak_lock:
            if active > self._active_peak:
                self._active_peak = active
                self._active_peak_gauge.set(active)

    def connection_detached(self) -> None:
        """The active connection's worker/task let go of it."""
        self._active_gauge.dec()

    @property
    def peak_active(self) -> int:
        """High-water mark of concurrently served connections."""
        with self._peak_lock:
            return self._active_peak

    def budgeted_timeout(
        self,
        started: float,
        read_timeout: Optional[float],
        connection_deadline_s: Optional[float],
    ) -> Optional[float]:
        """The next read's deadline under the connection budget.

        Raises :class:`~repro.exceptions.TransportTimeout` once the
        total wall-clock budget (when configured) is spent.
        """
        if connection_deadline_s is None:
            return read_timeout
        remaining = connection_deadline_s - (time.monotonic() - started)
        if remaining <= 0:
            raise TransportTimeout(
                "connection exceeded its %.1fs budget" % connection_deadline_s
            )
        if read_timeout is None:
            return remaining
        return min(read_timeout, remaining)

    # -- outcome classification ---------------------------------------------

    def account_outcome(
        self, session, outcome: str, peer: Tuple, detail: str
    ) -> bool:
        """Account one finished connection; True when served to completion.

        ``outcome`` is the front-end's transport-level verdict:
        ``"detached"`` (the session loop exited on its own terms),
        ``"dropped"`` (a transport error or deadline cut it off), or
        ``"internal"`` (a server-side bug).  Combined with the session's
        own state this yields exactly one of served / dropped / rejected
        — classification order matters:

        1. internal errors are drops the server owns;
        2. an errored session was answered (or at least owed) a typed
           ERROR — it is rejected even if that final send failed;
        3. a transport-level drop is a drop *even when the session
           finished*: a RESULT the peer never received was not served
           (this branch used to be unreachable behind ``finished``, so
           a failed RESULT send vanished from every outcome counter);
        4. a finished session whose transport survived was served;
        5. anything else is a peer that went away mid-run.
        """
        self.stats.add("bytes_in", session.bytes_received)
        self.stats.add("bytes_out", session.bytes_sent)
        if outcome == "internal":
            self.stats.add("sessions_dropped")
            self.stats.add("sessions_errored_internal")
            self._note("dropped %s: internal error: %s" % (peer, detail))
            return False
        if session.errored:
            self.stats.add("sessions_rejected")
            if isinstance(session.last_error, ValidationError):
                self.stats.add("validation_rejections")
            self._note("rejected %s: %s" % (peer, session.last_error))
            return False
        if outcome == "dropped":
            self.stats.add("sessions_dropped")
            if session.finished:
                self._note(
                    "dropped %s: result computed but never delivered: %s"
                    % (peer, detail)
                )
            else:
                self._note("dropped %s: %s" % (peer, detail))
            return False
        if session.finished:
            self._note(
                "served %s: %d bytes in, %d out"
                % (peer, session.bytes_received, session.bytes_sent)
            )
            return True
        # Clean EOF before completion: the peer went away mid-run (it
        # may resume on a later connection).
        self.stats.add("sessions_dropped")
        self._note("dropped %s: peer closed mid-session" % (peer,))
        return False
