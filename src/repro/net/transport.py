"""Byte transports with deadlines and bounded retry.

The session layer (:mod:`repro.spfe.session`) is a pair of byte-stream
state machines; this module supplies the bytes.  A :class:`Transport` is
the minimal contract the protocol needs — ``send``, ``recv``, ``close``,
byte counters — with every failure mapped onto the typed hierarchy in
:mod:`repro.exceptions`:

* :class:`~repro.exceptions.TransportError` — the connection is gone
  (refused, reset, injected disconnect);
* :class:`~repro.exceptions.TransportTimeout` — the peer is silent past
  a configured deadline (no operation ever blocks forever);
* :class:`~repro.exceptions.RetryExhausted` — a bounded retry policy
  gave up, with the last failure chained as ``__cause__``.

Two implementations are provided: :class:`SocketTransport` over a real
socket (the deployment shape) and :class:`MemoryTransport` pairs for
deterministic single-process tests.  :class:`RetryPolicy` captures the
reconnect discipline — bounded attempts, exponential backoff, seeded
jitter — and :func:`call_with_retry` applies it to any callable.

Why retries matter here: the dominant cost of the protocol is client-side
Paillier encryption of the index vector (paper §3), so a dropped
connection that forces a full re-run is catastrophically expensive.  The
resumable sessions in :mod:`repro.spfe.session` use these transports to
reconnect and continue from the last acknowledged chunk instead.
"""

from __future__ import annotations

import select
import socket
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterator, Optional, Tuple, Type, TypeVar

from repro.crypto.rng import RandomSource, as_random_source
from repro.exceptions import RetryExhausted, TransportError, TransportTimeout
from repro.obs.registry import MetricsRegistry

__all__ = [
    "Transport",
    "SocketTransport",
    "MemoryTransport",
    "memory_pair",
    "RetryPolicy",
    "call_with_retry",
    "connect_with_retry",
    "DEFAULT_RECV_BYTES",
]

DEFAULT_RECV_BYTES = 65536

_T = TypeVar("_T")


class Transport:
    """Abstract byte stream with accounting.

    Contract: :meth:`send` delivers all of ``data`` or raises a
    :class:`~repro.exceptions.TransportError`; :meth:`recv` returns at
    least one byte, ``b""`` on clean end-of-stream, or raises
    :class:`~repro.exceptions.TransportTimeout` when the configured
    deadline passes with no data.  Counters accumulate so callers can
    audit real wire traffic against the performance model.
    """

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, data: bytes) -> None:
        """Deliver all of ``data`` to the peer or raise ``TransportError``."""
        raise NotImplementedError

    def recv(self, max_bytes: int = DEFAULT_RECV_BYTES) -> bytes:
        """Return 1..max_bytes bytes, or ``b""`` on end-of-stream."""
        raise NotImplementedError

    def recv_ready(self) -> bool:
        """True when :meth:`recv` would return without blocking.

        Lets a streaming sender notice an early reply (an ERROR or BUSY
        frame from a server that rejected the session) before pushing
        more data into a dead connection.  Transports that cannot tell
        may return ``False``; callers treat this as best-effort.
        """
        return False

    def close(self) -> None:
        """Release the underlying resources (idempotent)."""
        raise NotImplementedError

    def __enter__(self) -> "Transport":
        """Context-manager entry: the transport itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the transport."""
        self.close()


class SocketTransport(Transport):
    """A :class:`Transport` over a connected socket.

    ``read_timeout`` bounds every :meth:`recv` (and blocking ``send``):
    a silent peer raises :class:`~repro.exceptions.TransportTimeout`
    instead of hanging the caller forever — the failure mode the
    original TCP example had.
    """

    def __init__(
        self, sock: socket.socket, read_timeout: Optional[float] = None
    ) -> None:
        super().__init__()
        self._sock = sock
        self._closed = False
        self.read_timeout = read_timeout
        sock.settimeout(read_timeout)

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
    ) -> "SocketTransport":
        """Open a TCP connection; failures raise typed transport errors."""
        try:
            sock = socket.create_connection((host, port), timeout=connect_timeout)
        except socket.timeout as exc:
            raise TransportTimeout(
                "connect to %s:%d timed out after %ss" % (host, port, connect_timeout)
            ) from exc
        except OSError as exc:
            raise TransportError("connect to %s:%d failed: %s" % (host, port, exc)) from exc
        return cls(sock, read_timeout=read_timeout)

    def set_read_timeout(self, read_timeout: Optional[float]) -> None:
        """Re-arm the per-read deadline (used by per-connection budgets).

        A server that grants each connection a total wall-clock budget
        shrinks the read timeout as the budget drains, so the *sum* of
        reads is bounded, not just each one.
        """
        if self._closed:
            raise TransportError("set_read_timeout on closed transport")
        self.read_timeout = read_timeout
        self._sock.settimeout(read_timeout)

    def send(self, data: bytes) -> None:
        """``sendall`` with typed failures."""
        if self._closed:
            raise TransportError("send on closed transport")
        try:
            self._sock.sendall(data)
        except socket.timeout as exc:
            raise TransportTimeout("send timed out") from exc
        except OSError as exc:
            raise TransportError("send failed: %s" % exc) from exc
        self.bytes_sent += len(data)

    def recv_ready(self) -> bool:
        """``select`` poll: data (or EOF/reset) already waiting?"""
        if self._closed:
            return False
        try:
            readable, _, _ = select.select([self._sock], [], [], 0)
        except (OSError, ValueError):
            return False
        return bool(readable)

    def recv(self, max_bytes: int = DEFAULT_RECV_BYTES) -> bytes:
        """``recv`` with typed failures; ``b""`` means the peer closed."""
        if self._closed:
            raise TransportError("recv on closed transport")
        try:
            data = self._sock.recv(max_bytes)
        except socket.timeout as exc:
            raise TransportTimeout(
                "no data within %ss" % self.read_timeout
            ) from exc
        except OSError as exc:
            raise TransportError("recv failed: %s" % exc) from exc
        self.bytes_received += len(data)
        return data

    def close(self) -> None:
        """Close the socket (idempotent; shutdown errors are ignored)."""
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass


class MemoryTransport(Transport):
    """One endpoint of an in-memory duplex pair (see :func:`memory_pair`).

    Deterministic single-thread semantics: :meth:`recv` on an empty
    queue raises :class:`~repro.exceptions.TransportTimeout` when the
    peer is open (there is nobody else to produce data) and returns
    ``b""`` once the peer has closed.
    """

    def __init__(self) -> None:
        super().__init__()
        self._inbox: Deque[bytes] = deque()
        self._peer: Optional["MemoryTransport"] = None
        self._closed = False

    def send(self, data: bytes) -> None:
        """Append to the peer's inbox."""
        if self._closed:
            raise TransportError("send on closed transport")
        assert self._peer is not None
        if self._peer._closed:
            raise TransportError("peer transport is closed")
        self._peer._inbox.append(bytes(data))
        self.bytes_sent += len(data)

    def recv_ready(self) -> bool:
        """Queued bytes (or a closed peer, i.e. instant EOF) waiting?"""
        if self._closed:
            return False
        return bool(self._inbox) or (
            self._peer is not None and self._peer._closed
        )

    def recv(self, max_bytes: int = DEFAULT_RECV_BYTES) -> bytes:
        """Pop up to ``max_bytes`` from the inbox."""
        if self._closed:
            raise TransportError("recv on closed transport")
        if not self._inbox:
            assert self._peer is not None
            if self._peer._closed:
                return b""
            raise TransportTimeout("no data queued on in-memory transport")
        head = self._inbox[0]
        if len(head) <= max_bytes:
            self._inbox.popleft()
            chunk = head
        else:
            chunk = head[:max_bytes]
            self._inbox[0] = head[max_bytes:]
        self.bytes_received += len(chunk)
        return chunk

    def pending(self) -> int:
        """Bytes queued for this endpoint but not yet received."""
        return sum(len(part) for part in self._inbox)

    def close(self) -> None:
        """Mark this endpoint closed (the peer then reads EOF)."""
        self._closed = True


def memory_pair() -> Tuple[MemoryTransport, MemoryTransport]:
    """Create a connected pair of in-memory transports."""
    a, b = MemoryTransport(), MemoryTransport()
    a._peer, b._peer = b, a
    return a, b


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    ``max_attempts`` counts every try including the first; the delay
    before retry ``k`` (1-based) is ``base_delay_s * multiplier**(k-1)``
    capped at ``max_delay_s``, then stretched by a uniformly random
    factor in ``[1 - jitter, 1 + jitter]`` so a fleet of reconnecting
    clients does not stampede in lockstep.  Jitter randomness comes from
    a :class:`~repro.crypto.rng.RandomSource`, so seeded runs replay the
    exact same schedule.

    A second, slower schedule handles **load shedding**: when the server
    answers BUSY (:class:`~repro.exceptions.ServerBusy`) the connection
    is healthy — the server is saturated — so re-entering on the crash
    schedule just re-joins the stampede.  :meth:`busy_delay_s` backs off
    from ``busy_base_delay_s`` (deliberately larger) and never sleeps
    less than the server's own ``retry_after_ms`` hint.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    busy_base_delay_s: float = 0.25
    busy_max_delay_s: float = 10.0
    busy_multiplier: float = 2.0

    def __post_init__(self) -> None:
        """Validate the policy parameters."""
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.busy_base_delay_s < 0 or self.busy_max_delay_s < 0:
            raise ValueError("busy delays must be non-negative")
        if self.busy_multiplier < 1.0:
            raise ValueError("busy_multiplier must be >= 1")

    def _jittered(self, capped: float, rng: RandomSource) -> float:
        if self.jitter == 0.0 or capped == 0.0:
            return capped
        # Uniform factor in [1 - jitter, 1 + jitter], 2^-20 resolution.
        unit = rng.randbits(20) / float(1 << 20)
        return capped * (1.0 - self.jitter + 2.0 * self.jitter * unit)

    def delay_s(self, retry_index: int, rng: RandomSource) -> float:
        """Backoff before the ``retry_index``-th retry (1-based)."""
        if retry_index < 1:
            raise ValueError("retry_index is 1-based")
        raw = self.base_delay_s * self.multiplier ** (retry_index - 1)
        return self._jittered(min(raw, self.max_delay_s), rng)

    def busy_delay_s(
        self, retry_index: int, rng: RandomSource, hint_ms: int = 0
    ) -> float:
        """Backoff before retrying a BUSY-shed attempt (1-based).

        ``hint_ms`` is the server's retry hint from the BUSY frame; the
        returned delay is floored at it (jitter can stretch above but
        never dip below what the server asked for).
        """
        if retry_index < 1:
            raise ValueError("retry_index is 1-based")
        raw = self.busy_base_delay_s * self.busy_multiplier ** (retry_index - 1)
        delay = self._jittered(min(raw, self.busy_max_delay_s), rng)
        return max(delay, hint_ms / 1000.0)

    def delays(self, rng: RandomSource) -> Iterator[float]:
        """The full backoff schedule: one delay per allowed retry."""
        for retry_index in range(1, self.max_attempts):
            yield self.delay_s(retry_index, rng)


#: help text shared by every retry-instrumented call site, so the
#: registry sees one consistent definition per metric name
RETRY_METRIC_HELP = {
    "repro_retry_attempts_total": "Operation attempts made under a retry policy.",
    "repro_retry_giveups_total": "Retry policies exhausted (RetryExhausted raised).",
    "repro_retry_backoff_seconds": "Backoff delay slept before each retry.",
    "repro_retry_busy_total": "Attempts shed by the server with BUSY and retried.",
}


def call_with_retry(
    operation: Callable[[], _T],
    policy: Optional[RetryPolicy] = None,
    rng: Optional[RandomSource] = None,
    retry_on: Tuple[Type[BaseException], ...] = (TransportError,),
    sleep: Callable[[float], None] = time.sleep,
    metrics: Optional[MetricsRegistry] = None,
) -> _T:
    """Run ``operation`` under ``policy``; raise ``RetryExhausted`` at the end.

    ``sleep`` is injectable so tests can run the schedule without waiting.
    Exceptions outside ``retry_on`` propagate immediately (a protocol
    violation should never be retried into).  An optional ``metrics``
    registry counts attempts and give-ups and histograms the backoff
    delays (see :data:`RETRY_METRIC_HELP` for the metric names).
    """
    policy = policy or RetryPolicy()
    rng = as_random_source(rng)
    attempts = (
        metrics.counter(
            "repro_retry_attempts_total",
            RETRY_METRIC_HELP["repro_retry_attempts_total"],
        )
        if metrics is not None
        else None
    )
    last: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        if attempts is not None:
            attempts.inc()
        try:
            return operation()
        except retry_on as exc:  # noqa: B030 - tuple of exception types
            last = exc
            if attempt + 1 < policy.max_attempts:
                delay = policy.delay_s(attempt + 1, rng)
                if metrics is not None:
                    metrics.histogram(
                        "repro_retry_backoff_seconds",
                        RETRY_METRIC_HELP["repro_retry_backoff_seconds"],
                    ).observe(delay)
                sleep(delay)
    if metrics is not None:
        metrics.counter(
            "repro_retry_giveups_total",
            RETRY_METRIC_HELP["repro_retry_giveups_total"],
        ).inc()
    raise RetryExhausted(
        "gave up after %d attempts: %s" % (policy.max_attempts, last)
    ) from last


def connect_with_retry(
    host: str,
    port: int,
    policy: Optional[RetryPolicy] = None,
    connect_timeout: Optional[float] = None,
    read_timeout: Optional[float] = None,
    rng: Optional[RandomSource] = None,
    sleep: Callable[[float], None] = time.sleep,
    metrics: Optional[MetricsRegistry] = None,
) -> SocketTransport:
    """Open a TCP :class:`SocketTransport`, retrying under ``policy``."""
    return call_with_retry(
        lambda: SocketTransport.connect(
            host, port, connect_timeout=connect_timeout, read_timeout=read_timeout
        ),
        policy=policy,
        rng=rng,
        sleep=sleep,
        metrics=metrics,
    )
