"""Supervised concurrent server runtime for the selected-sum protocol.

``serve_over_transport`` handles *one* connection; this module is the
deployment wrapper around it that survives the open internet: many
simultaneous clients, admission control, untrusted-input policy, and a
graceful drain on shutdown.  The ROADMAP's north star is heavy traffic,
and related work on private aggregation treats adversarial clients as
the default — so the runtime assumes every peer may be slow, malicious,
or both.

Architecture (all plain threads, no extra dependencies):

* an **accept loop** owns the listening socket.  Accepted connections
  go into a *bounded* queue; when the queue is full — every worker busy
  and the backlog occupied — the connection is *shed* with a typed BUSY
  frame and closed instead of being left to time out.  BUSY is a
  :class:`~repro.exceptions.ServerBusy` (a transient transport error)
  on the client side, so :func:`~repro.spfe.session.run_resilient`
  retries it under its normal backoff policy.
* a **worker pool** of ``max_sessions`` threads runs one
  :class:`~repro.spfe.session.ServerSession` per connection.  Each
  connection gets a per-read deadline *and* an optional total
  wall-clock budget (``connection_deadline_s``) so one slow-loris
  client costs a bounded slice of one worker, never the pool.
* every session is validated against a
  :class:`~repro.spfe.validation.ServerPolicy`; violations answer a
  typed ERROR frame and are counted, and the worker moves on to the
  next connection — one malicious client never stops honest service.
* **drain**: :meth:`SpfeServer.initiate_drain` (wired to SIGINT/SIGTERM
  by :meth:`install_signal_handlers`) stops accepting, sheds anything
  still queued, lets in-flight sessions finish under a drain deadline,
  then force-closes stragglers.  :class:`ServerStats` counters are
  queryable in-process at any time and summarised on shutdown.
"""

from __future__ import annotations

import queue
import signal
import socket
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.datastore.database import ServerDatabase
from repro.exceptions import (
    ParameterError,
    TransportError,
    TransportTimeout,
    ValidationError,
)
from repro.net import codec
from repro.net.transport import DEFAULT_RECV_BYTES, SocketTransport
from repro.spfe.session import ServerSession, SessionRegistry
from repro.spfe.validation import ServerPolicy

__all__ = ["ServerStats", "SpfeServer", "DEFAULT_DRAIN_DEADLINE_S"]

DEFAULT_DRAIN_DEADLINE_S = 30.0

#: how often blocking loops wake to check for drain (also the accept poll)
_POLL_S = 0.1


class ServerStats:
    """Thread-safe per-server counters, queryable while serving.

    ``sessions_served`` counts completed protocol runs; ``dropped`` is
    transport-level losses (timeouts, resets, budget exhaustion);
    ``shed`` is admission-control rejections (BUSY); ``rejected`` is
    sessions answered with a typed ERROR, of which
    ``validation_rejections`` failed a trust-boundary or policy check.
    Byte counters aggregate the per-session accounting.
    """

    _FIELDS = (
        "connections_accepted",
        "sessions_served",
        "sessions_dropped",
        "sessions_shed",
        "sessions_rejected",
        "validation_rejections",
        "bytes_in",
        "bytes_out",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {name: 0 for name in self._FIELDS}

    def add(self, name: str, amount: int = 1) -> int:
        """Bump a counter; returns its new value."""
        if name not in self._counts:
            raise ParameterError("unknown counter %r" % name)
        with self._lock:
            self._counts[name] += amount
            return self._counts[name]

    def get(self, name: str) -> int:
        """Read one counter."""
        if name not in self._counts:
            raise ParameterError("unknown counter %r" % name)
        with self._lock:
            return self._counts[name]

    def snapshot(self) -> Dict[str, int]:
        """A consistent copy of all counters."""
        with self._lock:
            return dict(self._counts)

    def summary(self) -> str:
        """Human-readable multi-line summary (printed on shutdown)."""
        snap = self.snapshot()
        return (
            "sessions: %d served, %d dropped, %d shed, %d rejected "
            "(%d validation)\nbytes: %d in, %d out (%d connections)"
            % (
                snap["sessions_served"],
                snap["sessions_dropped"],
                snap["sessions_shed"],
                snap["sessions_rejected"],
                snap["validation_rejections"],
                snap["bytes_in"],
                snap["bytes_out"],
                snap["connections_accepted"],
            )
        )


class SpfeServer:
    """Concurrent selected-sum server with admission control and drain.

    Args:
        database: the server-side data; shared read-only by all workers.
        host/port: bind address (port 0 = ephemeral; see :attr:`port`).
        policy: trust-boundary limits applied to every session; None
            installs the default :class:`ServerPolicy` (pass an explicit
            permissive policy to loosen).
        registry: shared resume registry; None builds one sized by the
            policy's registry budgets.
        max_sessions: worker threads = maximum concurrent sessions.
        accept_backlog: bounded queue of accepted-but-unstarted
            connections; beyond it, connections are shed with BUSY.
        read_timeout: per-read deadline for each connection (None = no
            per-read deadline; strongly discouraged outside tests).
        connection_deadline_s: optional total wall-clock budget per
            connection; a client that is merely *slow* is cut off once
            its budget is spent, freeing the worker.
        max_queries: query budget (0 = unlimited).  Admission is gated
            on it — once served + in-flight sessions reach the budget,
            further connections are shed with BUSY, so the server never
            *starts* more work than the budget allows — and the server
            drains once this many sessions have been *served to
            completion*.  Dropped, shed, and rejected sessions release
            their slot instead of consuming the budget, so with
            ``max_queries=1`` the server keeps accepting retries until
            one query actually succeeds (it does not exit after the
            first failed connection, as the pre-concurrency server did).
        busy_retry_ms: retry-after hint carried in BUSY frames.
        engine: optional :class:`~repro.crypto.engine.CryptoEngine`
            shared by every session for kernel-partitioned aggregation;
            the server owns it once passed and closes it as the final
            step of its drain path, so worker processes never outlive
            the server.
        log: optional callable for one-line progress messages
            (``out.write``-compatible; lines end with ``\\n``).
    """

    def __init__(
        self,
        database: ServerDatabase,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        policy: Optional[ServerPolicy] = None,
        registry: Optional[SessionRegistry] = None,
        max_sessions: int = 4,
        accept_backlog: int = 8,
        read_timeout: Optional[float] = 30.0,
        connection_deadline_s: Optional[float] = None,
        max_queries: int = 0,
        busy_retry_ms: int = 250,
        engine: Optional[object] = None,
        log: Optional[Callable[[str], object]] = None,
    ) -> None:
        if max_sessions < 1:
            raise ParameterError("max_sessions must be positive")
        if accept_backlog < 1:
            raise ParameterError("accept_backlog must be positive")
        if max_queries < 0:
            raise ParameterError("max_queries must be non-negative")
        self.database = database
        self.host = host
        self.policy = policy if policy is not None else ServerPolicy()
        self.registry = (
            registry
            if registry is not None
            else SessionRegistry.from_policy(self.policy)
        )
        self.max_sessions = max_sessions
        self.accept_backlog = accept_backlog
        self.read_timeout = read_timeout
        self.connection_deadline_s = connection_deadline_s
        self.max_queries = max_queries
        self.busy_retry_ms = busy_retry_ms
        self.engine = engine
        self.stats = ServerStats()
        self._log = log
        self._requested_port = port
        self._listener: Optional[socket.socket] = None
        self._queue: "queue.Queue[Optional[Tuple[socket.socket, Tuple]]]" = (
            queue.Queue(maxsize=accept_backlog)
        )
        self._accept_thread: Optional[threading.Thread] = None
        self._workers: List[threading.Thread] = []
        self._active_lock = threading.Lock()
        self._active: Dict[int, SocketTransport] = {}
        self._budget_lock = threading.Lock()
        #: admitted-but-unfinished sessions counted against max_queries
        self._in_flight = 0
        self._drain = threading.Event()
        self._stopped = threading.Event()
        self._finalize_lock = threading.Lock()
        self._finalized = False
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SpfeServer":
        """Bind, then launch the accept loop and the worker pool."""
        if self._started:
            raise ParameterError("server already started")
        self._listener = socket.create_server(
            (self.host, self._requested_port), backlog=self.accept_backlog
        )
        self._listener.settimeout(_POLL_S)
        self._started = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="spfe-accept", daemon=True
        )
        self._accept_thread.start()
        for index in range(self.max_sessions):
            worker = threading.Thread(
                target=self._worker_loop, name="spfe-worker-%d" % index, daemon=True
            )
            worker.start()
            self._workers.append(worker)
        return self

    @property
    def port(self) -> int:
        """The bound port (resolves an ephemeral bind)."""
        if self._listener is None:
            raise ParameterError("server not started")
        return self._listener.getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) pair."""
        if self._listener is None:
            raise ParameterError("server not started")
        return self._listener.getsockname()[:2]

    @property
    def draining(self) -> bool:
        """True once drain has been initiated."""
        return self._drain.is_set()

    @property
    def stopped(self) -> bool:
        """True once all threads have exited and sockets are closed."""
        return self._stopped.is_set()

    def initiate_drain(self) -> None:
        """Begin graceful shutdown (non-blocking, signal-handler safe).

        Stops accepting, sheds queued connections with BUSY, and lets
        in-flight sessions run to completion.  Call :meth:`stop` or
        :meth:`wait` to block until the drain finishes.
        """
        self._drain.set()

    def install_signal_handlers(self) -> Callable[[], None]:
        """Wire SIGINT/SIGTERM to :meth:`initiate_drain`.

        Returns a zero-argument callable restoring the previous
        handlers.  Must run on the main thread (a Python constraint).
        """
        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(
                signum, lambda _sig, _frame: self.initiate_drain()
            )
        def restore() -> None:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        return restore

    def wait(self, drain_deadline_s: Optional[float] = None) -> None:
        """Block until drain is initiated, then finish the shutdown.

        The wait loop wakes periodically so signal handlers installed by
        :meth:`install_signal_handlers` get a chance to run on the main
        thread.
        """
        while not self._drain.wait(_POLL_S):
            pass
        self._finalize(drain_deadline_s)

    def stop(self, drain_deadline_s: Optional[float] = None) -> None:
        """Initiate drain and block until the server is fully stopped."""
        self.initiate_drain()
        self._finalize(drain_deadline_s)

    def __enter__(self) -> "SpfeServer":
        """Context-manager entry: start the server."""
        return self.start() if not self._started else self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: drain and stop."""
        self.stop()

    def _finalize(self, drain_deadline_s: Optional[float]) -> None:
        """Join threads under the drain deadline; force-close stragglers."""
        with self._finalize_lock:
            if self._finalized:
                return
            deadline = (
                drain_deadline_s
                if drain_deadline_s is not None
                else DEFAULT_DRAIN_DEADLINE_S
            )
            if self._accept_thread is not None:
                self._accept_thread.join(timeout=max(deadline, 1.0))
            cutoff = time.monotonic() + deadline
            for worker in self._workers:
                worker.join(timeout=max(0.0, cutoff - time.monotonic()))
            if any(worker.is_alive() for worker in self._workers):
                # Drain deadline exceeded: cut the remaining sessions'
                # sockets out from under them; their workers observe a
                # transport error and exit as drops.
                with self._active_lock:
                    for transport in self._active.values():
                        transport.close()
                for worker in self._workers:
                    worker.join(timeout=5.0)
            if self._listener is not None:
                try:
                    self._listener.close()
                except OSError:
                    pass
            if self.engine is not None:
                # Last step of the drain: no session can still be folding
                # once the workers have joined, so the kernel pool can be
                # torn down without cutting work short.
                self.engine.close()
            self._finalized = True
            self._stopped.set()

    # -- accept loop --------------------------------------------------------

    def _note(self, message: str) -> None:
        if self._log is not None:
            self._log(message + "\n")

    def _admit_query_budget(self) -> bool:
        """Reserve a max_queries slot; False when the budget is spent.

        The budget counts served plus in-flight sessions, so admission
        stops as soon as enough work to satisfy the budget has *started*
        — extra clients are shed with BUSY and can retry, and a slot is
        released if its session drops or is rejected.
        """
        if not self.max_queries:
            return True
        with self._budget_lock:
            served = self.stats.get("sessions_served")
            if served + self._in_flight >= self.max_queries:
                return False
            self._in_flight += 1
            return True

    def _release_query_budget(self) -> None:
        if not self.max_queries:
            return
        with self._budget_lock:
            self._in_flight -= 1

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._drain.is_set():
            try:
                connection, peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us: treat as drain
            self.stats.add("connections_accepted")
            if self._drain.is_set():
                self._shed(connection, peer, "draining")
                break
            if not self._admit_query_budget():
                self._shed(connection, peer, "query budget exhausted")
                continue
            try:
                self._queue.put_nowait((connection, peer))
            except queue.Full:
                self._release_query_budget()
                self._shed(connection, peer)
        # Drain: refuse new connections at the TCP level, shed whatever
        # was queued but never started, then release the workers.
        try:
            self._listener.close()
        except OSError:
            pass
        while True:
            try:
                connection, peer = self._queue.get_nowait()  # type: ignore[misc]
            except queue.Empty:
                break
            self._release_query_budget()
            self._shed(connection, peer, "draining")
        for _ in self._workers:
            self._queue.put(None)

    def _shed(
        self,
        connection: socket.socket,
        peer: Tuple,
        reason: str = "pool and backlog full",
    ) -> None:
        """Refuse a connection with a typed BUSY frame (best effort)."""
        try:
            connection.settimeout(1.0)
            connection.sendall(codec.encode_busy(self.busy_retry_ms))
        except OSError:
            pass
        finally:
            try:
                connection.close()
            except OSError:
                pass
        self.stats.add("sessions_shed")
        self._note("shed %s: %s" % (peer, reason))

    # -- worker pool --------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            connection, peer = item
            try:
                self._serve_connection(connection, peer)
            # seclint: disable=SEC005 -- worker threads must survive session bugs
            except Exception as exc:
                # A bug in session handling must cost one connection,
                # never a worker: a silently shrinking pool turns the
                # server into a BUSY-shedding brick while looking
                # healthy from the outside (regression:
                # test_worker_survives_internal_error).
                self.stats.add("sessions_dropped")
                self._note("dropped %s: internal error: %r" % (peer, exc))
                try:
                    connection.close()
                except OSError:
                    pass
            finally:
                # Released after _serve_connection bumps sessions_served,
                # so the budget check never sees a gap between the two.
                self._release_query_budget()

    def _budgeted_timeout(self, started: float) -> Optional[float]:
        """The next read's deadline under the connection budget."""
        if self.connection_deadline_s is None:
            return self.read_timeout
        remaining = self.connection_deadline_s - (time.monotonic() - started)
        if remaining <= 0:
            raise TransportTimeout(
                "connection exceeded its %.1fs budget" % self.connection_deadline_s
            )
        if self.read_timeout is None:
            return remaining
        return min(self.read_timeout, remaining)

    def _serve_connection(self, connection: socket.socket, peer: Tuple) -> None:
        session = ServerSession(
            self.database,
            registry=self.registry,
            policy=self.policy,
            engine=self.engine,
        )
        transport = SocketTransport(connection, read_timeout=self.read_timeout)
        key = id(transport)
        with self._active_lock:
            self._active[key] = transport
        started = time.monotonic()
        outcome = "detached"
        detail = ""
        try:
            while True:
                transport.set_read_timeout(self._budgeted_timeout(started))
                data = transport.recv(DEFAULT_RECV_BYTES)
                if not data:
                    break  # peer closed; a resumable client will reconnect
                reply = session.receive_bytes(data)
                if reply:
                    transport.send(reply)
                if session.errored or session.finished:
                    break
        except TransportError as exc:
            outcome = "dropped"
            detail = str(exc)
        finally:
            transport.close()
            with self._active_lock:
                self._active.pop(key, None)
        self.stats.add("bytes_in", session.bytes_received)
        self.stats.add("bytes_out", session.bytes_sent)
        if session.finished:
            served = self.stats.add("sessions_served")
            self._note(
                "served %s: %d bytes in, %d out"
                % (peer, session.bytes_received, session.bytes_sent)
            )
            if self.max_queries and served >= self.max_queries:
                self.initiate_drain()
        elif session.errored:
            self.stats.add("sessions_rejected")
            if isinstance(session.last_error, ValidationError):
                self.stats.add("validation_rejections")
            self._note("rejected %s: %s" % (peer, session.last_error))
        elif outcome == "dropped":
            self.stats.add("sessions_dropped")
            self._note("dropped %s: %s" % (peer, detail))
        else:
            # Clean EOF before completion: the peer went away mid-run
            # (it may resume on a later connection).
            self.stats.add("sessions_dropped")
            self._note("dropped %s: peer closed mid-session" % (peer,))
