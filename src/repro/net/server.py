"""Supervised concurrent server runtime for the selected-sum protocol.

``serve_over_transport`` handles *one* connection; this module is the
deployment wrapper around it that survives the open internet: many
simultaneous clients, admission control, untrusted-input policy, and a
graceful drain on shutdown.  The ROADMAP's north star is heavy traffic,
and related work on private aggregation treats adversarial clients as
the default — so the runtime assumes every peer may be slow, malicious,
or both.

Architecture (all plain threads, no extra dependencies):

* an **accept loop** owns the listening socket.  Accepted connections
  go into a *bounded* queue; when the queue is full — every worker busy
  and the backlog occupied — the connection is *shed* with a typed BUSY
  frame and closed instead of being left to time out.  BUSY is a
  :class:`~repro.exceptions.ServerBusy` (a transient transport error)
  on the client side, so :func:`~repro.spfe.session.run_resilient`
  retries it under its normal backoff policy.  The BUSY send itself
  happens on a dedicated **shed thread** under a small send budget, so
  a peer that never reads can never stall admission of honest clients.
* a **worker pool** of ``max_sessions`` threads runs one
  :class:`~repro.spfe.session.ServerSession` per connection.  Each
  connection gets a per-read deadline *and* an optional total
  wall-clock budget (``connection_deadline_s``) so one slow-loris
  client costs a bounded slice of one worker, never the pool.
* every session is validated against a
  :class:`~repro.spfe.validation.ServerPolicy`; violations answer a
  typed ERROR frame and are counted, and the worker moves on to the
  next connection — one malicious client never stops honest service.
* **drain**: :meth:`SpfeServer.initiate_drain` (wired to SIGINT/SIGTERM
  by :meth:`install_signal_handlers`) stops accepting, sheds anything
  still queued, lets in-flight sessions finish under a drain deadline,
  then force-closes stragglers.
* **observability**: every counter lives in a
  :class:`~repro.obs.registry.MetricsRegistry`
  (:class:`~repro.net.core.ServerStats` is a thin view over it), phase
  latencies flow through a shared :class:`~repro.obs.tracing.Tracer`,
  and ``stats_port=...`` opts into a
  :class:`~repro.obs.http.StatsEndpoint` serving ``/metrics`` and
  ``/healthz`` on a separate listener.

The budget, gauge, and outcome bookkeeping is *not* implemented here:
it lives in the backend-neutral :class:`~repro.net.core.ServerAccounting`
shared with the asyncio front-end (:mod:`repro.net.aio`), so the two
backends cannot drift in what their counters mean.
"""

from __future__ import annotations

import queue
import signal
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.datastore.database import ServerDatabase
from repro.exceptions import ParameterError, TransportError
from repro.net import codec
from repro.net.core import (
    DEFAULT_DRAIN_DEADLINE_S,
    _POLL_S,
    _SHED_SEND_BUDGET_S,
    ServerAccounting,
    ServerStats,
)
from repro.net.transport import DEFAULT_RECV_BYTES, SocketTransport
from repro.obs.http import StatsEndpoint
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.spfe.session import ServerSession, SessionRegistry
from repro.spfe.validation import ServerPolicy
from repro.store.state import StateStore

__all__ = ["ServerStats", "SpfeServer", "DEFAULT_DRAIN_DEADLINE_S"]


class SpfeServer:
    """Concurrent selected-sum server with admission control and drain.

    Args:
        database: the server-side data; shared read-only by all workers.
        host/port: bind address (port 0 = ephemeral; see :attr:`port`).
        policy: trust-boundary limits applied to every session; None
            installs the default :class:`ServerPolicy` (pass an explicit
            permissive policy to loosen).
        registry: shared resume registry; None builds one sized by the
            policy's registry budgets.
        store: optional :class:`~repro.store.state.StateStore` making
            the registry a durable journal — sessions survive a server
            *process* restart, not just a dropped connection.  Ignored
            when an explicit ``registry`` is passed (attach the store to
            that registry instead).  The server does not own the store:
            the caller that opened it closes it after :meth:`stop`.
        max_sessions: worker threads = maximum concurrent sessions.
        accept_backlog: bounded queue of accepted-but-unstarted
            connections; beyond it, connections are shed with BUSY.
        read_timeout: per-read deadline for each connection (None = no
            per-read deadline; strongly discouraged outside tests).
        connection_deadline_s: optional total wall-clock budget per
            connection; a client that is merely *slow* is cut off once
            its budget is spent, freeing the worker.
        max_queries: query budget (0 = unlimited).  Admission is gated
            on it — once served + in-flight sessions reach the budget,
            further connections are shed with BUSY, so the server never
            *starts* more work than the budget allows — and the server
            drains once this many sessions have been *served to
            completion*.  Dropped, shed, and rejected sessions release
            their slot instead of consuming the budget, so with
            ``max_queries=1`` the server keeps accepting retries until
            one query actually succeeds (it does not exit after the
            first failed connection, as the pre-concurrency server did).
        busy_retry_ms: retry-after hint carried in BUSY frames.
        engine: optional :class:`~repro.crypto.engine.CryptoEngine`
            shared by every session for kernel-partitioned aggregation;
            the server owns it once passed and closes it as the final
            step of its drain path, so worker processes never outlive
            the server.
        metrics: optional shared
            :class:`~repro.obs.registry.MetricsRegistry`; None builds a
            private one.  All counters, gauges, and phase histograms of
            this server live there (and an engine passed in can share
            it for a single unified exposition).
        stats_port: when not None, :meth:`start` also binds a
            :class:`~repro.obs.http.StatsEndpoint` on ``(host,
            stats_port)`` (0 = ephemeral; see :attr:`stats_address`)
            serving ``/metrics``, ``/metrics.json``, and ``/healthz``.
        log: optional callable for one-line progress messages
            (``out.write``-compatible; lines end with ``\\n``).
    """

    def __init__(
        self,
        database: ServerDatabase,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        policy: Optional[ServerPolicy] = None,
        registry: Optional[SessionRegistry] = None,
        store: Optional[StateStore] = None,
        max_sessions: int = 4,
        accept_backlog: int = 8,
        read_timeout: Optional[float] = 30.0,
        connection_deadline_s: Optional[float] = None,
        max_queries: int = 0,
        busy_retry_ms: int = 250,
        engine: Optional[object] = None,
        metrics: Optional[MetricsRegistry] = None,
        stats_port: Optional[int] = None,
        log: Optional[Callable[[str], object]] = None,
    ) -> None:
        if max_sessions < 1:
            raise ParameterError("max_sessions must be positive")
        if accept_backlog < 1:
            raise ParameterError("accept_backlog must be positive")
        if max_queries < 0:
            raise ParameterError("max_queries must be non-negative")
        if stats_port is not None and stats_port < 0:
            raise ParameterError("stats_port must be non-negative")
        self.database = database
        self.host = host
        self.policy = policy if policy is not None else ServerPolicy()
        self.store = store if registry is None else None
        self.registry = (
            registry
            if registry is not None
            else SessionRegistry.from_policy(self.policy, store=self.store)
        )
        self.max_sessions = max_sessions
        self.accept_backlog = accept_backlog
        self.read_timeout = read_timeout
        self.connection_deadline_s = connection_deadline_s
        self.max_queries = max_queries
        self.busy_retry_ms = busy_retry_ms
        self.engine = engine
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = ServerStats(self.metrics)
        self.tracer = Tracer(registry=self.metrics)
        self.stats_port = stats_port
        self._stats_endpoint: Optional[StatsEndpoint] = None
        self._log = log
        self._core = ServerAccounting(
            self.stats,
            metrics=self.metrics,
            max_queries=max_queries,
            backend="threads",
            note=self._note,
        )
        self._requested_port = port
        self._listener: Optional[socket.socket] = None
        self._queue: "queue.Queue[Optional[Tuple[socket.socket, Tuple]]]" = (
            queue.Queue(maxsize=accept_backlog)
        )
        #: refused connections awaiting their best-effort BUSY frame;
        #: bounded so a shed flood holds a bounded number of sockets
        self._shed_queue: "queue.Queue[Optional[socket.socket]]" = queue.Queue(
            maxsize=max(32, accept_backlog * 4)
        )
        self._accept_thread: Optional[threading.Thread] = None
        self._shed_thread: Optional[threading.Thread] = None
        self._workers: List[threading.Thread] = []
        self._active_lock = threading.Lock()
        self._active: Dict[int, SocketTransport] = {}
        self._drain = threading.Event()
        self._stopped = threading.Event()
        self._finalize_lock = threading.Lock()
        self._finalized = False
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SpfeServer":
        """Bind, then launch the accept loop, shed thread, and worker pool.

        Startup is transactional: a failure after the listener is bound
        (the stats endpoint's port being taken is the realistic case)
        unwinds whatever was brought up, closes the listener, and resets
        ``_started`` — so the exception propagates from a server a
        caller can fix and start again.  Before this, a stats-port
        conflict left a bound-but-unserved listener leaking and a retry
        died on "server already started".
        """
        if self._started:
            raise ParameterError("server already started")
        self._started = True
        try:
            self._listener = socket.create_server(
                (self.host, self._requested_port), backlog=self.accept_backlog
            )
            self._listener.settimeout(_POLL_S)
            if self.stats_port is not None:
                self._stats_endpoint = StatsEndpoint(
                    self.metrics,
                    host=self.host,
                    port=self.stats_port,
                    health=self._health,
                ).start()
            self._shed_thread = threading.Thread(
                target=self._shed_loop, name="spfe-shed", daemon=True
            )
            self._shed_thread.start()
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="spfe-accept", daemon=True
            )
            self._accept_thread.start()
            for index in range(self.max_sessions):
                worker = threading.Thread(
                    target=self._worker_loop, name="spfe-worker-%d" % index,
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)
        except Exception:
            self._abort_start()
            raise
        return self

    def _abort_start(self) -> None:
        """Unwind a partially started server so ``start`` can be retried."""
        self._drain.set()
        if self._accept_thread is not None:
            # the accept loop observes the drain flag, sheds its queue,
            # and releases the workers and shed thread on its way out
            self._accept_thread.join(timeout=5.0)
        else:
            for _ in self._workers:
                self._queue.put(None)
            try:
                self._shed_queue.put_nowait(None)
            except queue.Full:
                pass
        if self._shed_thread is not None:
            self._shed_thread.join(timeout=5.0)
        for worker in self._workers:
            worker.join(timeout=5.0)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._stats_endpoint is not None:
            self._stats_endpoint.close()
        # fresh runtime state: a corrected retry starts from scratch
        self._listener = None
        self._stats_endpoint = None
        self._accept_thread = None
        self._shed_thread = None
        self._workers = []
        self._queue = queue.Queue(maxsize=self.accept_backlog)
        self._shed_queue = queue.Queue(maxsize=max(32, self.accept_backlog * 4))
        self._drain = threading.Event()
        self._started = False

    @property
    def port(self) -> int:
        """The bound port (resolves an ephemeral bind)."""
        if self._listener is None:
            raise ParameterError("server not started")
        return self._listener.getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) pair."""
        if self._listener is None:
            raise ParameterError("server not started")
        return self._listener.getsockname()[:2]

    @property
    def stats_address(self) -> Tuple[str, int]:
        """The stats endpoint's bound (host, port); needs ``stats_port``."""
        if self._stats_endpoint is None:
            raise ParameterError("stats endpoint not enabled (pass stats_port)")
        return self._stats_endpoint.address

    @property
    def draining(self) -> bool:
        """True once drain has been initiated."""
        return self._drain.is_set()

    @property
    def stopped(self) -> bool:
        """True once all threads have exited and sockets are closed."""
        return self._stopped.is_set()

    def initiate_drain(self) -> None:
        """Begin graceful shutdown (non-blocking, signal-handler safe).

        Stops accepting, sheds queued connections with BUSY, and lets
        in-flight sessions run to completion.  Call :meth:`stop` or
        :meth:`wait` to block until the drain finishes.
        """
        self._drain.set()

    def install_signal_handlers(self) -> Callable[[], None]:
        """Wire SIGINT/SIGTERM to :meth:`initiate_drain`.

        Returns a zero-argument callable restoring the previous
        handlers.  Must run on the main thread (a Python constraint).
        """
        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(
                signum, lambda _sig, _frame: self.initiate_drain()
            )
        def restore() -> None:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        return restore

    def wait(self, drain_deadline_s: Optional[float] = None) -> None:
        """Block until drain is initiated, then finish the shutdown.

        The wait loop wakes periodically so signal handlers installed by
        :meth:`install_signal_handlers` get a chance to run on the main
        thread.
        """
        while not self._drain.wait(_POLL_S):
            pass
        self._finalize(drain_deadline_s)

    def stop(self, drain_deadline_s: Optional[float] = None) -> None:
        """Initiate drain and block until the server is fully stopped."""
        self.initiate_drain()
        self._finalize(drain_deadline_s)

    def __enter__(self) -> "SpfeServer":
        """Context-manager entry: start the server."""
        return self.start() if not self._started else self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: drain and stop."""
        self.stop()

    def _health(self) -> Dict[str, Any]:
        """The ``/healthz`` document: status plus liveness details."""
        if self._stopped.is_set():
            status = "stopped"
        elif self._drain.is_set():
            status = "draining"
        else:
            status = "ok"
        return {
            "status": status,
            "in_flight_sessions": self._core.in_flight(),
            "workers_alive": sum(
                1 for worker in self._workers if worker.is_alive()
            ),
            "max_sessions": self.max_sessions,
        }

    def _finalize(self, drain_deadline_s: Optional[float]) -> None:
        """Join threads under the drain deadline; force-close stragglers."""
        with self._finalize_lock:
            if self._finalized:
                return
            deadline = (
                drain_deadline_s
                if drain_deadline_s is not None
                else DEFAULT_DRAIN_DEADLINE_S
            )
            if self._accept_thread is not None:
                self._accept_thread.join(timeout=max(deadline, 1.0))
            cutoff = time.monotonic() + deadline
            for worker in self._workers:
                worker.join(timeout=max(0.0, cutoff - time.monotonic()))
            if any(worker.is_alive() for worker in self._workers):
                # Drain deadline exceeded: cut the remaining sessions'
                # sockets out from under them; their workers observe a
                # transport error and exit as drops.
                with self._active_lock:
                    for transport in self._active.values():
                        transport.close()
                for worker in self._workers:
                    worker.join(timeout=5.0)
            if self._shed_thread is not None:
                # The accept loop enqueues the sentinel on its way out; a
                # second one covers the never-accepted edge.  It must be
                # non-blocking: if the shed thread already exited on the
                # first sentinel while a shed flood left the bounded
                # queue full, a blocking put would wedge stop() forever.
                try:
                    self._shed_queue.put_nowait(None)
                except queue.Full:
                    pass
                self._shed_thread.join(timeout=5.0)
            # Anything still queued for a courtesy BUSY never got it —
            # close the sockets instead of leaking them.
            while True:
                try:
                    leftover = self._shed_queue.get_nowait()
                except queue.Empty:
                    break
                if leftover is not None:
                    try:
                        leftover.close()
                    except OSError:
                        pass
            if self._listener is not None:
                try:
                    self._listener.close()
                except OSError:
                    pass
            if self.engine is not None:
                # Last step of the drain: no session can still be folding
                # once the workers have joined, so the kernel pool can be
                # torn down without cutting work short.
                self.engine.close()
            if self._stats_endpoint is not None:
                self._stats_endpoint.close()
            self._finalized = True
            self._stopped.set()

    # -- accept loop --------------------------------------------------------

    def _note(self, message: str) -> None:
        if self._log is not None:
            self._log(message + "\n")

    def _admit_query_budget(self) -> bool:
        """Reserve an in-flight slot; False when max_queries is spent.

        Delegates to :meth:`ServerAccounting.admit_query_budget` — the
        budget semantics are shared with the asyncio front-end.
        """
        return self._core.admit_query_budget()

    def _release_query_budget(self) -> None:
        """Release an admitted slot that never became a served session."""
        self._core.release_query_budget()

    def _retire_session(self, served: bool) -> None:
        """Atomically retire one admitted session, served or not.

        :meth:`ServerAccounting.retire_session` bumps ``sessions_served``
        and releases the in-flight slot under one lock acquisition (the
        budget-boundary atomicity regression lives there); when it
        reports the ``max_queries`` budget met, this front-end begins
        its drain.
        """
        if self._core.retire_session(served):
            self.initiate_drain()

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._drain.is_set():
            try:
                connection, peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us: treat as drain
            self.stats.add("connections_accepted")
            if self._drain.is_set():
                self._shed(connection, peer, "draining")
                break
            if not self._admit_query_budget():
                self._shed(connection, peer, "query budget exhausted")
                continue
            try:
                self._queue.put_nowait((connection, peer))
            except queue.Full:
                self._release_query_budget()
                self._shed(connection, peer)
        # Drain: refuse new connections at the TCP level, shed whatever
        # was queued but never started, then release the workers and
        # finally the shed thread (after its last BUSY is enqueued).
        try:
            self._listener.close()
        except OSError:
            pass
        while True:
            try:
                connection, peer = self._queue.get_nowait()  # type: ignore[misc]
            except queue.Empty:
                break
            self._release_query_budget()
            self._shed(connection, peer, "draining")
        for _ in self._workers:
            self._queue.put(None)
        # Non-blocking, like _finalize's sentinel: with the shed thread
        # gone and the queue flooded, a blocking put would strand the
        # accept thread here and stop() would burn its whole deadline
        # joining it.  _finalize retries the sentinel and closes any
        # leftovers either way.
        try:
            self._shed_queue.put_nowait(None)
        except queue.Full:
            pass

    def _shed(
        self,
        connection: socket.socket,
        peer: Tuple,
        reason: str = "pool and backlog full",
    ) -> None:
        """Refuse a connection with a typed BUSY frame (best effort).

        Only counts and hands the socket to the shed thread.  The BUSY
        send used to happen inline with a 1-second timeout, which let a
        single peer that never reads stall the *accept loop* — and with
        it all admission — for up to a second per shed connection.  Now
        the accept loop never blocks on a peer: the send runs on the
        shed thread under :data:`_SHED_SEND_BUDGET_S`.
        """
        self.stats.add("sessions_shed")
        self._note("shed %s: %s" % (peer, reason))
        try:
            self._shed_queue.put_nowait(connection)
        except queue.Full:
            # Shed flood: skip the courtesy BUSY rather than block or
            # hold more sockets; the client sees a plain close.
            try:
                connection.close()
            except OSError:
                pass

    def _shed_loop(self) -> None:
        """Dedicated thread sending BUSY frames to refused connections."""
        while True:
            connection = self._shed_queue.get()
            if connection is None:
                return
            self._send_busy(connection)

    def _send_busy(self, connection: socket.socket) -> None:
        """Send one BUSY frame under the shed budget, then close.

        The close is preceded by a half-close and a bounded drain of
        whatever the peer already sent (its HELLO, typically).  Closing
        with unread bytes in the receive buffer degrades to an RST,
        which can destroy the in-flight BUSY frame before the peer
        reads it — the peer then sees a connection reset and retries on
        the (faster) crash schedule instead of the busy one.
        """
        try:
            connection.settimeout(_SHED_SEND_BUDGET_S)
            connection.sendall(codec.encode_busy(self.busy_retry_ms))
            connection.shutdown(socket.SHUT_WR)
            deadline = time.monotonic() + _SHED_SEND_BUDGET_S
            while time.monotonic() < deadline:
                if not connection.recv(DEFAULT_RECV_BYTES):
                    break
        except OSError:
            pass
        finally:
            try:
                connection.close()
            except OSError:
                pass

    # -- worker pool --------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            connection, peer = item
            # admitted = handed to the protocol layer; from here exactly
            # one of served/dropped/rejected must be counted, even if
            # _serve_connection itself is broken (the catch-all below),
            # so the outcome invariant holds at drain.
            self._core.session_admitted()
            served = False
            try:
                served = self._serve_connection(connection, peer)
            # seclint: disable=SEC005 -- worker threads must survive session bugs
            except Exception as exc:
                # A bug in session handling must cost one connection,
                # never a worker: a silently shrinking pool turns the
                # server into a BUSY-shedding brick while looking
                # healthy from the outside (regression:
                # test_worker_survives_internal_error).
                self.stats.add("sessions_dropped")
                self.stats.add("sessions_errored_internal")
                self._note("dropped %s: internal error: %r" % (peer, exc))
                try:
                    connection.close()
                except OSError:
                    pass
            finally:
                self._retire_session(served)

    def _serve_connection(self, connection: socket.socket, peer: Tuple) -> bool:
        """Run one session on ``connection``; True when served to completion.

        All byte and outcome accounting lives in the ``finally`` block
        and goes through :meth:`ServerAccounting.account_outcome`, which
        classifies every exit path — served, rejected, dropped, internal
        error — exactly once.  In particular a session that *finished*
        but whose final RESULT send failed is a drop, not a serve: the
        old inline classification checked ``session.finished`` first, so
        that session was logged as served while no outcome counter moved
        at all (the vanished-outcome bug).
        """
        session = ServerSession(
            self.database,
            registry=self.registry,
            policy=self.policy,
            engine=self.engine,
            tracer=self.tracer,
        )
        transport = SocketTransport(connection, read_timeout=self.read_timeout)
        key = id(transport)
        with self._active_lock:
            self._active[key] = transport
        self._core.connection_attached()
        started = time.monotonic()
        outcome = "detached"
        detail = ""
        served = False
        try:
            while True:
                transport.set_read_timeout(
                    self._core.budgeted_timeout(
                        started, self.read_timeout, self.connection_deadline_s
                    )
                )
                data = transport.recv(DEFAULT_RECV_BYTES)
                if not data:
                    break  # peer closed; a resumable client will reconnect
                reply = session.receive_bytes(data)
                if reply:
                    transport.send(reply)
                if session.errored or session.finished:
                    break
        except TransportError as exc:
            outcome = "dropped"
            detail = str(exc)
        # seclint: disable=SEC005 -- internal bugs must still account the session
        except Exception as exc:
            outcome = "internal"
            detail = repr(exc)
        finally:
            transport.close()
            with self._active_lock:
                self._active.pop(key, None)
            self._core.connection_detached()
            served = self._core.account_outcome(session, outcome, peer, detail)
        return served
