"""Supervised concurrent server runtime for the selected-sum protocol.

``serve_over_transport`` handles *one* connection; this module is the
deployment wrapper around it that survives the open internet: many
simultaneous clients, admission control, untrusted-input policy, and a
graceful drain on shutdown.  The ROADMAP's north star is heavy traffic,
and related work on private aggregation treats adversarial clients as
the default — so the runtime assumes every peer may be slow, malicious,
or both.

Architecture (all plain threads, no extra dependencies):

* an **accept loop** owns the listening socket.  Accepted connections
  go into a *bounded* queue; when the queue is full — every worker busy
  and the backlog occupied — the connection is *shed* with a typed BUSY
  frame and closed instead of being left to time out.  BUSY is a
  :class:`~repro.exceptions.ServerBusy` (a transient transport error)
  on the client side, so :func:`~repro.spfe.session.run_resilient`
  retries it under its normal backoff policy.  The BUSY send itself
  happens on a dedicated **shed thread** under a small send budget, so
  a peer that never reads can never stall admission of honest clients.
* a **worker pool** of ``max_sessions`` threads runs one
  :class:`~repro.spfe.session.ServerSession` per connection.  Each
  connection gets a per-read deadline *and* an optional total
  wall-clock budget (``connection_deadline_s``) so one slow-loris
  client costs a bounded slice of one worker, never the pool.
* every session is validated against a
  :class:`~repro.spfe.validation.ServerPolicy`; violations answer a
  typed ERROR frame and are counted, and the worker moves on to the
  next connection — one malicious client never stops honest service.
* **drain**: :meth:`SpfeServer.initiate_drain` (wired to SIGINT/SIGTERM
  by :meth:`install_signal_handlers`) stops accepting, sheds anything
  still queued, lets in-flight sessions finish under a drain deadline,
  then force-closes stragglers.
* **observability**: every counter lives in a
  :class:`~repro.obs.registry.MetricsRegistry` (:class:`ServerStats` is
  a thin view over it), phase latencies flow through a shared
  :class:`~repro.obs.tracing.Tracer`, and ``stats_port=...`` opts into
  a :class:`~repro.obs.http.StatsEndpoint` serving ``/metrics`` and
  ``/healthz`` on a separate listener.
"""

from __future__ import annotations

import queue
import signal
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.datastore.database import ServerDatabase
from repro.exceptions import (
    ParameterError,
    TransportError,
    TransportTimeout,
    ValidationError,
)
from repro.net import codec
from repro.net.transport import DEFAULT_RECV_BYTES, SocketTransport
from repro.obs.http import StatsEndpoint
from repro.obs.registry import Counter, MetricsRegistry
from repro.obs.tracing import Tracer
from repro.spfe.session import ServerSession, SessionRegistry
from repro.spfe.validation import ServerPolicy
from repro.store.state import StateStore

__all__ = ["ServerStats", "SpfeServer", "DEFAULT_DRAIN_DEADLINE_S"]

DEFAULT_DRAIN_DEADLINE_S = 30.0

#: how often blocking loops wake to check for drain (also the accept poll)
_POLL_S = 0.1

#: per-connection send budget for BUSY frames on the shed thread — small
#: enough that even a flood of never-reading peers drains quickly
_SHED_SEND_BUDGET_S = 0.05

#: prefix turning a ServerStats field into its registry metric name
_METRIC_PREFIX = "repro_server_"

#: built-in counters and their exposition help text
_FIELD_HELP: Dict[str, str] = {
    "connections_accepted": "TCP connections accepted by the listener.",
    "sessions_served": "Protocol runs served to completion.",
    "sessions_dropped":
        "Sessions lost to transport failures, peer disconnects, or "
        "internal errors.",
    "sessions_shed":
        "Connections refused with a typed BUSY frame (admission control).",
    "sessions_rejected": "Sessions answered with a typed ERROR frame.",
    "validation_rejections":
        "Rejected sessions that failed a trust-boundary or policy check.",
    "sessions_errored_internal":
        "Dropped sessions whose cause was a server-side internal error, "
        "not the peer (also counted in sessions_dropped).",
    "bytes_in": "Application bytes received across all sessions.",
    "bytes_out": "Application bytes sent across all sessions.",
}


class ServerStats:
    """Named per-server counters, backed by a metrics registry.

    Historically this class kept its own closed dict of counters; it is
    now a thin view over :class:`~repro.obs.registry.MetricsRegistry`
    :class:`~repro.obs.registry.Counter` instruments (one
    ``repro_server_<field>_total`` each), so the same numbers that
    :meth:`snapshot` reports in-process are scraped from ``/metrics``
    without a second bookkeeping path that could drift.  ``add``/``get``
    still reject unknown names — accounting typos stay loud — but the
    field set is open: :meth:`register` adds new counters.

    ``sessions_served`` counts completed protocol runs; ``dropped`` is
    transport-level losses (timeouts, resets, budget exhaustion), of
    which ``sessions_errored_internal`` were the server's own fault;
    ``shed`` is admission-control rejections (BUSY); ``rejected`` is
    sessions answered with a typed ERROR, of which
    ``validation_rejections`` failed a trust-boundary or policy check.
    Byte counters aggregate the per-session accounting.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._counters: Dict[str, Counter] = {}
        for name, help_text in _FIELD_HELP.items():
            self.register(name, help_text)

    def register(self, name: str, help_text: str = "") -> Counter:
        """Add (or fetch) the counter for ``name``; returns the instrument.

        Call during setup, before concurrent ``add``/``get`` traffic:
        the name->instrument map itself is not lock-guarded.
        """
        counter = self.metrics.counter(_METRIC_PREFIX + name + "_total", help_text)
        self._counters[name] = counter
        return counter

    def add(self, name: str, amount: int = 1) -> int:
        """Bump a counter; returns its new value."""
        counter = self._counters.get(name)
        if counter is None:
            raise ParameterError("unknown counter %r" % name)
        return counter.inc(amount)

    def get(self, name: str) -> int:
        """Read one counter."""
        counter = self._counters.get(name)
        if counter is None:
            raise ParameterError("unknown counter %r" % name)
        return counter.value

    def snapshot(self) -> Dict[str, int]:
        """A copy of all counters (one consistent read per counter)."""
        return {name: counter.value for name, counter in self._counters.items()}

    def summary(self) -> str:
        """Human-readable multi-line summary (printed on shutdown)."""
        snap = self.snapshot()
        return (
            "sessions: %d served, %d dropped (%d internal), %d shed, "
            "%d rejected (%d validation)\n"
            "bytes: %d in, %d out (%d connections)"
            % (
                snap["sessions_served"],
                snap["sessions_dropped"],
                snap["sessions_errored_internal"],
                snap["sessions_shed"],
                snap["sessions_rejected"],
                snap["validation_rejections"],
                snap["bytes_in"],
                snap["bytes_out"],
                snap["connections_accepted"],
            )
        )


class SpfeServer:
    """Concurrent selected-sum server with admission control and drain.

    Args:
        database: the server-side data; shared read-only by all workers.
        host/port: bind address (port 0 = ephemeral; see :attr:`port`).
        policy: trust-boundary limits applied to every session; None
            installs the default :class:`ServerPolicy` (pass an explicit
            permissive policy to loosen).
        registry: shared resume registry; None builds one sized by the
            policy's registry budgets.
        store: optional :class:`~repro.store.state.StateStore` making
            the registry a durable journal — sessions survive a server
            *process* restart, not just a dropped connection.  Ignored
            when an explicit ``registry`` is passed (attach the store to
            that registry instead).  The server does not own the store:
            the caller that opened it closes it after :meth:`stop`.
        max_sessions: worker threads = maximum concurrent sessions.
        accept_backlog: bounded queue of accepted-but-unstarted
            connections; beyond it, connections are shed with BUSY.
        read_timeout: per-read deadline for each connection (None = no
            per-read deadline; strongly discouraged outside tests).
        connection_deadline_s: optional total wall-clock budget per
            connection; a client that is merely *slow* is cut off once
            its budget is spent, freeing the worker.
        max_queries: query budget (0 = unlimited).  Admission is gated
            on it — once served + in-flight sessions reach the budget,
            further connections are shed with BUSY, so the server never
            *starts* more work than the budget allows — and the server
            drains once this many sessions have been *served to
            completion*.  Dropped, shed, and rejected sessions release
            their slot instead of consuming the budget, so with
            ``max_queries=1`` the server keeps accepting retries until
            one query actually succeeds (it does not exit after the
            first failed connection, as the pre-concurrency server did).
        busy_retry_ms: retry-after hint carried in BUSY frames.
        engine: optional :class:`~repro.crypto.engine.CryptoEngine`
            shared by every session for kernel-partitioned aggregation;
            the server owns it once passed and closes it as the final
            step of its drain path, so worker processes never outlive
            the server.
        metrics: optional shared
            :class:`~repro.obs.registry.MetricsRegistry`; None builds a
            private one.  All counters, gauges, and phase histograms of
            this server live there (and an engine passed in can share
            it for a single unified exposition).
        stats_port: when not None, :meth:`start` also binds a
            :class:`~repro.obs.http.StatsEndpoint` on ``(host,
            stats_port)`` (0 = ephemeral; see :attr:`stats_address`)
            serving ``/metrics``, ``/metrics.json``, and ``/healthz``.
        log: optional callable for one-line progress messages
            (``out.write``-compatible; lines end with ``\\n``).
    """

    def __init__(
        self,
        database: ServerDatabase,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        policy: Optional[ServerPolicy] = None,
        registry: Optional[SessionRegistry] = None,
        store: Optional[StateStore] = None,
        max_sessions: int = 4,
        accept_backlog: int = 8,
        read_timeout: Optional[float] = 30.0,
        connection_deadline_s: Optional[float] = None,
        max_queries: int = 0,
        busy_retry_ms: int = 250,
        engine: Optional[object] = None,
        metrics: Optional[MetricsRegistry] = None,
        stats_port: Optional[int] = None,
        log: Optional[Callable[[str], object]] = None,
    ) -> None:
        if max_sessions < 1:
            raise ParameterError("max_sessions must be positive")
        if accept_backlog < 1:
            raise ParameterError("accept_backlog must be positive")
        if max_queries < 0:
            raise ParameterError("max_queries must be non-negative")
        if stats_port is not None and stats_port < 0:
            raise ParameterError("stats_port must be non-negative")
        self.database = database
        self.host = host
        self.policy = policy if policy is not None else ServerPolicy()
        self.store = store if registry is None else None
        self.registry = (
            registry
            if registry is not None
            else SessionRegistry.from_policy(self.policy, store=self.store)
        )
        self.max_sessions = max_sessions
        self.accept_backlog = accept_backlog
        self.read_timeout = read_timeout
        self.connection_deadline_s = connection_deadline_s
        self.max_queries = max_queries
        self.busy_retry_ms = busy_retry_ms
        self.engine = engine
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = ServerStats(self.metrics)
        self.tracer = Tracer(registry=self.metrics)
        self.stats_port = stats_port
        self._stats_endpoint: Optional[StatsEndpoint] = None
        self._in_flight_gauge = self.metrics.gauge(
            "repro_server_in_flight_sessions",
            "Admitted sessions not yet retired (queued or being served).",
        )
        self._active_gauge = self.metrics.gauge(
            "repro_server_active_connections",
            "Connections currently attached to a worker.",
        )
        self._log = log
        self._requested_port = port
        self._listener: Optional[socket.socket] = None
        self._queue: "queue.Queue[Optional[Tuple[socket.socket, Tuple]]]" = (
            queue.Queue(maxsize=accept_backlog)
        )
        #: refused connections awaiting their best-effort BUSY frame;
        #: bounded so a shed flood holds a bounded number of sockets
        self._shed_queue: "queue.Queue[Optional[socket.socket]]" = queue.Queue(
            maxsize=max(32, accept_backlog * 4)
        )
        self._accept_thread: Optional[threading.Thread] = None
        self._shed_thread: Optional[threading.Thread] = None
        self._workers: List[threading.Thread] = []
        self._active_lock = threading.Lock()
        self._active: Dict[int, SocketTransport] = {}
        self._budget_lock = threading.Lock()
        #: admitted-but-unfinished sessions counted against max_queries
        self._in_flight = 0
        self._drain = threading.Event()
        self._stopped = threading.Event()
        self._finalize_lock = threading.Lock()
        self._finalized = False
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SpfeServer":
        """Bind, then launch the accept loop, shed thread, and worker pool."""
        if self._started:
            raise ParameterError("server already started")
        self._listener = socket.create_server(
            (self.host, self._requested_port), backlog=self.accept_backlog
        )
        self._listener.settimeout(_POLL_S)
        self._started = True
        if self.stats_port is not None:
            self._stats_endpoint = StatsEndpoint(
                self.metrics,
                host=self.host,
                port=self.stats_port,
                health=self._health,
            ).start()
        self._shed_thread = threading.Thread(
            target=self._shed_loop, name="spfe-shed", daemon=True
        )
        self._shed_thread.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="spfe-accept", daemon=True
        )
        self._accept_thread.start()
        for index in range(self.max_sessions):
            worker = threading.Thread(
                target=self._worker_loop, name="spfe-worker-%d" % index, daemon=True
            )
            worker.start()
            self._workers.append(worker)
        return self

    @property
    def port(self) -> int:
        """The bound port (resolves an ephemeral bind)."""
        if self._listener is None:
            raise ParameterError("server not started")
        return self._listener.getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) pair."""
        if self._listener is None:
            raise ParameterError("server not started")
        return self._listener.getsockname()[:2]

    @property
    def stats_address(self) -> Tuple[str, int]:
        """The stats endpoint's bound (host, port); needs ``stats_port``."""
        if self._stats_endpoint is None:
            raise ParameterError("stats endpoint not enabled (pass stats_port)")
        return self._stats_endpoint.address

    @property
    def draining(self) -> bool:
        """True once drain has been initiated."""
        return self._drain.is_set()

    @property
    def stopped(self) -> bool:
        """True once all threads have exited and sockets are closed."""
        return self._stopped.is_set()

    def initiate_drain(self) -> None:
        """Begin graceful shutdown (non-blocking, signal-handler safe).

        Stops accepting, sheds queued connections with BUSY, and lets
        in-flight sessions run to completion.  Call :meth:`stop` or
        :meth:`wait` to block until the drain finishes.
        """
        self._drain.set()

    def install_signal_handlers(self) -> Callable[[], None]:
        """Wire SIGINT/SIGTERM to :meth:`initiate_drain`.

        Returns a zero-argument callable restoring the previous
        handlers.  Must run on the main thread (a Python constraint).
        """
        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(
                signum, lambda _sig, _frame: self.initiate_drain()
            )
        def restore() -> None:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        return restore

    def wait(self, drain_deadline_s: Optional[float] = None) -> None:
        """Block until drain is initiated, then finish the shutdown.

        The wait loop wakes periodically so signal handlers installed by
        :meth:`install_signal_handlers` get a chance to run on the main
        thread.
        """
        while not self._drain.wait(_POLL_S):
            pass
        self._finalize(drain_deadline_s)

    def stop(self, drain_deadline_s: Optional[float] = None) -> None:
        """Initiate drain and block until the server is fully stopped."""
        self.initiate_drain()
        self._finalize(drain_deadline_s)

    def __enter__(self) -> "SpfeServer":
        """Context-manager entry: start the server."""
        return self.start() if not self._started else self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: drain and stop."""
        self.stop()

    def _health(self) -> Dict[str, Any]:
        """The ``/healthz`` document: status plus liveness details."""
        if self._stopped.is_set():
            status = "stopped"
        elif self._drain.is_set():
            status = "draining"
        else:
            status = "ok"
        with self._budget_lock:
            in_flight = self._in_flight
        return {
            "status": status,
            "in_flight_sessions": in_flight,
            "workers_alive": sum(
                1 for worker in self._workers if worker.is_alive()
            ),
            "max_sessions": self.max_sessions,
        }

    def _finalize(self, drain_deadline_s: Optional[float]) -> None:
        """Join threads under the drain deadline; force-close stragglers."""
        with self._finalize_lock:
            if self._finalized:
                return
            deadline = (
                drain_deadline_s
                if drain_deadline_s is not None
                else DEFAULT_DRAIN_DEADLINE_S
            )
            if self._accept_thread is not None:
                self._accept_thread.join(timeout=max(deadline, 1.0))
            cutoff = time.monotonic() + deadline
            for worker in self._workers:
                worker.join(timeout=max(0.0, cutoff - time.monotonic()))
            if any(worker.is_alive() for worker in self._workers):
                # Drain deadline exceeded: cut the remaining sessions'
                # sockets out from under them; their workers observe a
                # transport error and exit as drops.
                with self._active_lock:
                    for transport in self._active.values():
                        transport.close()
                for worker in self._workers:
                    worker.join(timeout=5.0)
            if self._shed_thread is not None:
                # The accept loop enqueues the sentinel on its way out; a
                # second one covers the never-accepted edge and is inert.
                self._shed_queue.put(None)
                self._shed_thread.join(timeout=5.0)
            if self._listener is not None:
                try:
                    self._listener.close()
                except OSError:
                    pass
            if self.engine is not None:
                # Last step of the drain: no session can still be folding
                # once the workers have joined, so the kernel pool can be
                # torn down without cutting work short.
                self.engine.close()
            if self._stats_endpoint is not None:
                self._stats_endpoint.close()
            self._finalized = True
            self._stopped.set()

    # -- accept loop --------------------------------------------------------

    def _note(self, message: str) -> None:
        if self._log is not None:
            self._log(message + "\n")

    def _admit_query_budget(self) -> bool:
        """Reserve an in-flight slot; False when max_queries is spent.

        The budget counts served plus in-flight sessions, so admission
        stops as soon as enough work to satisfy the budget has *started*
        — extra clients are shed with BUSY and can retry, and a slot is
        released if its session drops or is rejected.  In-flight is
        tracked (and exported as a gauge) even without a budget.
        """
        with self._budget_lock:
            if self.max_queries:
                served = self.stats.get("sessions_served")
                if served + self._in_flight >= self.max_queries:
                    return False
            self._in_flight += 1
            self._in_flight_gauge.set(self._in_flight)
            return True

    def _release_query_budget(self) -> None:
        """Release an admitted slot that never became a served session."""
        with self._budget_lock:
            self._in_flight -= 1
            self._in_flight_gauge.set(self._in_flight)

    def _retire_session(self, served: bool) -> None:
        """Atomically retire one admitted session, served or not.

        The ``sessions_served`` bump and the in-flight release happen
        under the same ``_budget_lock`` acquisition that
        :meth:`_admit_query_budget` takes.  When they were two separate
        steps, an admission check running between them saw the finishing
        session counted in *both* ``served`` and in-flight and could
        shed a connection the budget actually allowed (transient
        double-count at the ``max_queries`` boundary).
        """
        drain = False
        with self._budget_lock:
            self._in_flight -= 1
            self._in_flight_gauge.set(self._in_flight)
            if served:
                total = self.stats.add("sessions_served")
                if self.max_queries and total >= self.max_queries:
                    drain = True
        if drain:
            self.initiate_drain()

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._drain.is_set():
            try:
                connection, peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us: treat as drain
            self.stats.add("connections_accepted")
            if self._drain.is_set():
                self._shed(connection, peer, "draining")
                break
            if not self._admit_query_budget():
                self._shed(connection, peer, "query budget exhausted")
                continue
            try:
                self._queue.put_nowait((connection, peer))
            except queue.Full:
                self._release_query_budget()
                self._shed(connection, peer)
        # Drain: refuse new connections at the TCP level, shed whatever
        # was queued but never started, then release the workers and
        # finally the shed thread (after its last BUSY is enqueued).
        try:
            self._listener.close()
        except OSError:
            pass
        while True:
            try:
                connection, peer = self._queue.get_nowait()  # type: ignore[misc]
            except queue.Empty:
                break
            self._release_query_budget()
            self._shed(connection, peer, "draining")
        for _ in self._workers:
            self._queue.put(None)
        self._shed_queue.put(None)

    def _shed(
        self,
        connection: socket.socket,
        peer: Tuple,
        reason: str = "pool and backlog full",
    ) -> None:
        """Refuse a connection with a typed BUSY frame (best effort).

        Only counts and hands the socket to the shed thread.  The BUSY
        send used to happen inline with a 1-second timeout, which let a
        single peer that never reads stall the *accept loop* — and with
        it all admission — for up to a second per shed connection.  Now
        the accept loop never blocks on a peer: the send runs on the
        shed thread under :data:`_SHED_SEND_BUDGET_S`.
        """
        self.stats.add("sessions_shed")
        self._note("shed %s: %s" % (peer, reason))
        try:
            self._shed_queue.put_nowait(connection)
        except queue.Full:
            # Shed flood: skip the courtesy BUSY rather than block or
            # hold more sockets; the client sees a plain close.
            try:
                connection.close()
            except OSError:
                pass

    def _shed_loop(self) -> None:
        """Dedicated thread sending BUSY frames to refused connections."""
        while True:
            connection = self._shed_queue.get()
            if connection is None:
                return
            self._send_busy(connection)

    def _send_busy(self, connection: socket.socket) -> None:
        """Send one BUSY frame under the shed budget, then close."""
        try:
            connection.settimeout(_SHED_SEND_BUDGET_S)
            connection.sendall(codec.encode_busy(self.busy_retry_ms))
        except OSError:
            pass
        finally:
            try:
                connection.close()
            except OSError:
                pass

    # -- worker pool --------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            connection, peer = item
            served = False
            try:
                served = self._serve_connection(connection, peer)
            # seclint: disable=SEC005 -- worker threads must survive session bugs
            except Exception as exc:
                # A bug in session handling must cost one connection,
                # never a worker: a silently shrinking pool turns the
                # server into a BUSY-shedding brick while looking
                # healthy from the outside (regression:
                # test_worker_survives_internal_error).
                self.stats.add("sessions_dropped")
                self.stats.add("sessions_errored_internal")
                self._note("dropped %s: internal error: %r" % (peer, exc))
                try:
                    connection.close()
                except OSError:
                    pass
            finally:
                self._retire_session(served)

    def _budgeted_timeout(self, started: float) -> Optional[float]:
        """The next read's deadline under the connection budget."""
        if self.connection_deadline_s is None:
            return self.read_timeout
        remaining = self.connection_deadline_s - (time.monotonic() - started)
        if remaining <= 0:
            raise TransportTimeout(
                "connection exceeded its %.1fs budget" % self.connection_deadline_s
            )
        if self.read_timeout is None:
            return remaining
        return min(self.read_timeout, remaining)

    def _serve_connection(self, connection: socket.socket, peer: Tuple) -> bool:
        """Run one session on ``connection``; True when served to completion.

        All byte and outcome accounting lives in the ``finally`` block.
        It used to run *after* the try/finally, so a non-transport error
        raised out of the session skipped it entirely: the worker-loop
        catch-all counted a drop, but the session's bytes vanished from
        the server totals (lost byte accounting on internal errors).
        Now every exit path — served, rejected, dropped, internal error
        — accounts its bytes, and internal errors are additionally
        counted under ``sessions_errored_internal``.
        """
        session = ServerSession(
            self.database,
            registry=self.registry,
            policy=self.policy,
            engine=self.engine,
            tracer=self.tracer,
        )
        transport = SocketTransport(connection, read_timeout=self.read_timeout)
        key = id(transport)
        with self._active_lock:
            self._active[key] = transport
        self._active_gauge.inc()
        started = time.monotonic()
        outcome = "detached"
        detail = ""
        try:
            while True:
                transport.set_read_timeout(self._budgeted_timeout(started))
                data = transport.recv(DEFAULT_RECV_BYTES)
                if not data:
                    break  # peer closed; a resumable client will reconnect
                reply = session.receive_bytes(data)
                if reply:
                    transport.send(reply)
                if session.errored or session.finished:
                    break
        except TransportError as exc:
            outcome = "dropped"
            detail = str(exc)
        # seclint: disable=SEC005 -- internal bugs must still account the session
        except Exception as exc:
            outcome = "internal"
            detail = repr(exc)
        finally:
            transport.close()
            with self._active_lock:
                self._active.pop(key, None)
            self._active_gauge.dec()
            self.stats.add("bytes_in", session.bytes_received)
            self.stats.add("bytes_out", session.bytes_sent)
            if outcome == "internal":
                self.stats.add("sessions_dropped")
                self.stats.add("sessions_errored_internal")
                self._note("dropped %s: internal error: %s" % (peer, detail))
            elif session.finished:
                self._note(
                    "served %s: %d bytes in, %d out"
                    % (peer, session.bytes_received, session.bytes_sent)
                )
            elif session.errored:
                self.stats.add("sessions_rejected")
                if isinstance(session.last_error, ValidationError):
                    self.stats.add("validation_rejections")
                self._note("rejected %s: %s" % (peer, session.last_error))
            elif outcome == "dropped":
                self.stats.add("sessions_dropped")
                self._note("dropped %s: %s" % (peer, detail))
            else:
                # Clean EOF before completion: the peer went away mid-run
                # (it may resume on a later connection).
                self.stats.add("sessions_dropped")
                self._note("dropped %s: peer closed mid-session" % (peer,))
        return outcome == "detached" and session.finished
