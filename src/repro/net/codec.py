"""Byte-level wire codec for the selected-sum protocol.

Everything else in :mod:`repro.net` moves Python objects and *accounts*
bytes; this module actually produces them.  It defines the frame formats
and payload encodings that :mod:`repro.spfe.session` speaks, so the
protocol can run over any byte stream (the tests drive it through real
``socket.socketpair()`` connections).

Two frame formats coexist on the wire; the decoder tells them apart by
the first two bytes (a v1 frame's type field starts ``0x00 0x00``, a v2
frame starts with the magic ``0x52 0x50``, "RP").

v1 frame (big-endian, 8-byte header)::

    +------------+----------------+----------------------+
    | type (u32) | length (u32)   | payload (length B)   |
    +------------+----------------+----------------------+

v2 frame (big-endian, 16-byte header) — adds integrity and ordering::

    +-------------+--------------+------------+-----------+
    | magic (u16) | version (u8) | type (u8)  | seq (u32) |
    +-------------+--------------+------------+-----------+
    | length (u32)| crc32 (u32)  | payload (length B)     |
    +-------------+--------------+------------------------+

The CRC-32 covers the header (with the CRC field zeroed) plus the
payload, so corruption of *any* header field or payload byte is caught
before a ciphertext is touched.  ``seq`` is the absolute chunk index for
``ENC_CHUNK`` frames (what makes sessions resumable) and 0 elsewhere.

The 8-byte v1 header is exactly the ``FRAME_HEADER_BYTES`` the
performance model charges per message, so modelled and v1 wire sizes
agree (a property the tests check); v2 spends 8 further bytes per frame
on resilience.

Payload encodings:

* HELLO — protocol version (u16), key bits (u16), database size (u32),
  chunk element count (u32), then optionally a 16-byte session id (its
  presence is what marks a session resumable).
* PUBLIC_KEY — the Paillier modulus n, big-endian, key_bits/8 bytes.
* ENC_CHUNK — ciphertext count (u32) then that many fixed-width
  ciphertexts (2 * key_bits / 8 bytes each).
* RESULT — one fixed-width ciphertext.
* ERROR — UTF-8 message, optionally prefixed with a typed error code
  (magic byte ``0xEE`` + code u8) so the peer can map the rejection back
  onto the exception hierarchy (:data:`ERROR_CODE_POLICY` →
  :class:`~repro.exceptions.PolicyViolation`, ...).  Untagged payloads
  remain plain UTF-8 for v1 compatibility.
* RESUME — a 16-byte session id (client asks to continue that session).
* ACK — next expected chunk index (u32); ``RESUME_UNKNOWN`` means the
  server no longer knows the session and the client must restart.
* BUSY — the server is shedding load: retry-after hint in milliseconds
  (u32).  Sent instead of accepting a session when the pool and accept
  queue are full, or while draining; the client treats it as a
  transient, retryable condition (:class:`~repro.exceptions.ServerBusy`).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.crypto.ntheory import bytes_for_bits
from repro.exceptions import ProtocolError

__all__ = [
    "FrameType",
    "Frame",
    "FrameDecoder",
    "encode_frame",
    "encode_hello",
    "decode_hello",
    "encode_public_key",
    "decode_public_key",
    "encode_ciphertext_chunk",
    "decode_ciphertext_chunk",
    "encode_result",
    "decode_result",
    "encode_resume",
    "decode_resume",
    "encode_ack",
    "decode_ack",
    "encode_error",
    "decode_error",
    "encode_busy",
    "decode_busy",
    "PROTOCOL_VERSION",
    "WIRE_MAGIC",
    "WIRE_VERSION_1",
    "WIRE_VERSION_2",
    "SESSION_ID_BYTES",
    "RESUME_UNKNOWN",
    "ERROR_CODE_PROTOCOL",
    "ERROR_CODE_POLICY",
    "ERROR_CODE_VALIDATION",
]

PROTOCOL_VERSION = 1

WIRE_MAGIC = 0x5250  # "RP"; a v1 type field can never start with these bytes
WIRE_VERSION_1 = 1
WIRE_VERSION_2 = 2

SESSION_ID_BYTES = 16
RESUME_UNKNOWN = 0xFFFFFFFF

_HEADER = struct.Struct(">II")
_HEADER_V2 = struct.Struct(">HBBIII")  # magic, version, type, seq, length, crc
_HELLO = struct.Struct(">HHII")
_COUNT = struct.Struct(">I")


class FrameType:
    """Wire message type tags."""

    HELLO = 1
    PUBLIC_KEY = 2
    ENC_CHUNK = 3
    RESULT = 4
    ERROR = 5
    RESUME = 6
    ACK = 7
    BUSY = 8

    _KNOWN = frozenset(
        (HELLO, PUBLIC_KEY, ENC_CHUNK, RESULT, ERROR, RESUME, ACK, BUSY)
    )


#: ERROR payload type tags (second byte after the 0xEE magic).
ERROR_CODE_PROTOCOL = 1
ERROR_CODE_POLICY = 2
ERROR_CODE_VALIDATION = 3

_ERROR_MAGIC = 0xEE
_KNOWN_ERROR_CODES = frozenset(
    (ERROR_CODE_PROTOCOL, ERROR_CODE_POLICY, ERROR_CODE_VALIDATION)
)


@dataclass(frozen=True)
class Frame:
    """One decoded frame (``sequence``/``version`` are v2 metadata)."""

    frame_type: int
    payload: bytes
    sequence: int = 0
    version: int = WIRE_VERSION_1

    @property
    def wire_bytes(self) -> int:
        """Size of the frame as encoded, header included."""
        header = _HEADER.size if self.version == WIRE_VERSION_1 else _HEADER_V2.size
        return header + len(self.payload)


def _crc_v2(frame_type: int, sequence: int, length: int, payload: bytes) -> int:
    header = _HEADER_V2.pack(
        WIRE_MAGIC, WIRE_VERSION_2, frame_type, sequence, length, 0
    )
    return zlib.crc32(payload, zlib.crc32(header)) & 0xFFFFFFFF


def encode_frame(
    frame_type: int, payload: bytes, sequence: Optional[int] = None
) -> bytes:
    """Encode one frame.

    ``sequence=None`` produces the legacy v1 frame (8-byte header, no
    integrity); an integer sequence produces a v2 frame with CRC-32.
    """
    if frame_type not in FrameType._KNOWN:
        raise ProtocolError("unknown frame type %d" % frame_type)
    if sequence is None:
        return _HEADER.pack(frame_type, len(payload)) + payload
    if not 0 <= sequence <= 0xFFFFFFFF:
        raise ProtocolError("sequence %d out of u32 range" % sequence)
    crc = _crc_v2(frame_type, sequence, len(payload), payload)
    return (
        _HEADER_V2.pack(
            WIRE_MAGIC, WIRE_VERSION_2, frame_type, sequence, len(payload), crc
        )
        + payload
    )


class FrameDecoder:
    """Incremental frame parser for a byte stream.

    Feed arbitrary chunks with :meth:`feed`; complete frames come out of
    :meth:`frames`.  Handles frames split across reads and multiple
    frames per read — the realities of a TCP stream — and accepts v1 and
    v2 frames interleaved on the same stream, so a v2 server remains
    compatible with v1 peers.  Corruption (bad magic, bad type, absurd
    length, CRC mismatch) raises :class:`~repro.exceptions.ProtocolError`
    and never yields a damaged frame.
    """

    MAX_PAYLOAD = 64 * 1024 * 1024  # sanity cap against corrupt lengths

    def __init__(self, max_payload: Optional[int] = None) -> None:
        if max_payload is not None and max_payload < 1:
            raise ProtocolError("max_payload must be positive")
        self.max_payload = max_payload or self.MAX_PAYLOAD
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        """Buffer more stream bytes."""
        self._buffer.extend(data)

    def frames(self) -> Iterator[Frame]:
        """Yield every complete frame currently buffered."""
        while True:
            if len(self._buffer) < 2:
                return
            if self._buffer[0] == 0x52 and self._buffer[1] == 0x50:
                frame = self._next_v2()
            else:
                frame = self._next_v1()
            if frame is None:
                return
            yield frame

    def _next_v1(self) -> Optional[Frame]:
        if len(self._buffer) < _HEADER.size:
            return None
        frame_type, length = _HEADER.unpack_from(self._buffer, 0)
        if frame_type not in FrameType._KNOWN:
            raise ProtocolError("corrupt stream: frame type %d" % frame_type)
        if length > self.max_payload:
            raise ProtocolError("corrupt stream: %d-byte payload" % length)
        if len(self._buffer) < _HEADER.size + length:
            return None
        payload = bytes(self._buffer[_HEADER.size : _HEADER.size + length])
        del self._buffer[: _HEADER.size + length]
        return Frame(frame_type, payload)

    def _next_v2(self) -> Optional[Frame]:
        if len(self._buffer) < _HEADER_V2.size:
            return None
        _, version, frame_type, sequence, length, crc = _HEADER_V2.unpack_from(
            self._buffer, 0
        )
        if version != WIRE_VERSION_2:
            raise ProtocolError("corrupt stream: wire version %d" % version)
        if frame_type not in FrameType._KNOWN:
            raise ProtocolError("corrupt stream: frame type %d" % frame_type)
        if length > self.max_payload:
            raise ProtocolError("corrupt stream: %d-byte payload" % length)
        if len(self._buffer) < _HEADER_V2.size + length:
            return None
        payload = bytes(self._buffer[_HEADER_V2.size : _HEADER_V2.size + length])
        if crc != _crc_v2(frame_type, sequence, length, payload):
            raise ProtocolError(
                "corrupt stream: CRC mismatch on frame seq %d" % sequence
            )
        del self._buffer[: _HEADER_V2.size + length]
        return Frame(frame_type, payload, sequence=sequence, version=WIRE_VERSION_2)

    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)


# -- payload codecs -----------------------------------------------------------


def encode_hello(
    key_bits: int,
    database_size: int,
    chunk_size: int,
    session_id: Optional[bytes] = None,
    sequence: Optional[int] = None,
) -> bytes:
    """Encode the HELLO frame (version, key bits, db size, chunk[, sid])."""
    payload = _HELLO.pack(PROTOCOL_VERSION, key_bits, database_size, chunk_size)
    if session_id is not None:
        if len(session_id) != SESSION_ID_BYTES:
            raise ProtocolError(
                "session id must be %d bytes, got %d"
                % (SESSION_ID_BYTES, len(session_id))
            )
        payload += session_id
    return encode_frame(FrameType.HELLO, payload, sequence)


def decode_hello(payload: bytes) -> Tuple[int, int, int, Optional[bytes]]:
    """Returns (key_bits, database_size, chunk_size, session_id-or-None)."""
    if len(payload) not in (_HELLO.size, _HELLO.size + SESSION_ID_BYTES):
        raise ProtocolError("malformed HELLO payload")
    version, key_bits, database_size, chunk_size = _HELLO.unpack_from(payload, 0)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "protocol version mismatch: got %d, speak %d"
            % (version, PROTOCOL_VERSION)
        )
    session_id = payload[_HELLO.size :] or None
    return key_bits, database_size, chunk_size, session_id


def _ciphertext_width(key_bits: int) -> int:
    return bytes_for_bits(2 * key_bits)


def encode_public_key(
    n: int, key_bits: int, sequence: Optional[int] = None
) -> bytes:
    """Encode the public-key frame (n, big-endian)."""
    return encode_frame(
        FrameType.PUBLIC_KEY,
        n.to_bytes(bytes_for_bits(key_bits), "big"),
        sequence,
    )


def decode_public_key(payload: bytes) -> int:
    """Parse a public-key payload back to n."""
    if not payload:
        raise ProtocolError("empty public key payload")
    return int.from_bytes(payload, "big")


def encode_ciphertext_chunk(
    ciphertexts: List[int], key_bits: int, sequence: Optional[int] = None
) -> bytes:
    """Encode a counted chunk of fixed-width ciphertexts.

    For v2 frames ``sequence`` must be the absolute chunk index — it is
    what lets a resumed session deduplicate and order chunks.
    """
    width = _ciphertext_width(key_bits)
    parts = [_COUNT.pack(len(ciphertexts))]
    for ct in ciphertexts:
        parts.append(ct.to_bytes(width, "big"))
    return encode_frame(FrameType.ENC_CHUNK, b"".join(parts), sequence)


def decode_ciphertext_chunk(payload: bytes, key_bits: int) -> List[int]:
    """Parse a chunk payload, validating its exact length."""
    width = _ciphertext_width(key_bits)
    if len(payload) < _COUNT.size:
        raise ProtocolError("truncated chunk payload")
    (count,) = _COUNT.unpack_from(payload, 0)
    expected = _COUNT.size + count * width
    if len(payload) != expected:
        raise ProtocolError(
            "chunk payload is %d bytes, expected %d" % (len(payload), expected)
        )
    return [
        int.from_bytes(payload[_COUNT.size + i * width :][:width], "big")
        for i in range(count)
    ]


def encode_result(
    ciphertext: int, key_bits: int, sequence: Optional[int] = None
) -> bytes:
    """Encode the single-ciphertext RESULT frame."""
    width = _ciphertext_width(key_bits)
    return encode_frame(
        FrameType.RESULT, ciphertext.to_bytes(width, "big"), sequence
    )


def decode_result(payload: bytes, key_bits: int) -> int:
    """Parse a RESULT payload, validating its width."""
    width = _ciphertext_width(key_bits)
    if len(payload) != width:
        raise ProtocolError("result payload has wrong width")
    return int.from_bytes(payload, "big")


def encode_resume(session_id: bytes, sequence: Optional[int] = 0) -> bytes:
    """Encode the RESUME request (always a v2 frame)."""
    if len(session_id) != SESSION_ID_BYTES:
        raise ProtocolError(
            "session id must be %d bytes, got %d"
            % (SESSION_ID_BYTES, len(session_id))
        )
    return encode_frame(FrameType.RESUME, session_id, sequence)


def decode_resume(payload: bytes) -> bytes:
    """Parse a RESUME payload back to the session id."""
    if len(payload) != SESSION_ID_BYTES:
        raise ProtocolError("malformed RESUME payload")
    return payload


def encode_ack(next_chunk: int, sequence: Optional[int] = 0) -> bytes:
    """Encode the ACK frame carrying the next expected chunk index."""
    if not 0 <= next_chunk <= RESUME_UNKNOWN:
        raise ProtocolError("ack chunk index %d out of range" % next_chunk)
    return encode_frame(FrameType.ACK, _COUNT.pack(next_chunk), sequence)


def decode_ack(payload: bytes) -> int:
    """Parse an ACK payload back to the next expected chunk index."""
    if len(payload) != _COUNT.size:
        raise ProtocolError("malformed ACK payload")
    return _COUNT.unpack(payload)[0]


def encode_error(
    message: str,
    code: int = ERROR_CODE_PROTOCOL,
    sequence: Optional[int] = None,
) -> bytes:
    """Encode a typed ERROR frame (0xEE magic + code byte + UTF-8)."""
    if code not in _KNOWN_ERROR_CODES:
        raise ProtocolError("unknown error code %d" % code)
    payload = bytes((_ERROR_MAGIC, code)) + message.encode("utf-8")
    return encode_frame(FrameType.ERROR, payload, sequence)


def decode_error(payload: bytes) -> Tuple[int, str]:
    """Parse an ERROR payload into (code, message).

    Untagged payloads (no 0xEE magic — pre-typed-error peers) decode as
    ``(ERROR_CODE_PROTOCOL, message)``.  A 0xEE-tagged payload whose
    code byte is *unknown* also degrades to the untagged path: it is
    either a newer peer's error code (which must not hard-fail an old
    client) or a legacy UTF-8 message that merely starts with 0xEE (the
    lead byte of U+E000..U+EFFF), and in both cases the whole payload is
    the best available message.
    """
    if (
        len(payload) >= 2
        and payload[0] == _ERROR_MAGIC
        and payload[1] in _KNOWN_ERROR_CODES
    ):
        return payload[1], payload[2:].decode("utf-8", "replace")
    return ERROR_CODE_PROTOCOL, payload.decode("utf-8", "replace")


def encode_busy(
    retry_after_ms: int = 0, sequence: Optional[int] = 0
) -> bytes:
    """Encode the BUSY load-shed frame with a retry-after hint."""
    if not 0 <= retry_after_ms <= 0xFFFFFFFF:
        raise ProtocolError("retry hint %d out of u32 range" % retry_after_ms)
    return encode_frame(FrameType.BUSY, _COUNT.pack(retry_after_ms), sequence)


def decode_busy(payload: bytes) -> int:
    """Parse a BUSY payload back to the retry-after hint (milliseconds)."""
    if len(payload) != _COUNT.size:
        raise ProtocolError("malformed BUSY payload")
    return _COUNT.unpack(payload)[0]
