"""Byte-level wire codec for the selected-sum protocol.

Everything else in :mod:`repro.net` moves Python objects and *accounts*
bytes; this module actually produces them.  It defines the frame format
and payload encodings that :mod:`repro.spfe.session` speaks, so the
protocol can run over any byte stream (the tests drive it through real
``socket.socketpair()`` connections).

Frame format (big-endian)::

    +------------+----------------+----------------------+
    | type (u32) | length (u32)   | payload (length B)   |
    +------------+----------------+----------------------+

Eight bytes of header — exactly the ``FRAME_HEADER_BYTES`` the
performance model charges per message, so modelled and real wire sizes
agree (a property the tests check).

Payload encodings:

* HELLO — protocol version (u16), key bits (u16), database size (u32),
  chunk element count (u32).
* PUBLIC_KEY — the Paillier modulus n, big-endian, key_bits/8 bytes.
* ENC_CHUNK — ciphertext count (u32) then that many fixed-width
  ciphertexts (2 * key_bits / 8 bytes each).
* RESULT — one fixed-width ciphertext.
* ERROR — UTF-8 message.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.crypto.ntheory import bytes_for_bits
from repro.exceptions import ProtocolError

__all__ = [
    "FrameType",
    "Frame",
    "FrameDecoder",
    "encode_frame",
    "encode_hello",
    "decode_hello",
    "encode_public_key",
    "decode_public_key",
    "encode_ciphertext_chunk",
    "decode_ciphertext_chunk",
    "encode_result",
    "decode_result",
    "PROTOCOL_VERSION",
]

PROTOCOL_VERSION = 1

_HEADER = struct.Struct(">II")
_HELLO = struct.Struct(">HHII")
_COUNT = struct.Struct(">I")


class FrameType:
    """Wire message type tags."""

    HELLO = 1
    PUBLIC_KEY = 2
    ENC_CHUNK = 3
    RESULT = 4
    ERROR = 5

    _KNOWN = frozenset((HELLO, PUBLIC_KEY, ENC_CHUNK, RESULT, ERROR))


@dataclass(frozen=True)
class Frame:
    """One decoded frame."""

    frame_type: int
    payload: bytes

    @property
    def wire_bytes(self) -> int:
        return _HEADER.size + len(self.payload)


def encode_frame(frame_type: int, payload: bytes) -> bytes:
    """Wrap a payload in the 8-byte type+length header."""
    if frame_type not in FrameType._KNOWN:
        raise ProtocolError("unknown frame type %d" % frame_type)
    return _HEADER.pack(frame_type, len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser for a byte stream.

    Feed arbitrary chunks with :meth:`feed`; complete frames come out of
    :meth:`frames`.  Handles frames split across reads and multiple
    frames per read — the realities of a TCP stream.
    """

    MAX_PAYLOAD = 64 * 1024 * 1024  # sanity cap against corrupt lengths

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        """Buffer more stream bytes."""
        self._buffer.extend(data)

    def frames(self) -> Iterator[Frame]:
        """Yield every complete frame currently buffered."""
        while True:
            if len(self._buffer) < _HEADER.size:
                return
            frame_type, length = _HEADER.unpack_from(self._buffer, 0)
            if frame_type not in FrameType._KNOWN:
                raise ProtocolError("corrupt stream: frame type %d" % frame_type)
            if length > self.MAX_PAYLOAD:
                raise ProtocolError("corrupt stream: %d-byte payload" % length)
            if len(self._buffer) < _HEADER.size + length:
                return
            payload = bytes(self._buffer[_HEADER.size : _HEADER.size + length])
            del self._buffer[: _HEADER.size + length]
            yield Frame(frame_type, payload)

    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)


# -- payload codecs -----------------------------------------------------------


def encode_hello(key_bits: int, database_size: int, chunk_size: int) -> bytes:
    """Encode the HELLO frame (version, key bits, db size, chunk)."""
    payload = _HELLO.pack(PROTOCOL_VERSION, key_bits, database_size, chunk_size)
    return encode_frame(FrameType.HELLO, payload)


def decode_hello(payload: bytes) -> Tuple[int, int, int]:
    """Returns (key_bits, database_size, chunk_size); checks the version."""
    if len(payload) != _HELLO.size:
        raise ProtocolError("malformed HELLO payload")
    version, key_bits, database_size, chunk_size = _HELLO.unpack(payload)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "protocol version mismatch: got %d, speak %d"
            % (version, PROTOCOL_VERSION)
        )
    return key_bits, database_size, chunk_size


def _ciphertext_width(key_bits: int) -> int:
    return bytes_for_bits(2 * key_bits)


def encode_public_key(n: int, key_bits: int) -> bytes:
    """Encode the public-key frame (n, big-endian)."""
    return encode_frame(
        FrameType.PUBLIC_KEY, n.to_bytes(bytes_for_bits(key_bits), "big")
    )


def decode_public_key(payload: bytes) -> int:
    """Parse a public-key payload back to n."""
    if not payload:
        raise ProtocolError("empty public key payload")
    return int.from_bytes(payload, "big")


def encode_ciphertext_chunk(ciphertexts: List[int], key_bits: int) -> bytes:
    """Encode a counted chunk of fixed-width ciphertexts."""
    width = _ciphertext_width(key_bits)
    parts = [_COUNT.pack(len(ciphertexts))]
    for ct in ciphertexts:
        parts.append(ct.to_bytes(width, "big"))
    return encode_frame(FrameType.ENC_CHUNK, b"".join(parts))


def decode_ciphertext_chunk(payload: bytes, key_bits: int) -> List[int]:
    """Parse a chunk payload, validating its exact length."""
    width = _ciphertext_width(key_bits)
    if len(payload) < _COUNT.size:
        raise ProtocolError("truncated chunk payload")
    (count,) = _COUNT.unpack_from(payload, 0)
    expected = _COUNT.size + count * width
    if len(payload) != expected:
        raise ProtocolError(
            "chunk payload is %d bytes, expected %d" % (len(payload), expected)
        )
    return [
        int.from_bytes(payload[_COUNT.size + i * width :][:width], "big")
        for i in range(count)
    ]


def encode_result(ciphertext: int, key_bits: int) -> bytes:
    """Encode the single-ciphertext RESULT frame."""
    width = _ciphertext_width(key_bits)
    return encode_frame(FrameType.RESULT, ciphertext.to_bytes(width, "big"))


def decode_result(payload: bytes, key_bits: int) -> int:
    """Parse a RESULT payload, validating its width."""
    width = _ciphertext_width(key_bits)
    if len(payload) != width:
        raise ProtocolError("result payload has wrong width")
    return int.from_bytes(payload, "big")
