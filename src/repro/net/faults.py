"""Deterministic fault injection for chaos-testing the wire protocol.

Networks corrupt, truncate, stall, fragment, and drop.  This module
reproduces those behaviours *exactly*: a :class:`FaultPlan` is a fixed
list of :class:`FaultEvent`\\ s pinned to absolute byte offsets of one
direction of a stream, generated from the repository's HMAC-DRBG
(:class:`~repro.crypto.rng.DeterministicRandom`), so a chaos run that
fails under seed 17 fails identically every time it is replayed.

:class:`FaultyTransport` wraps any :class:`~repro.net.transport.Transport`
and applies the plan to the *send* side: as the cumulative byte offset
sweeps past each event's position, the event fires.

Event kinds:

* ``CORRUPT`` — XOR one byte with a non-zero mask (the v2 frame CRC must
  catch this before any ciphertext is touched);
* ``TRUNCATE`` — silently drop the remainder of the current write (the
  stream desynchronises; the decoder must fail loudly, never mis-parse);
* ``DELAY`` — stall the send briefly (drives receiver read timeouts);
* ``PARTIAL_WRITE`` — split the write into two inner sends (exercises
  frame reassembly across arbitrary read boundaries);
* ``DISCONNECT`` — deliver a prefix, then raise
  :class:`~repro.exceptions.TransportError` and kill the transport
  (drives reconnect + resume).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.crypto.rng import DeterministicRandom, RandomSource
from repro.exceptions import ParameterError, TransportError
from repro.net.transport import DEFAULT_RECV_BYTES, Transport

__all__ = ["FaultKind", "FaultEvent", "FaultPlan", "FaultyTransport"]


class FaultKind:
    """Names for the injectable fault types."""

    CORRUPT = "corrupt"
    TRUNCATE = "truncate"
    DELAY = "delay"
    PARTIAL_WRITE = "partial-write"
    DISCONNECT = "disconnect"

    ALL = (CORRUPT, TRUNCATE, DELAY, PARTIAL_WRITE, DISCONNECT)


@dataclass(frozen=True)
class FaultEvent:
    """One fault, pinned to an absolute byte offset of the send stream.

    ``param`` is kind-specific: the XOR mask for ``CORRUPT`` (1..255),
    the stall in seconds for ``DELAY``, unused otherwise.
    """

    kind: str
    position: int
    param: float = 0.0

    def __post_init__(self) -> None:
        """Validate the event."""
        if self.kind not in FaultKind.ALL:
            raise ParameterError("unknown fault kind %r" % self.kind)
        if self.position < 0:
            raise ParameterError("fault position must be non-negative")
        if self.kind == FaultKind.CORRUPT and not 1 <= int(self.param) <= 255:
            raise ParameterError("corrupt mask must be in 1..255")


class FaultPlan:
    """An immutable, replayable schedule of fault events.

    Build one explicitly from events, or derive one from a seed with
    :meth:`generate` — the DRBG guarantees the same seed always yields
    the same plan, which is what makes every chaos run reproducible.
    """

    def __init__(self, events: Sequence[FaultEvent]) -> None:
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda event: event.position)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @classmethod
    def generate(
        cls,
        seed: Union[bytes, str, int],
        stream_bytes: int,
        events: int = 3,
        kinds: Sequence[str] = FaultKind.ALL,
        max_delay_s: float = 0.01,
    ) -> "FaultPlan":
        """Derive a plan of ``events`` faults over a ``stream_bytes`` window.

        Positions, kinds, and parameters are all drawn from one
        :class:`~repro.crypto.rng.DeterministicRandom` stream, so the
        plan is a pure function of the arguments.
        """
        if stream_bytes < 1:
            raise ParameterError("stream_bytes must be positive")
        if not kinds:
            raise ParameterError("kinds must be non-empty")
        for kind in kinds:
            if kind not in FaultKind.ALL:
                raise ParameterError("unknown fault kind %r" % kind)
        rng = DeterministicRandom(b"fault-plan:" + _seed_bytes(seed))
        plan: List[FaultEvent] = []
        for _ in range(events):
            kind = kinds[rng.randbelow(len(kinds))]
            position = rng.randbelow(stream_bytes)
            if kind == FaultKind.CORRUPT:
                param: float = 1 + rng.randbelow(255)
            elif kind == FaultKind.DELAY:
                param = max_delay_s * (1 + rng.randbelow(1000)) / 1000.0
            else:
                param = 0.0
            plan.append(FaultEvent(kind, position, param))
        return cls(plan)

    def describe(self) -> str:
        """Human-readable one-line-per-event summary (for failure logs)."""
        return "\n".join(
            "%s@%d param=%g" % (event.kind, event.position, event.param)
            for event in self.events
        )


def _seed_bytes(seed: Union[bytes, str, int]) -> bytes:
    if isinstance(seed, bytes):
        return seed
    if isinstance(seed, str):
        return seed.encode("utf-8")
    return str(int(seed)).encode("ascii")


class FaultyTransport(Transport):
    """A transport wrapper that executes a :class:`FaultPlan`.

    Faults apply to this endpoint's **send** stream, keyed by the
    cumulative number of bytes the caller has asked to send; wrap both
    endpoints (with independent plans) to fault both directions.
    ``sleep`` is injectable so tests can observe ``DELAY`` events
    without wall-clock stalls.
    """

    def __init__(
        self,
        inner: Transport,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.plan = plan
        self._sleep = sleep
        self._offset = 0
        self._next_event = 0
        self._dead = False
        #: events that have actually fired, for test assertions
        self.fired: List[FaultEvent] = []

    # -- helpers -----------------------------------------------------------

    def _pending_event(self, window_end: int) -> Optional[FaultEvent]:
        if self._next_event >= len(self.plan.events):
            return None
        event = self.plan.events[self._next_event]
        if event.position < window_end:
            return event
        return None

    def _consume(self, event: FaultEvent) -> None:
        self._next_event += 1
        self.fired.append(event)

    # -- Transport API -----------------------------------------------------

    def send(self, data: bytes) -> None:
        """Send ``data``, applying every plan event it sweeps over."""
        if self._dead:
            raise TransportError("transport killed by injected disconnect")
        remaining = memoryview(bytes(data))
        while True:
            window_end = self._offset + len(remaining)
            event = self._pending_event(window_end)
            if event is None:
                break
            split = event.position - self._offset
            if event.kind == FaultKind.CORRUPT:
                self._consume(event)
                mutable = bytearray(remaining)
                mutable[split] ^= int(event.param)
                remaining = memoryview(bytes(mutable))
            elif event.kind == FaultKind.TRUNCATE:
                self._consume(event)
                remaining = remaining[:split]
                # The dropped tail still advances the logical offset so
                # later events keep their absolute positions; events that
                # landed inside the dropped tail can never fire.
                while self._next_event < len(self.plan.events) and (
                    self.plan.events[self._next_event].position < window_end
                ):
                    self._next_event += 1
                self._flush(remaining)
                self._offset = window_end
                self.bytes_sent += len(data)
                return
            elif event.kind == FaultKind.DELAY:
                self._consume(event)
                self._sleep(event.param)
            elif event.kind == FaultKind.PARTIAL_WRITE:
                self._consume(event)
                if split > 0:
                    self._flush(remaining[:split])
                    self._offset += split
                    remaining = remaining[split:]
            else:  # DISCONNECT
                self._consume(event)
                self._flush(remaining[:split])
                self._offset += split
                self._dead = True
                self.inner.close()
                raise TransportError(
                    "injected disconnect at stream offset %d" % event.position
                )
        self._flush(remaining)
        self._offset += len(remaining)
        self.bytes_sent += len(data)

    def _flush(self, view: memoryview) -> None:
        if len(view):
            self.inner.send(bytes(view))

    def recv(self, max_bytes: int = DEFAULT_RECV_BYTES) -> bytes:
        """Receive from the wrapped transport (faults are send-side)."""
        if self._dead:
            raise TransportError("transport killed by injected disconnect")
        data = self.inner.recv(max_bytes)
        self.bytes_received += len(data)
        return data

    def close(self) -> None:
        """Close the wrapped transport."""
        self.inner.close()
