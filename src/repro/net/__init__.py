"""Network substrate: link models, channels, framing, transports, faults.

Replaces the paper's physical testbeds (cluster switch, 56 Kbps modem)
with deterministic models — see DESIGN.md §3, substitution 1 and 4 —
and, for the deployment shape, supplies real byte transports with
deadlines and bounded retry (:mod:`repro.net.transport`) plus a
seed-replayable fault injector for chaos testing
(:mod:`repro.net.faults`).
"""

from repro.net.channel import Channel, Pipe
from repro.net.faults import FaultEvent, FaultKind, FaultPlan, FaultyTransport
from repro.net.link import LinkModel, links
from repro.net.transport import (
    MemoryTransport,
    RetryPolicy,
    SocketTransport,
    Transport,
    call_with_retry,
    connect_with_retry,
    memory_pair,
)
from repro.net.wire import Message, MessageLog, vector_wire_bytes

# Imported last: the server runtimes sit above the session layer, which
# itself imports the submodules above.
from repro.net.aio import AsyncSpfeServer  # noqa: E402
from repro.net.core import ServerAccounting, ServerStats  # noqa: E402
from repro.net.server import SpfeServer  # noqa: E402

__all__ = [
    "AsyncSpfeServer",
    "Channel",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultyTransport",
    "LinkModel",
    "MemoryTransport",
    "Message",
    "MessageLog",
    "Pipe",
    "RetryPolicy",
    "ServerAccounting",
    "ServerStats",
    "SocketTransport",
    "SpfeServer",
    "Transport",
    "call_with_retry",
    "connect_with_retry",
    "links",
    "memory_pair",
    "vector_wire_bytes",
]
