"""Simulated network substrate: link models, channels, message framing.

Replaces the paper's physical testbeds (cluster switch, 56 Kbps modem)
with deterministic models — see DESIGN.md §3, substitution 1 and 4.
"""

from repro.net.channel import Channel, Pipe
from repro.net.link import LinkModel, links
from repro.net.wire import Message, MessageLog, vector_wire_bytes

__all__ = [
    "Channel",
    "LinkModel",
    "Message",
    "MessageLog",
    "Pipe",
    "links",
    "vector_wire_bytes",
]
