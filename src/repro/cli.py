"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — a one-minute tour: real crypto on a small database plus a
  paper-scale modelled run.
* ``sum`` — run a private selected sum over a database file (one integer
  per line) with any protocol variant and environment.
* ``estimate`` — closed-form cost prediction for a hypothetical query
  (no workload materialised; see :mod:`repro.spfe.estimator`).
* ``figures`` — regenerate the paper's figures into ``results/``.
* ``keygen`` — generate a Paillier key pair and print its parameters.
* ``serve`` / ``query`` — run the real wire protocol over TCP: ``serve``
  holds a database and answers one private-sum query per connection;
  ``query`` connects, streams its encrypted selection, and prints the
  decrypted sum.  With ``--state-dir`` the server journals resumable
  sessions durably (clients RESUME across a server *restart*) and can
  load its database by name from the store.
* ``supervise`` — run ``repro serve`` as a supervised child process,
  restarting it on crash with bounded exponential backoff.
* ``store`` — inspect and manage a ``--state-dir`` state store
  (``info``, ``ls``, ``import-db``).
* ``stats`` — scrape a running server's ``--stats-port`` endpoint and
  pretty-print its metrics (counters, gauges, histogram summaries).

Every command is a plain function of parsed arguments; ``main`` returns
a process exit code, so the test suite drives the CLI in-process.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.datastore.database import ServerDatabase
from repro.datastore.workload import WorkloadGenerator, indices_to_bits
from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]

_PROTOCOLS = ("plain", "batched", "preprocessed", "combined", "multiclient")
_ENVIRONMENTS = ("short", "long", "wireless")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privacy-preserving statistics computation "
        "(Subramaniam, Wright & Yang, SDM@VLDB 2004).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="one-minute guided demo")

    sum_cmd = commands.add_parser("sum", help="run a private selected sum")
    sum_cmd.add_argument("--db", help="file with one integer per line")
    sum_cmd.add_argument(
        "--random", type=int, metavar="N", help="use a random N-element database"
    )
    sum_cmd.add_argument(
        "--select",
        required=True,
        help="comma-separated indices to sum (e.g. 0,5,17)",
    )
    sum_cmd.add_argument("--protocol", choices=_PROTOCOLS, default="plain")
    sum_cmd.add_argument("--env", choices=_ENVIRONMENTS, default="short")
    sum_cmd.add_argument(
        "--real",
        action="store_true",
        help="run real Paillier (measured) instead of the 2004 model",
    )
    sum_cmd.add_argument("--key-bits", type=int, default=512)
    sum_cmd.add_argument("--batch-size", type=int, default=100)
    sum_cmd.add_argument("--clients", type=int, default=3)
    sum_cmd.add_argument("--seed", default="cli")
    sum_cmd.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the crypto kernels under --real "
        "(1 = in-process serial)",
    )
    sum_cmd.add_argument(
        "--no-multiexp", action="store_true",
        help="disable the simultaneous-multiexp aggregation kernel "
        "(naive per-ciphertext pow; for comparison)",
    )
    sum_cmd.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="write the run's metrics registry (phase breakdown, engine "
        "batches) to PATH as structured JSON",
    )
    sum_cmd.add_argument(
        "--state-dir", metavar="DIR", default=None,
        help="state-store directory; a calibration profile persisted by "
        "'repro calibrate' routes the crypto engine to the measured-"
        "fastest kernel mode",
    )

    est_cmd = commands.add_parser("estimate", help="predict a query's cost")
    est_cmd.add_argument("--n", type=int, required=True)
    est_cmd.add_argument("--protocol", choices=_PROTOCOLS, default="plain")
    est_cmd.add_argument("--env", choices=_ENVIRONMENTS, default="short")
    est_cmd.add_argument("--key-bits", type=int, default=512)
    est_cmd.add_argument("--batch-size", type=int, default=100)
    est_cmd.add_argument("--clients", type=int, default=3)

    fig_cmd = commands.add_parser(
        "figures", help="regenerate the paper's figures into results/"
    )
    fig_cmd.add_argument("--quick", action="store_true")
    fig_cmd.add_argument("--out", default=None, help="output directory")

    plan_cmd = commands.add_parser(
        "plan", help="rank protocol variants for a query (analytic)"
    )
    plan_cmd.add_argument("--n", type=int, required=True)
    plan_cmd.add_argument("--env", choices=_ENVIRONMENTS, default="short")
    plan_cmd.add_argument("--key-bits", type=int, default=512)
    plan_cmd.add_argument("--clients", type=int, default=1)
    plan_cmd.add_argument("--no-preprocessing", action="store_true")
    plan_cmd.add_argument("--no-batching", action="store_true")
    plan_cmd.add_argument("--max-offline-minutes", type=float, default=None)
    plan_cmd.add_argument("--max-storage-mb", type=float, default=None)

    key_cmd = commands.add_parser("keygen", help="generate a Paillier key pair")
    key_cmd.add_argument("--bits", type=int, default=512)
    key_cmd.add_argument("--seed", default=None)

    serve_cmd = commands.add_parser(
        "serve", help="serve a database over TCP (concurrent, hardened)"
    )
    serve_cmd.add_argument("--db", help="file with one integer per line")
    serve_cmd.add_argument("--random", type=int, metavar="N")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    serve_cmd.add_argument(
        "--backend", choices=("threads", "asyncio"), default="threads",
        help="connection front-end: 'threads' runs one worker thread per "
        "concurrent session; 'asyncio' multiplexes connections on an "
        "event loop (folds still run off-loop).  Same protocol, policy, "
        "accounting, and metrics either way",
    )
    serve_cmd.add_argument(
        "--queries", type=int, default=1,
        help="completed queries to serve before draining (0 = serve "
        "until interrupted); admission is gated on the budget, so "
        "connections beyond served + in-flight are shed with BUSY, and "
        "dropped or rejected connections release their slot instead of "
        "consuming it — the server exits after a success, not after the "
        "first failed connection",
    )
    serve_cmd.add_argument("--seed", default="cli")
    serve_cmd.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-read deadline in seconds; a silent peer is dropped, not "
        "waited on forever (0 disables)",
    )
    serve_cmd.add_argument(
        "--max-sessions", type=int, default=4,
        help="worker threads = maximum concurrent sessions",
    )
    serve_cmd.add_argument(
        "--backlog", type=int, default=8,
        help="accepted connections queued beyond the worker pool; further "
        "clients are shed with a typed BUSY frame",
    )
    serve_cmd.add_argument(
        "--session-timeout", type=float, default=0.0,
        help="total wall-clock budget per connection in seconds; a slow "
        "client is cut off when its budget is spent (0 disables)",
    )
    serve_cmd.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="on shutdown (signal or --queries reached), seconds to let "
        "in-flight sessions finish before force-closing them",
    )
    serve_cmd.add_argument(
        "--max-key-bits", type=int, default=4096,
        help="largest client Paillier modulus accepted (policy knob)",
    )
    serve_cmd.add_argument(
        "--min-key-bits", type=int, default=64,
        help="smallest client Paillier modulus accepted (policy knob)",
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the aggregation kernels "
        "(1 = in-process serial)",
    )
    serve_cmd.add_argument(
        "--no-multiexp", action="store_true",
        help="fold chunks with naive per-ciphertext pow instead of the "
        "simultaneous-multiexp kernel",
    )
    serve_cmd.add_argument(
        "--stats-port", type=int, default=None, metavar="PORT",
        help="serve /metrics, /metrics.json, and /healthz on this extra "
        "port (0 = ephemeral; disabled by default)",
    )
    serve_cmd.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="after shutdown, write the final metrics registry to PATH "
        "as structured JSON",
    )
    serve_cmd.add_argument(
        "--state-dir", metavar="DIR", default=None,
        help="durable state directory: resumable sessions are journalled "
        "to SQLite so clients RESUME across a server restart, and "
        "databases/precomputation persist between runs",
    )
    serve_cmd.add_argument(
        "--db-name", metavar="NAME", default=None,
        help="with --state-dir: load the database by NAME from the store "
        "(when no --db/--random is given), or save the loaded database "
        "under NAME for future warm starts",
    )

    sup_cmd = commands.add_parser(
        "supervise",
        help="run `repro serve` under a crash-restarting supervisor",
    )
    sup_cmd.add_argument(
        "--max-restarts", type=int, default=5,
        help="crashes tolerated within one backoff window before giving up",
    )
    sup_cmd.add_argument(
        "--restart-backoff", type=float, default=0.5,
        help="base restart delay in seconds (doubles per consecutive crash)",
    )
    sup_cmd.add_argument(
        "serve_args", nargs=argparse.REMAINDER,
        help="arguments passed through to `repro serve` "
        "(prefix with -- to separate)",
    )

    cal_cmd = commands.add_parser(
        "calibrate",
        help="measure the engine's serial/multiexp/parallel crossover "
        "and persist the mode profile",
    )
    cal_cmd.add_argument(
        "--key-bits", default="256,512", metavar="BITS[,BITS...]",
        help="comma-separated key sizes to measure (default 256,512)",
    )
    cal_cmd.add_argument(
        "--sizes", default="200,1000", metavar="N[,N...]",
        help="comma-separated batch sizes to measure (default 200,1000)",
    )
    cal_cmd.add_argument(
        "--rounds", type=int, default=3,
        help="best-of rounds per measured point (default 3)",
    )
    cal_cmd.add_argument(
        "--workers", type=int, default=2,
        help="worker processes for the parallel candidates (default 2; "
        "1 skips parallel measurement)",
    )
    cal_cmd.add_argument("--seed", default="calibration")
    cal_cmd.add_argument(
        "--state-dir", metavar="DIR", default=None,
        help="persist the profile into this state store so serve/sum "
        "route through it automatically",
    )

    store_cmd = commands.add_parser(
        "store", help="inspect/manage a --state-dir state store"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)
    store_info = store_sub.add_parser(
        "info", help="schema version, journalled sessions, cached keys"
    )
    store_info.add_argument("--state-dir", required=True, metavar="DIR")
    store_ls = store_sub.add_parser("ls", help="list stored databases")
    store_ls.add_argument("--state-dir", required=True, metavar="DIR")
    store_import = store_sub.add_parser(
        "import-db", help="load a database file into the store under a name"
    )
    store_import.add_argument("--state-dir", required=True, metavar="DIR")
    store_import.add_argument("--name", required=True)
    store_import.add_argument("--db", help="file with one integer per line")
    store_import.add_argument("--random", type=int, metavar="N")
    store_import.add_argument("--seed", default="cli")

    stats_cmd = commands.add_parser(
        "stats", help="pretty-print a server's /metrics endpoint"
    )
    stats_cmd.add_argument(
        "url",
        help="stats endpoint, e.g. http://127.0.0.1:9464 (the "
        "/metrics.json path is appended when missing)",
    )

    query_cmd = commands.add_parser(
        "query", help="query a repro server over TCP"
    )
    query_cmd.add_argument("--host", default="127.0.0.1")
    query_cmd.add_argument("--port", type=int, required=True)
    query_cmd.add_argument("--n", type=int, required=True,
                           help="server database size")
    query_cmd.add_argument("--select", required=True,
                           help="comma-separated indices")
    query_cmd.add_argument("--key-bits", type=int, default=512)
    query_cmd.add_argument("--chunk-size", type=int, default=64)
    query_cmd.add_argument(
        "--timeout", type=float, default=10.0,
        help="connect/read deadline in seconds (0 disables)",
    )
    query_cmd.add_argument(
        "--retries", type=int, default=2,
        help="reconnect attempts after a transport failure; reconnects "
        "resume from the last acknowledged chunk",
    )

    return parser


# -- command implementations ---------------------------------------------------


def _environment(name: str):
    from repro.experiments.environments import long_distance, short_distance, wireless

    return {"short": short_distance, "long": long_distance, "wireless": wireless}[name]


def _protocol(name: str, context, args, engine=None):
    from repro.spfe import (
        BatchedSelectedSumProtocol,
        CombinedSelectedSumProtocol,
        MultiClientSelectedSumProtocol,
        PreprocessedSelectedSumProtocol,
        SelectedSumProtocol,
    )

    if name == "plain":
        return SelectedSumProtocol(context)
    if name == "batched":
        return BatchedSelectedSumProtocol(context, batch_size=args.batch_size)
    if name == "preprocessed":
        return PreprocessedSelectedSumProtocol(context, engine=engine)
    if name == "combined":
        return CombinedSelectedSumProtocol(context, batch_size=args.batch_size)
    return MultiClientSelectedSumProtocol(context, num_clients=args.clients)


def _load_database(args) -> ServerDatabase:
    if args.db and args.random:
        raise ReproError("pass either --db or --random, not both")
    if args.db:
        with open(args.db) as handle:
            values = [int(line.strip()) for line in handle if line.strip()]
        return ServerDatabase(values)
    if args.random:
        return WorkloadGenerator(args.seed).database(args.random)
    raise ReproError("either --db FILE or --random N is required")


def cmd_demo(args, out) -> int:
    from repro.crypto.paillier import generate_keypair
    from repro.spfe.selected_sum import private_selected_sum
    from repro.experiments.environments import short_distance
    from repro.spfe.selected_sum import SelectedSumProtocol

    out.write("1/3 real 512-bit Paillier key pair...\n")
    keypair = generate_keypair(512)
    out.write("    n has %d bits\n" % keypair.public.bits)

    out.write("2/3 private sum over [17, 4, 23, 8, 15], selecting 0/2/4...\n")
    db = ServerDatabase([17, 4, 23, 8, 15])
    result = private_selected_sum(db, [1, 0, 1, 0, 1])
    out.write("    sum = %d (server never saw the selection)\n" % result.value)

    out.write("3/3 paper-scale modelled run (n=100,000, 2004 cluster)...\n")
    generator = WorkloadGenerator("demo")
    big = generator.database(100_000)
    selection = generator.random_selection(100_000, 1_000)
    run = SelectedSumProtocol(short_distance.context(seed="demo")).run(big, selection)
    out.write(
        "    modelled online runtime: %.1f minutes (paper: ~20)\n"
        % run.online_minutes()
    )
    return 0


def _write_metrics_json(registry, path: str, out) -> None:
    """Dump ``registry`` to ``path`` as structured JSON (shared by commands)."""
    from repro.obs.exposition import render_json_text

    with open(path, "w") as handle:
        handle.write(render_json_text(registry))
    out.write("metrics written: %s\n" % path)


def _record_breakdown(registry, breakdown) -> None:
    """Feed a run's timing breakdown into phase histograms on ``registry``."""
    from repro.obs.tracing import Tracer

    tracer = Tracer(registry=registry)
    for phase, field in (
        ("encrypt", "client_encrypt_s"),
        ("fold", "server_compute_s"),
        ("communication", "communication_s"),
        ("decrypt", "client_decrypt_s"),
        ("offline", "offline_precompute_s"),
        ("combine", "combine_s"),
    ):
        seconds = getattr(breakdown, field, 0.0)
        if seconds:
            tracer.record(phase, seconds)


def cmd_sum(args, out) -> int:
    database = _load_database(args)
    indices = [int(token) for token in args.select.split(",") if token.strip()]
    selection = indices_to_bits(len(database), indices)

    registry = None
    if args.metrics_json:
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
    environment = _environment(args.env)
    mode = "measured" if args.real else "modelled"
    scheme = None
    engine = None
    if args.real:
        from repro.crypto.paillier import PaillierScheme

        calibration = _load_calibration_profile(
            getattr(args, "state_dir", None), registry
        )
        if calibration is not None:
            out.write(
                "calibration profile loaded (%d measured points)\n"
                % len(calibration)
            )
        if args.workers > 1 or calibration is not None:
            from repro.crypto.engine import CryptoEngine

            engine = CryptoEngine(
                workers=args.workers,
                use_multiexp=not args.no_multiexp,
                calibration=calibration,
                metrics=registry,
            )
        scheme = PaillierScheme(engine=engine, use_multiexp=not args.no_multiexp)
    context = environment.context(
        key_bits=args.key_bits, seed=args.seed, scheme=scheme, mode=mode
    )
    try:
        result = _protocol(args.protocol, context, args, engine=engine).run(
            database, selection
        )
    finally:
        if engine is not None:
            engine.close()
    result.verify(database.select_sum(selection))

    out.write("sum of %d selected elements: %d\n" % (result.m, result.value))
    out.write("protocol: %s over %s (%s)\n" % (result.protocol, result.link, mode))
    if args.real:
        out.write("measured online time: %.3f s\n" % result.makespan_s)
    else:
        out.write("modelled 2004 online time: %.2f min\n" % result.online_minutes())
    out.write("bytes moved: %d\n" % result.total_bytes)
    if registry is not None:
        _record_breakdown(registry, result.breakdown)
        _write_metrics_json(registry, args.metrics_json, out)
    return 0


def cmd_estimate(args, out) -> int:
    from repro.spfe.estimator import ProtocolCostEstimator

    context = _environment(args.env).context(key_bits=args.key_bits)
    estimator = ProtocolCostEstimator(context)
    if args.protocol == "plain":
        estimate = estimator.plain(args.n)
    elif args.protocol == "batched":
        estimate = estimator.batched(args.n, args.batch_size)
    elif args.protocol == "preprocessed":
        estimate = estimator.preprocessed(args.n)
    elif args.protocol == "combined":
        estimate = estimator.combined(args.n, args.batch_size)
    else:
        estimate = estimator.multiclient(args.n, args.clients)

    out.write(
        "estimated cost of %s at n=%d (%s, %d-bit keys):\n"
        % (estimate.protocol, estimate.n, args.env, args.key_bits)
    )
    out.write("  online runtime: %.2f min\n" % estimate.online_minutes())
    minutes = estimate.breakdown.as_minutes()
    for component in (
        "client_encrypt",
        "server_compute",
        "communication",
        "client_decrypt",
        "offline_precompute",
        "combine",
    ):
        if minutes[component]:
            out.write("  %-20s %10.3f min\n" % (component, minutes[component]))
    out.write("  bytes up/down: %d / %d\n" % (estimate.bytes_up, estimate.bytes_down))
    return 0


def cmd_figures(args, out) -> int:
    import os

    if args.quick:
        os.environ["REPRO_QUICK"] = "1"
    from repro.experiments import run_paper_figures, render_table, write_result_file

    for experiment_id, series in run_paper_figures().items():
        table = render_table(series)
        out.write(table + "\n\n")
        path = write_result_file(table, experiment_id + ".txt", args.out)
        out.write("written: %s\n" % path)
    return 0


def cmd_plan(args, out) -> int:
    from repro.spfe.planner import ProtocolPlanner

    context = _environment(args.env).context(key_bits=args.key_bits)
    plan = ProtocolPlanner(context).plan(
        args.n,
        allow_preprocessing=not args.no_preprocessing,
        allow_batching=not args.no_batching,
        available_clients=args.clients,
        max_offline_minutes=args.max_offline_minutes,
        max_client_storage_mb=args.max_storage_mb,
    )
    out.write(plan.explain() + "\n")
    return 0


def cmd_keygen(args, out) -> int:
    from repro.crypto.paillier import generate_keypair

    keypair = generate_keypair(args.bits, args.seed)
    out.write("paillier key pair, %d-bit modulus\n" % keypair.public.bits)
    out.write("n = %d\n" % keypair.public.n)
    # keygen's whole contract is to hand the caller the key they just
    # generated; p/q go to the key's owner on stdout, nowhere else.
    out.write("p = %d\n" % keypair.private.p)  # seclint: disable=SEC001 -- keygen prints the owner's own private key
    out.write("q = %d\n" % keypair.private.q)  # seclint: disable=SEC001 -- keygen prints the owner's own private key
    if args.seed is not None:
        out.write("(deterministic: seed=%r — for testing only)\n" % args.seed)  # seclint: disable=SEC001 -- echoes the --seed flag the caller typed
    return 0


def cmd_serve(args, out) -> int:
    import threading

    from repro.net.aio import AsyncSpfeServer
    from repro.net.server import SpfeServer
    from repro.spfe.validation import ServerPolicy

    server_cls = AsyncSpfeServer if args.backend == "asyncio" else SpfeServer

    if args.queries < 0:
        raise ReproError("--queries must be non-negative")
    if args.db_name and not args.state_dir:
        raise ReproError("--db-name requires --state-dir")
    policy = ServerPolicy(
        min_key_bits=args.min_key_bits, max_key_bits=args.max_key_bits
    )
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    store = None
    if args.state_dir:
        from repro.store import StateStore

        store = StateStore.open(args.state_dir, metrics=registry)
    try:
        if store is not None and args.db_name and not (args.db or args.random):
            # Warm start: the database comes straight out of the store.
            database = store.load_database(args.db_name)
            out.write(
                "database %r loaded from state store (%d rows)\n"
                % (args.db_name, len(database))
            )
        else:
            database = _load_database(args)
            if store is not None and args.db_name:
                store.save_database(args.db_name, database)
                out.write("database saved to store as %r\n" % args.db_name)
        engine = None
        calibration = None
        if store is not None:
            from repro.crypto.calibration import load_profile

            calibration = load_profile(store)
            if calibration is not None:
                out.write(
                    "calibration profile loaded (%d measured points)\n"
                    % len(calibration)
                )
        if args.workers > 1 or args.no_multiexp or calibration is not None:
            from repro.crypto.engine import CryptoEngine

            engine = CryptoEngine(
                workers=max(1, args.workers),
                use_multiexp=not args.no_multiexp,
                calibration=calibration,
                metrics=registry,
            )
        server = server_cls(
            database,
            host=args.host,
            port=args.port,
            policy=policy,
            store=store,
            max_sessions=args.max_sessions,
            accept_backlog=args.backlog,
            read_timeout=args.timeout or None,
            connection_deadline_s=args.session_timeout or None,
            max_queries=args.queries,
            engine=engine,
            metrics=registry,
            stats_port=args.stats_port,
            log=out.write,
        )
        server.start()
        host, port = server.address
        timeout = args.timeout or None
        out.write(
            "serving %d rows on %s:%d (%s backend, %s queries, %d sessions, "
            "%s read deadline)\n"
            % (len(database), host, port, args.backend,
               str(args.queries) if args.queries else "unlimited",
               args.max_sessions, "%.1fs" % timeout if timeout else "no")
        )
        if store is not None:
            out.write(
                "state dir: %s (%d journalled sessions)\n"
                % (args.state_dir, store.session_count())
            )
        if args.stats_port is not None:
            stats_host, stats_port = server.stats_address
            out.write(
                "stats endpoint on http://%s:%d/metrics\n" % (stats_host, stats_port)
            )
        # Signal handlers only work on the main thread; the in-process test
        # harness drives this command from worker threads, where the server
        # drains via --queries instead.
        restore = None
        if threading.current_thread() is threading.main_thread():
            restore = server.install_signal_handlers()
        try:
            server.wait(drain_deadline_s=args.drain_timeout)
        finally:
            server.stop(drain_deadline_s=args.drain_timeout)
            if restore is not None:
                restore()
        out.write(server.stats.summary() + "\n")
        if args.metrics_json:
            _write_metrics_json(registry, args.metrics_json, out)
    finally:
        if store is not None:
            store.close()
    return 0


def cmd_supervise(args, out) -> int:
    import threading

    from repro.store.supervisor import ServerSupervisor, SupervisorPolicy

    serve_args = list(args.serve_args)
    if serve_args and serve_args[0] == "--":
        serve_args = serve_args[1:]
    supervisor = ServerSupervisor(
        [sys.executable, "-m", "repro", "serve"] + serve_args,
        policy=SupervisorPolicy(
            max_restarts=args.max_restarts,
            base_delay_s=args.restart_backoff,
        ),
    )
    pid = supervisor.start()
    out.write("supervising `repro serve %s` (pid %d)\n"
              % (" ".join(serve_args), pid))
    import signal as signal_module

    if threading.current_thread() is threading.main_thread():
        for signum in (signal_module.SIGINT, signal_module.SIGTERM):
            signal_module.signal(
                signum, lambda _sig, _frame: supervisor.stop()
            )
    supervisor.join()
    out.write(
        "supervision ended: %d restart(s)%s\n"
        % (supervisor.restarts,
           ", gave up (restart budget exhausted)" if supervisor.gave_up else "")
    )
    return 1 if supervisor.gave_up else 0


def _load_calibration_profile(state_dir, registry=None):
    """The persisted calibration profile from ``state_dir``, or None."""
    if not state_dir:
        return None
    from repro.crypto.calibration import load_profile
    from repro.store import StateStore

    store = StateStore.open(state_dir, metrics=registry)
    try:
        return load_profile(store)
    finally:
        store.close()


def cmd_calibrate(args, out) -> int:
    from repro.crypto.calibration import (
        render_mode_table,
        run_calibration,
        save_profile,
    )

    try:
        key_bits = [int(t) for t in args.key_bits.split(",") if t.strip()]
        sizes = [int(t) for t in args.sizes.split(",") if t.strip()]
    except ValueError as exc:
        raise ReproError("bad --key-bits/--sizes value: %s" % exc) from exc
    if not key_bits or not sizes:
        raise ReproError("--key-bits and --sizes must name at least one value")
    out.write(
        "calibrating engine modes (%d points x %d rounds, %d workers)...\n"
        % (len(key_bits) * len(sizes), args.rounds, args.workers)
    )
    profile = run_calibration(
        key_bits_list=key_bits,
        sizes=sizes,
        workers=args.workers,
        rounds=args.rounds,
        seed_label=args.seed,
        progress=lambda line: out.write("  %s\n" % line),
    )
    out.write(render_mode_table(profile) + "\n")
    if args.state_dir:
        from repro.store import StateStore

        store = StateStore.open(args.state_dir)
        try:
            save_profile(store, profile)
        finally:
            store.close()
        out.write("profile persisted to %s\n" % args.state_dir)
    else:
        out.write(
            "profile not persisted (pass --state-dir to let serve/sum "
            "route through it)\n"
        )
    return 0


def cmd_store(args, out) -> int:
    from repro.store import SCHEMA_VERSION, StateStore

    store = StateStore.open(args.state_dir)
    try:
        if args.store_command == "info":
            out.write("state store: %s\n" % store.path)
            out.write("schema version: v%d\n" % SCHEMA_VERSION)
            out.write("journalled sessions: %d\n" % store.session_count())
            databases = store.list_databases()
            out.write("databases: %d\n" % len(databases))
        elif args.store_command == "ls":
            databases = store.list_databases()
            if not databases:
                out.write("no databases stored\n")
            for name, length, value_bits in databases:
                out.write(
                    "%-24s %10d rows  %2d-bit values\n"
                    % (name, length, value_bits)
                )
        else:  # import-db
            database = _load_database(args)
            store.save_database(args.name, database)
            out.write(
                "imported %d rows as %r into %s\n"
                % (len(database), args.name, store.path)
            )
    finally:
        store.close()
    return 0


def cmd_stats(args, out) -> int:
    import json

    from repro.obs.check import scrape

    url = args.url
    if "://" not in url:
        url = "http://" + url
    if not url.rstrip("/").endswith("/metrics.json"):
        url = url.rstrip("/") + "/metrics.json"
    try:
        status, body = scrape(url)
    except (OSError, ValueError) as exc:
        raise ReproError("cannot scrape %s: %s" % (url, exc)) from exc
    if status != 200:
        raise ReproError("HTTP %d from %s" % (status, url))
    try:
        metrics = json.loads(body).get("metrics", [])
    except ValueError as exc:
        raise ReproError("malformed JSON from %s: %s" % (url, exc)) from exc
    if not metrics:
        out.write("no metrics exposed at %s\n" % url)
        return 0
    for metric in metrics:
        labels = metric.get("labels") or {}
        name = metric.get("name", "?")
        if labels:
            name += "{%s}" % ",".join(
                "%s=%s" % (key, value) for key, value in sorted(labels.items())
            )
        if metric.get("type") == "histogram":
            count = metric.get("count", 0)
            total = metric.get("sum", 0.0)
            mean = total / count if count else 0.0
            out.write(
                "%-52s %12d obs  mean %.6f\n" % (name, count, mean)
            )
        else:
            value = metric.get("value", 0)
            if isinstance(value, float) and value == int(value):
                value = int(value)
            out.write("%-52s %12s\n" % (name, value))
    return 0


def cmd_query(args, out) -> int:
    from repro.net.transport import RetryPolicy, SocketTransport
    from repro.spfe.session import ClientSession, run_resilient

    indices = [int(token) for token in args.select.split(",") if token.strip()]
    selection = indices_to_bits(args.n, indices)
    client = ClientSession(
        selection, key_bits=args.key_bits, chunk_size=args.chunk_size
    )
    timeout = args.timeout or None
    if args.retries < 0:
        raise ReproError("--retries must be non-negative")
    policy = RetryPolicy(max_attempts=args.retries + 1)
    run_resilient(
        client,
        lambda: SocketTransport.connect(
            args.host, args.port,
            connect_timeout=timeout, read_timeout=timeout,
        ),
        policy=policy,
    )
    out.write("private sum of %d elements: %d\n" % (len(indices), client.result))
    out.write("bytes up/down: %d / %d\n"
              % (client.bytes_sent, client.bytes_received))
    out.write("encryptions: %d (chunk frames sent: %d)\n"
              % (client.encryptions, client.chunk_frames_sent))
    return 0


_COMMANDS = {
    "demo": cmd_demo,
    "sum": cmd_sum,
    "estimate": cmd_estimate,
    "figures": cmd_figures,
    "keygen": cmd_keygen,
    "plan": cmd_plan,
    "serve": cmd_serve,
    "calibrate": cmd_calibrate,
    "supervise": cmd_supervise,
    "store": cmd_store,
    "query": cmd_query,
    "stats": cmd_stats,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        out.write("error: %s\n" % exc)
        return 2
    except OSError as exc:
        out.write("error: %s\n" % exc)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
