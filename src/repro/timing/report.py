"""Timing breakdowns — the components every figure of the paper plots.

Figures 2, 3, 5, and 6 plot four series against database size:
client encryption time, server computation time, communication time, and
client decryption time.  :class:`TimingBreakdown` is that record, plus
the offline precomputation time (§3.3 makes the offline/online split the
whole point) and the multi-client combining time (§3.5's phase two).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["TimingBreakdown", "seconds_to_minutes"]


def seconds_to_minutes(seconds: float) -> float:
    """The paper reports minutes; so do our tables."""
    return seconds / 60.0


@dataclass
class TimingBreakdown:
    """Component times (seconds) of one protocol run.

    ``total_sequential`` is the sum of online components — the runtime of
    the unoptimized protocol, whose phases do not overlap.  Pipelined
    protocols additionally report a measured/modelled ``makespan`` on
    their run result; the components here remain the per-resource busy
    times either way.
    """

    client_encrypt_s: float = 0.0
    server_compute_s: float = 0.0
    communication_s: float = 0.0
    client_decrypt_s: float = 0.0
    offline_precompute_s: float = 0.0
    combine_s: float = 0.0

    def total_online_s(self) -> float:
        """Online runtime, excluding offline precomputation."""
        return (
            self.client_encrypt_s
            + self.server_compute_s
            + self.communication_s
            + self.client_decrypt_s
            + self.combine_s
        )

    def total_s(self) -> float:
        """Everything, including offline work."""
        return self.total_online_s() + self.offline_precompute_s

    def as_minutes(self) -> Dict[str, float]:
        """The figure-ready view: component -> minutes."""
        return {
            "client_encrypt": seconds_to_minutes(self.client_encrypt_s),
            "server_compute": seconds_to_minutes(self.server_compute_s),
            "communication": seconds_to_minutes(self.communication_s),
            "client_decrypt": seconds_to_minutes(self.client_decrypt_s),
            "offline_precompute": seconds_to_minutes(self.offline_precompute_s),
            "combine": seconds_to_minutes(self.combine_s),
        }

    def add(self, other: "TimingBreakdown") -> "TimingBreakdown":
        """Component-wise sum (used to aggregate multi-client runs)."""
        return TimingBreakdown(
            client_encrypt_s=self.client_encrypt_s + other.client_encrypt_s,
            server_compute_s=self.server_compute_s + other.server_compute_s,
            communication_s=self.communication_s + other.communication_s,
            client_decrypt_s=self.client_decrypt_s + other.client_decrypt_s,
            offline_precompute_s=self.offline_precompute_s
            + other.offline_precompute_s,
            combine_s=self.combine_s + other.combine_s,
        )
