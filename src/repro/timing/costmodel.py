"""Per-operation cost model and the paper's hardware profiles.

The paper's timings come from four machines we do not have:

* 2 GHz Pentium-III (client *and* server of Figures 2, 4, 5, 7, 9);
* 1 GHz Intel Pentium (server of Figures 3 and 6);
* 500 MHz UltraSparc (client of Figures 3 and 6);
* the same code in Java, reported as ~5x slower than C++ (§3, Figure 9).

A :class:`HardwareProfile` carries a table of per-operation costs for
512-bit keys plus a compute scale (relative machine speed) and a language
factor.  The Pentium-III base costs are *fitted to the paper's own
reported end-to-end numbers* — e.g. "approximately 20 minutes ... for a
database of 100,000 elements" (§3.1) implies ~10.8 ms per Paillier-512
encryption, and the ~82 % / ~94 % optimization gains (§3.3, §3.4) pin the
server and per-message costs.  DESIGN.md §3 records the fit.

Costs scale with key size the way modular arithmetic does: a full
``n``-bit exponentiation costs Θ(bits³) (bits-long exponent of bits²
multiplications), while the server's step — a fixed 32-bit exponent —
costs Θ(bits²).

Profiles can also be *calibrated*: :func:`calibrate_profile` measures the
real pure-Python cryptosystem on the current machine and fits a profile,
which the live benches use to sanity-check the model's op-cost ratios.

The calibration is *kernel-aware*: by default it charges the server's
``WEIGHTED_STEP`` at the amortised per-ciphertext cost of the
simultaneous-multiexp kernel (:func:`repro.crypto.multiexp.
multi_exponent`) and ``PRECOMPUTE`` at the fixed-base windowed table's
per-obfuscator cost — the code paths the measured protocols actually
take since the kernel engine landed.  Pass ``use_kernels=False`` to fit
the naive square-and-multiply costs instead (the paper-era baseline,
and what ``--no-multiexp`` runs match).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Mapping, Optional

from repro.exceptions import CalibrationError, ParameterError

__all__ = ["Op", "HardwareProfile", "profiles", "calibrate_profile"]

REFERENCE_KEY_BITS = 512  # base costs are quoted at the paper's key size


class Op(enum.Enum):
    """Operation categories charged by protocols.

    Values are short names used in reports.
    """

    KEYGEN = "keygen"
    ENCRYPT = "encrypt"  # full Paillier encryption (obfuscator + multiply)
    PRECOMPUTE = "precompute"  # offline part of an encryption (r^n mod n^2)
    POOL_FETCH = "pool-fetch"  # read one stored pre-encryption (§3.3 online)
    WEIGHTED_STEP = "weighted-step"  # server's E(I_i)^{x_i} * accumulate (32-bit exp)
    CIPHER_ADD = "cipher-add"  # one modular multiplication of ciphertexts
    DECRYPT = "decrypt"  # Paillier decryption (CRT)
    PLAIN_ADD = "plain-add"  # bookkeeping-level arithmetic


# How each op scales with key size, as an exponent on (bits / 512):
#   3 -> full modular exponentiation (exponent grows with the key)
#   2 -> fixed-size exponent or plain modular multiplication
#   0 -> size-independent bookkeeping
_KEY_SCALING_EXPONENT: Dict[Op, int] = {
    Op.KEYGEN: 3,
    Op.ENCRYPT: 3,
    Op.PRECOMPUTE: 3,
    Op.POOL_FETCH: 0,
    Op.WEIGHTED_STEP: 2,
    Op.CIPHER_ADD: 2,
    Op.DECRYPT: 3,
    Op.PLAIN_ADD: 0,
}

# Fitted Pentium-III / 2 GHz / C++ / 512-bit base costs, in seconds.
# See the module docstring and DESIGN.md §3 for the derivation.
_PENTIUM3_BASE_COSTS: Dict[Op, float] = {
    Op.KEYGEN: 1.5,
    Op.ENCRYPT: 10.8e-3,
    Op.PRECOMPUTE: 10.3e-3,
    Op.POOL_FETCH: 0.5e-3,
    Op.WEIGHTED_STEP: 0.8e-3,
    Op.CIPHER_ADD: 0.05e-3,
    Op.DECRYPT: 11.0e-3,
    Op.PLAIN_ADD: 1.0e-6,
}


@dataclass(frozen=True)
class HardwareProfile:
    """Per-operation compute costs for one machine / language pair.

    Attributes:
        name: identifier used in reports.
        base_costs: seconds per operation at 512-bit keys, for the
            reference machine this profile scales from.
        compute_scale: relative slowdown of this machine vs the reference
            (Pentium-III 2 GHz = 1.0).
        language_factor: runtime multiplier (C++ = 1.0, Java ≈ 5.0 — the
            paper's measured ratio, §3).
    """

    name: str
    base_costs: Mapping[Op, float] = field(
        default_factory=lambda: dict(_PENTIUM3_BASE_COSTS)
    )
    compute_scale: float = 1.0
    language_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.compute_scale <= 0 or self.language_factor <= 0:
            raise ParameterError("scale factors must be positive")
        missing = [op for op in Op if op not in self.base_costs]
        if missing:
            raise ParameterError(
                "profile %r missing costs for %s" % (self.name, missing)
            )

    def cost(self, op: Op, key_bits: int = REFERENCE_KEY_BITS) -> float:
        """Seconds for one ``op`` at ``key_bits``-bit keys on this machine."""
        if key_bits <= 0:
            raise ParameterError("key size must be positive")
        scaling = (key_bits / REFERENCE_KEY_BITS) ** _KEY_SCALING_EXPONENT[op]
        return (
            self.base_costs[op] * scaling * self.compute_scale * self.language_factor
        )

    def java(self) -> "HardwareProfile":
        """This machine running the paper's Java implementation (~5x)."""
        return replace(
            self, name=self.name + "-java", language_factor=self.language_factor * 5.0
        )

    def scaled(self, factor: float, name: Optional[str] = None) -> "HardwareProfile":
        """A machine ``factor``x slower (or faster, for factor < 1)."""
        return replace(
            self,
            name=name or "%s-x%g" % (self.name, factor),
            compute_scale=self.compute_scale * factor,
        )


class _ProfilePresets:
    """The paper's machines (attribute-style access).

    ``pentium3_2ghz``     — client & server of the short-distance runs.
    ``pentium_1ghz``      — server of the long-distance runs (~2x slower).
    ``ultrasparc_500mhz`` — client of the long-distance runs (~4x slower).
    """

    def __init__(self) -> None:
        self.pentium3_2ghz = HardwareProfile(name="pentium3-2ghz")
        self.pentium_1ghz = self.pentium3_2ghz.scaled(2.0, "pentium-1ghz")
        self.ultrasparc_500mhz = self.pentium3_2ghz.scaled(4.0, "ultrasparc-500mhz")

    def by_name(self, name: str) -> HardwareProfile:
        for profile in vars(self).values():
            if isinstance(profile, HardwareProfile) and profile.name == name:
                return profile
        raise ParameterError("unknown hardware profile %r" % name)


profiles = _ProfilePresets()


def calibrate_profile(
    name: str = "local",
    key_bits: int = 256,
    iterations: int = 20,
    clock: Callable[[], float] = time.perf_counter,
    use_kernels: bool = True,
) -> HardwareProfile:
    """Fit a profile to the *current* machine by measuring real Paillier.

    Runs ``iterations`` of each operation with the pure-Python
    cryptosystem at ``key_bits`` and converts the measurements to
    512-bit-equivalent base costs using the key-scaling law.  Used by the
    live microbenchmarks to compare the model's op-cost *ratios* against
    real measurements (absolute speed of 2004 hardware is, of course, not
    reproducible).

    With ``use_kernels`` (the default) the server step and the offline
    obfuscator are charged at the batch-kernel rates — amortised
    simultaneous multiexp and fixed-base table lookups respectively —
    matching what engine-backed runs actually execute.  The fixed-base
    table build is a one-time per-key cost and is excluded, like key
    generation, from the per-op figure.
    """
    from repro.crypto.multiexp import FixedBaseTable, multi_exponent
    from repro.crypto.paillier import generate_keypair
    from repro.crypto.rng import DeterministicRandom

    if iterations < 1:
        raise CalibrationError("need at least one iteration")
    rng = DeterministicRandom("calibration")
    keypair = generate_keypair(key_bits, rng)
    pk, sk = keypair.public, keypair.private

    def measure(fn: Callable[[int], object]) -> float:
        start = clock()
        for i in range(iterations):
            fn(i)
        return (clock() - start) / iterations

    ciphertexts = [pk.encrypt_raw(i + 1, rng) for i in range(iterations)]

    t_encrypt = measure(lambda i: pk.encrypt_raw(i, rng))
    if use_kernels:
        # Offline obfuscator via the fixed-base windowed table (the
        # RandomnessPool fixed-base path): exclude the one-time table
        # build, measure per-lookup cost.
        h = rng.randrange(2, pk.n)
        table = FixedBaseTable(pow(h, pk.n, pk.nsquare), pk.nsquare, pk.bits)
        exps = [rng.randrange(1, table.capacity) for _ in range(iterations)]
        t_precompute = measure(lambda i: table.pow(exps[i]))
        # Server step: amortised cost per ciphertext of one multiexp
        # batch.  Cycle the ciphertext pool up to a realistic batch so
        # the bucket method's shared squaring chain is actually shared.
        batch = (ciphertexts * (max(64, iterations) // len(ciphertexts) + 1))[:64]
        weights = [rng.randrange(1, 1 << 32) for _ in batch]
        start = clock()
        multi_exponent(batch, weights, pk.nsquare)
        t_step = (clock() - start) / len(batch)
    else:
        t_precompute = measure(lambda i: pk.obfuscator(rng))
        t_step = measure(
            lambda i: pow(ciphertexts[i], 0xDEADBEEF, pk.nsquare) * ciphertexts[i]
            % pk.nsquare
        )
    t_add = measure(lambda i: ciphertexts[i] * ciphertexts[-1 - i] % pk.nsquare)
    t_decrypt = measure(lambda i: sk.raw_decrypt(ciphertexts[i]))

    def to_reference(measured: float, op: Op) -> float:
        scaling = (key_bits / REFERENCE_KEY_BITS) ** _KEY_SCALING_EXPONENT[op]
        return measured / scaling

    base = dict(_PENTIUM3_BASE_COSTS)
    base[Op.ENCRYPT] = to_reference(t_encrypt, Op.ENCRYPT)
    base[Op.PRECOMPUTE] = to_reference(t_precompute, Op.PRECOMPUTE)
    base[Op.WEIGHTED_STEP] = to_reference(t_step, Op.WEIGHTED_STEP)
    base[Op.CIPHER_ADD] = to_reference(t_add, Op.CIPHER_ADD)
    base[Op.DECRYPT] = to_reference(t_decrypt, Op.DECRYPT)
    base[Op.POOL_FETCH] = max(t_add / 10.0, 1e-7)
    if any(v <= 0 for v in base.values()):
        raise CalibrationError("non-positive measurement; clock too coarse")
    return HardwareProfile(name=name, base_costs=base)
