"""Timing substrate: cost models, hardware profiles, clocks, breakdowns."""

from repro.timing.clock import PipelineSchedule, Stopwatch, VirtualClock
from repro.timing.costmodel import HardwareProfile, Op, calibrate_profile, profiles
from repro.timing.report import TimingBreakdown, seconds_to_minutes

__all__ = [
    "HardwareProfile",
    "Op",
    "PipelineSchedule",
    "Stopwatch",
    "TimingBreakdown",
    "VirtualClock",
    "calibrate_profile",
    "profiles",
    "seconds_to_minutes",
]
