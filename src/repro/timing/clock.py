"""Clocks and pipeline scheduling for protocol timing.

Two ways a protocol run gets its durations:

* **Modelled** (the default for paper-scale experiments): a
  :class:`VirtualClock` advances by cost-model charges; nothing waits in
  real time.
* **Measured** (live runs of the real cryptosystem): a :class:`Stopwatch`
  measures each phase with ``time.perf_counter``.

:class:`PipelineSchedule` implements the timing recurrence of the
paper's §3.2 batching optimization: three resources (client CPU, link,
server CPU) process a stream of batches, each batch flowing through all
three in order, each resource handling one batch at a time.  The overall
makespan is what Figure 4 plots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.exceptions import ParameterError

__all__ = ["VirtualClock", "Stopwatch", "PipelineSchedule"]


class VirtualClock:
    """A per-party virtual clock advanced by explicit charges."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance by ``seconds`` (>= 0) and return the new time."""
        if seconds < 0:
            raise ParameterError("cannot advance a clock by negative time")
        self._now += seconds
        return self._now

    def wait_until(self, t: float) -> float:
        """Advance to ``t`` if it is in the future (blocking receive)."""
        if t > self._now:
            self._now = t
        return self._now


class Stopwatch:
    """Accumulating wall-clock stopwatch (context-manager based).

    >>> sw = Stopwatch()
    >>> with sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed > 0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._entered_at = 0.0

    def __enter__(self) -> "Stopwatch":
        self._entered_at = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed += time.perf_counter() - self._entered_at


@dataclass
class PipelineSchedule:
    """Makespan of a three-stage pipeline over a stream of batches.

    Stage semantics (paper §3.2):

    1. client produces batch *i* (encrypt, or pool-fetch);
    2. the link carries batch *i*;
    3. the server folds batch *i* into its partial product.

    Each stage is a serial resource.  With per-batch stage durations
    ``a_i``, ``b_i``, ``c_i`` the completion times follow the classic
    flow-shop recurrence::

        A_i = A_{i-1} + a_i
        B_i = max(A_i, B_{i-1}) + b_i
        C_i = max(B_i, C_{i-1}) + c_i

    and the makespan is ``C_last``.  When one stage dominates, the
    makespan approaches that stage's total plus the fill/drain time of
    the others — which is why batching buys ~10 % in Figure 4 (encryption
    dominates) and ~94 % combined with preprocessing in Figure 7 (server
    computation dominates, everything else overlaps it).
    """

    client_stage: Sequence[float]
    link_stage: Sequence[float]
    server_stage: Sequence[float]

    def __post_init__(self) -> None:
        lengths = {
            len(self.client_stage),
            len(self.link_stage),
            len(self.server_stage),
        }
        if len(lengths) != 1:
            raise ParameterError("pipeline stages must have equal batch counts")
        for stage in (self.client_stage, self.link_stage, self.server_stage):
            if any(d < 0 for d in stage):
                raise ParameterError("stage durations must be non-negative")

    def completion_times(self) -> List[float]:
        """Completion time of each batch at the last stage."""
        a_done = 0.0
        b_done = 0.0
        c_done = 0.0
        out: List[float] = []
        for a, b, c in zip(self.client_stage, self.link_stage, self.server_stage):
            a_done += a
            b_done = max(a_done, b_done) + b
            c_done = max(b_done, c_done) + c
            out.append(c_done)
        return out

    def makespan(self) -> float:
        """End-to-end time for the whole stream (0.0 for no batches)."""
        times = self.completion_times()
        return times[-1] if times else 0.0

    def stage_totals(self) -> List[float]:
        """Total busy time per stage — the *component* times of Figure 2."""
        return [
            sum(self.client_stage),
            sum(self.link_stage),
            sum(self.server_stage),
        ]
