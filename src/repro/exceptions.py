"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the broad failure classes below.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CryptoError",
    "KeyGenerationError",
    "EncryptionError",
    "DecryptionError",
    "KeyMismatchError",
    "ParameterError",
    "ProtocolError",
    "PrivacyViolationError",
    "ChannelError",
    "DatabaseError",
    "CircuitError",
    "OTError",
    "GarblingError",
    "CalibrationError",
    "TransportError",
    "TransportTimeout",
    "RetryExhausted",
    "SessionResumeError",
    "ValidationError",
    "PolicyViolation",
    "ServerBusy",
    "StoreError",
    "SupervisorError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyGenerationError(CryptoError):
    """Raised when key generation cannot produce a valid key pair."""


class EncryptionError(CryptoError):
    """Raised when a plaintext cannot be encrypted (e.g. out of range)."""


class DecryptionError(CryptoError):
    """Raised when a ciphertext cannot be decrypted or fails validation."""


class KeyMismatchError(CryptoError):
    """Raised when ciphertexts under different keys are combined."""


class ParameterError(ReproError):
    """Raised for invalid protocol or model parameters."""


class ProtocolError(ReproError):
    """Raised when a protocol run violates its own message contract."""


class PrivacyViolationError(ProtocolError):
    """Raised by privacy auditors when a transcript leaks forbidden data."""


class ChannelError(ReproError):
    """Raised for misuse of the simulated network channel."""


class DatabaseError(ReproError):
    """Raised for invalid database contents or out-of-range queries."""


class CircuitError(ReproError):
    """Raised for malformed boolean circuits."""


class OTError(ReproError):
    """Raised when an oblivious-transfer exchange fails."""


class GarblingError(ReproError):
    """Raised when garbled-circuit generation or evaluation fails."""


class CalibrationError(ReproError):
    """Raised when a hardware profile cannot be fitted to measurements."""


class TransportError(ReproError):
    """Raised when a byte transport fails (connection refused, reset, ...)."""


class TransportTimeout(TransportError):
    """Raised when a transport operation exceeds its deadline."""


class RetryExhausted(TransportError):
    """Raised when a bounded retry policy gives up.

    The last underlying failure is chained as ``__cause__``.
    """


class SessionResumeError(ProtocolError):
    """Raised when a session cannot be resumed (wrong wire version, ...)."""


class ValidationError(ProtocolError):
    """Raised when untrusted wire input fails a trust-boundary check.

    Covers cryptographic sanity (a public modulus that is even or out of
    its announced bit range, a ciphertext outside Z*_{n^2}) as well as
    structurally well-formed frames whose *contents* cannot be honest.
    A :class:`ProtocolError` subclass so existing handlers keep working,
    but distinguishable for accounting and typed ERROR frames.
    """


class PolicyViolation(ValidationError):
    """Raised when input exceeds a configured :class:`ServerPolicy` limit.

    The input may be internally consistent — it is simply larger, longer,
    or weaker than this server is willing to process (key bits outside
    the accepted range, per-session byte quota exhausted, too many
    chunks, ...).
    """


class ServerBusy(TransportError):
    """Raised client-side when the server sheds the connection with BUSY.

    A :class:`TransportError` subclass deliberately: load shedding is a
    transient condition, so :func:`~repro.spfe.session.run_resilient`
    retries it — under the *busy* schedule of its
    :class:`~repro.net.transport.RetryPolicy`, which backs off longer
    than the plain transport-failure schedule so a shed fleet re-enters
    gently instead of hammering a saturated server.

    ``retry_after_ms`` carries the server's retry hint from the BUSY
    frame (0 when the server sent none); the busy backoff schedule
    never sleeps less than it.
    """

    def __init__(self, message: str, retry_after_ms: int = 0) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class StoreError(ReproError):
    """Raised when the persistent state store cannot be opened or used.

    Covers SQLite-level failures (corrupt file, locked database), a
    schema newer than this code, and malformed persisted records.
    """


class SupervisorError(ReproError):
    """Raised when the server supervisor cannot (re)start its child."""
