"""The private selected-sum protocol — paper §2, Figure 1.

The client holds a weight vector ``I`` (0/1 for plain selection, larger
integers for weighted sums); the server holds the database ``x``.

1. The client encrypts its weights under its own Paillier key and sends
   ``E(I_1), ..., E(I_n)`` to the server.
2. The server computes ``v = prod_i E(I_i)^{x_i} mod n^2`` — by the
   homomorphic property, ``v = E(sum_i I_i * x_i)`` — touching *every*
   element (anything less would leak information about the selection).
3. The server returns ``v``; the client decrypts the sum.

Client privacy: the server sees only semantically secure ciphertexts.
Database privacy: the client receives only an encryption of the sum.

This module implements the *unoptimized* version measured in Figures 2
and 3: the client encrypts the whole vector, then ships it (one framed
message per ciphertext, as a 2004 socket implementation would), then the
server computes, then replies.  No phase overlaps — which is exactly why
the optimizations of §3.2–§3.5 (sibling modules) pay off.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.crypto.scheme import SchemeKeyPair
from repro.datastore.database import ServerDatabase
from repro.spfe.base import (
    MSG_ENC_INDEX,
    MSG_PUBLIC_KEY,
    MSG_RESULT,
    SelectedSumBase,
)
from repro.spfe.context import CLIENT, SERVER, ExecutionContext
from repro.spfe.result import SumRunResult
from repro.timing.clock import VirtualClock
from repro.timing.costmodel import Op
from repro.timing.report import TimingBreakdown

__all__ = ["SelectedSumProtocol", "private_selected_sum"]


class SelectedSumProtocol(SelectedSumBase):
    """The plain (unoptimized) client/server protocol of Figure 1."""

    protocol_name = "plain"

    def run(
        self,
        database: ServerDatabase,
        selection: Sequence[int],
        keypair: Optional[SchemeKeyPair] = None,
    ) -> SumRunResult:
        """Execute the protocol end to end.

        Args:
            database: the server's data.
            selection: the client's weight vector (0/1 for plain sums).
            keypair: reuse an existing key pair (key generation is
                one-time in practice and excluded from the paper's
                component timings; pass None to generate and have the
                time recorded in ``metadata["keygen_s"]``).

        Returns:
            :class:`~repro.spfe.result.SumRunResult` with the sum and the
            component breakdown of Figures 2/3.
        """
        ctx = self.ctx
        scheme = ctx.scheme
        m = self.validate_inputs(database, selection)

        keygen_s = 0.0
        if keypair is None:
            keypair, keygen_s = ctx.generate_keypair(CLIENT)
        public, private = keypair.public, keypair.private
        self.check_capacity(database, selection, public)

        channel = ctx.new_channel()
        client_clock = VirtualClock()
        server_clock = VirtualClock()

        # Client announces its public key (tiny, one-time).
        t_pk = channel.client_send(self.public_key_message(public), client_clock.now)
        server_clock.wait_until(t_pk)
        channel.server_recv()

        # Phase 1 — client encrypts its whole weight vector.
        with ctx.compute(CLIENT, Op.ENCRYPT, len(selection)) as enc_block:
            ciphertexts = scheme.encrypt_vector(public, selection, ctx.rng)
        client_clock.advance(enc_block.seconds)

        # Phase 2 — ship every ciphertext (one framed message each).
        send_started = client_clock.now
        last_arrival = send_started
        for ct in ciphertexts:
            message = self.ciphertext_message(MSG_ENC_INDEX, ct, public, CLIENT)
            last_arrival = channel.client_send(message, client_clock.now)
        comm_up_s = last_arrival - send_started
        server_clock.wait_until(last_arrival)

        received = [channel.server_recv()[0].payload for _ in ciphertexts]

        # Phase 3 — the server's single pass: v = prod E(I_i)^{x_i}.
        with ctx.compute(SERVER, Op.WEIGHTED_STEP, len(database)) as srv_block:
            aggregate = scheme.weighted_product(public, received, database.values)
        server_clock.advance(srv_block.seconds)

        # Phase 4 — return the (single) encrypted sum.
        result_message = self.ciphertext_message(MSG_RESULT, aggregate, public, SERVER)
        reply_started = server_clock.now
        arrival = channel.server_send(result_message, server_clock.now)
        comm_down_s = arrival - reply_started
        client_clock.wait_until(arrival)
        payload = channel.client_recv()[0].payload

        # Phase 5 — client decrypts the sum.
        with ctx.compute(CLIENT, Op.DECRYPT, 1) as dec_block:
            value = scheme.decrypt(private, payload)
        client_clock.advance(dec_block.seconds)

        breakdown = TimingBreakdown(
            client_encrypt_s=enc_block.seconds,
            server_compute_s=srv_block.seconds,
            communication_s=comm_up_s + comm_down_s,
            client_decrypt_s=dec_block.seconds,
        )
        return self.build_result(
            value=value,
            database=database,
            m=m,
            breakdown=breakdown,
            makespan_s=client_clock.now,
            channel=channel,
            metadata={"keygen_s": keygen_s, "channel": channel},
        )


def private_selected_sum(
    database: ServerDatabase,
    selection: Sequence[int],
    context: Optional[ExecutionContext] = None,
) -> SumRunResult:
    """One-call convenience wrapper around :class:`SelectedSumProtocol`.

    >>> from repro.datastore import ServerDatabase
    >>> db = ServerDatabase([17, 4, 23, 8, 15])
    >>> private_selected_sum(db, [1, 0, 1, 0, 1]).value
    55
    """
    return SelectedSumProtocol(context).run(database, selection)
