"""The paper's contribution: selective private function evaluation
protocols for private statistics over a remote database.

Protocol family (one module per paper section):

* :class:`SelectedSumProtocol` — the plain protocol (§2, Figure 1).
* :class:`BatchedSelectedSumProtocol` — pipeline batching (§3.2).
* :class:`PreprocessedSelectedSumProtocol` — offline encryption (§3.3).
* :class:`CombinedSelectedSumProtocol` — both (§3.4).
* :class:`MultiClientSelectedSumProtocol` — k blinded clients (§3.5).
* :class:`PrivateStatisticsClient` — means/variances/weighted averages (§1).
* baselines, the privacy/performance tradeoff (§4 future work), and PIR.
"""

from repro.spfe.base import SelectedSumBase
from repro.spfe.baselines import (
    DownloadDatabaseProtocol,
    NonPrivateIndexProtocol,
    YaoBaselineProtocol,
)
from repro.spfe.batching import PAPER_BATCH_SIZE, BatchedSelectedSumProtocol
from repro.spfe.combined import CombinedSelectedSumProtocol
from repro.spfe.context import CLIENT, SERVER, ExecutionContext
from repro.spfe.estimator import CostEstimate, ProtocolCostEstimator
from repro.spfe.grouped import GroupedSumProtocol, GroupedSumResult, group_means
from repro.spfe.multiclient import PAPER_CLIENT_COUNT, MultiClientSelectedSumProtocol
from repro.spfe.multidatabase import DistributedSelectedSumProtocol
from repro.spfe.pir import LinearPIRProtocol, SquareRootPIRProtocol
from repro.spfe.planner import ProtocolPlanner, QueryPlan
from repro.spfe.preprocessing import EncryptionPool, PreprocessedSelectedSumProtocol
from repro.spfe.privacy import (
    audit_client_privacy,
    audit_database_privacy,
    audit_result,
)
from repro.spfe.result import SumRunResult
from repro.spfe.selected_sum import SelectedSumProtocol, private_selected_sum
from repro.spfe.session import (
    ClientSession,
    ServerSession,
    SessionRegistry,
    run_over_transport,
    run_resilient,
    run_sessions_in_memory,
    serve_over_transport,
)
from repro.spfe.statistics import (
    PrivateStatisticsClient,
    StatisticResult,
    elementwise_product,
)
from repro.spfe.table_client import PrivateTableClient
from repro.spfe.tradeoff import PartialPrivacySumProtocol
from repro.spfe.validation import (
    ServerPolicy,
    check_ciphertext,
    check_hello,
    check_public_key,
    resume_state_bytes,
)

__all__ = [
    "BatchedSelectedSumProtocol",
    "CLIENT",
    "ClientSession",
    "CostEstimate",
    "DistributedSelectedSumProtocol",
    "CombinedSelectedSumProtocol",
    "DownloadDatabaseProtocol",
    "EncryptionPool",
    "ExecutionContext",
    "GroupedSumProtocol",
    "GroupedSumResult",
    "LinearPIRProtocol",
    "MultiClientSelectedSumProtocol",
    "NonPrivateIndexProtocol",
    "PAPER_BATCH_SIZE",
    "PAPER_CLIENT_COUNT",
    "PartialPrivacySumProtocol",
    "PreprocessedSelectedSumProtocol",
    "PrivateStatisticsClient",
    "PrivateTableClient",
    "ProtocolCostEstimator",
    "ProtocolPlanner",
    "QueryPlan",
    "SERVER",
    "SelectedSumBase",
    "SelectedSumProtocol",
    "ServerPolicy",
    "ServerSession",
    "SessionRegistry",
    "SquareRootPIRProtocol",
    "StatisticResult",
    "SumRunResult",
    "YaoBaselineProtocol",
    "audit_client_privacy",
    "check_ciphertext",
    "check_hello",
    "check_public_key",
    "resume_state_bytes",
    "audit_database_privacy",
    "audit_result",
    "elementwise_product",
    "group_means",
    "private_selected_sum",
    "run_over_transport",
    "run_resilient",
    "run_sessions_in_memory",
    "serve_over_transport",
]
