"""Trust-boundary validation for the server side of the wire protocol.

The server holds the sensitive database and answers arbitrary TCP
peers, so every byte it receives is untrusted.  The frame codec already
rejects *malformed* input (bad magic, CRC, lengths); this module rejects
*well-formed but hostile* input — keys and ciphertexts that parse fine
yet cannot have come from an honest client, and inputs that are honest
in shape but exceed what this server is willing to spend on one peer.

Two kinds of check, surfacing as two exception types:

* :class:`~repro.exceptions.ValidationError` — cryptographic sanity at
  the trust boundary.  A Paillier modulus must be odd, greater than 1,
  and inside its announced bit range; a ciphertext must lie in
  Z*_{n^2}, i.e. ``0 < c < n^2`` *and* ``gcd(c, n) == 1`` (a ciphertext
  sharing a factor with n is never produced by honest encryption, and
  folding one into the aggregate would corrupt the sum for free).
* :class:`~repro.exceptions.PolicyViolation` — resource limits from a
  :class:`ServerPolicy`: accepted key sizes, frame/payload caps,
  per-session chunk and byte quotas, and registry residency budgets.

:class:`ServerPolicy` is a frozen dataclass so a policy can be shared
across all connections of a :class:`~repro.net.server.SpfeServer`
without locking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.ntheory import bytes_for_bits
from repro.exceptions import ParameterError, PolicyViolation, ValidationError

__all__ = [
    "ServerPolicy",
    "check_public_key",
    "check_ciphertext",
    "check_hello",
    "resume_state_bytes",
]

#: Slack allowed between the announced key size and the actual modulus
#: bit length: two random (bits/2)-bit primes can multiply to a modulus
#: one bit short of the target.
_KEY_BITS_SLACK = 8


@dataclass(frozen=True)
class ServerPolicy:
    """Resource and crypto-parameter limits for one server.

    Attributes:
        min_key_bits: smallest Paillier modulus accepted.  Tiny keys are
            trivially factorable and make the worst-case-sum capacity
            check meaningless; tests run at 128.
        max_key_bits: largest modulus accepted — bounds the CPU one
            connection can demand per ciphertext.
        max_frame_payload: largest frame payload parsed; anything bigger
            is rejected before it is buffered whole.
        max_chunks: most ENC_CHUNK frames one session may announce
            (``ceil(database_size / chunk_size)``), bounding per-session
            frame count independently of byte volume.
        max_session_bytes: inbound byte quota for one session, resumes
            included.  An honest session needs HELLO + key + one
            ciphertext per element; the default is sized for the paper's
            512-bit keys at n = 100k with generous headroom.
        max_registry_sessions: resume-state count bound (LRU evicted).
        max_registry_bytes: resume-state *residency* bound in bytes —
            session count alone does not bound memory when key sizes
            vary, see :func:`resume_state_bytes`.
    """

    min_key_bits: int = 64
    max_key_bits: int = 4096
    max_frame_payload: int = 4 * 1024 * 1024
    max_chunks: int = 1 << 16
    max_session_bytes: int = 64 * 1024 * 1024
    max_registry_sessions: int = 64
    max_registry_bytes: int = 8 * 1024 * 1024

    def __post_init__(self) -> None:
        """Validate the knobs against each other."""
        if not 0 < self.min_key_bits <= self.max_key_bits:
            raise ParameterError(
                "need 0 < min_key_bits <= max_key_bits, got %d..%d"
                % (self.min_key_bits, self.max_key_bits)
            )
        for name in (
            "max_frame_payload",
            "max_chunks",
            "max_session_bytes",
            "max_registry_sessions",
            "max_registry_bytes",
        ):
            if getattr(self, name) < 1:
                raise ParameterError("%s must be positive" % name)
        if self.max_frame_payload > self.max_session_bytes:
            raise ParameterError(
                "max_frame_payload exceeds the whole session byte quota"
            )


def check_hello(
    key_bits: int, database_size: int, chunk_size: int, policy: ServerPolicy
) -> None:
    """Validate HELLO parameters against ``policy``.

    Raises :class:`~repro.exceptions.PolicyViolation` for out-of-policy
    values, :class:`~repro.exceptions.ValidationError` for values no
    honest client can send (zero chunk size).
    """
    if chunk_size < 1:
        raise ValidationError("chunk size must be positive, got %d" % chunk_size)
    if not policy.min_key_bits <= key_bits <= policy.max_key_bits:
        raise PolicyViolation(
            "key size %d outside accepted range %d..%d"
            % (key_bits, policy.min_key_bits, policy.max_key_bits)
        )
    chunks = (database_size + chunk_size - 1) // chunk_size
    if chunks > policy.max_chunks:
        raise PolicyViolation(
            "%d chunks of %d elements exceeds the %d-chunk session limit"
            % (chunks, chunk_size, policy.max_chunks)
        )


def check_public_key(n: int, announced_bits: int) -> None:
    """Cryptographic sanity for an untrusted Paillier modulus.

    The modulus must be > 1, odd (a product of two odd primes always
    is; an even n is never a valid key), and within the announced bit
    range — larger would silently inflate every downstream buffer,
    much smaller means the capacity check in HELLO was a lie.
    """
    if n <= 1:
        raise ValidationError("public modulus must exceed 1, got %d" % n)
    if n % 2 == 0:
        raise ValidationError("public modulus is even; not a product of odd primes")
    bits = n.bit_length()
    if bits > announced_bits:
        raise ValidationError(
            "modulus has %d bits but %d were announced" % (bits, announced_bits)
        )
    if bits < announced_bits - _KEY_BITS_SLACK:
        raise ValidationError(
            "modulus has %d bits, far below the announced %d"
            % (bits, announced_bits)
        )


def check_ciphertext(ciphertext: int, n: int, nsquare: int) -> None:
    """Membership check for an untrusted ciphertext: c in Z*_{n^2}.

    ``0 < c < n^2`` keeps the aggregate arithmetic well-defined;
    ``gcd(c, n) == 1`` rejects values no honest encryption produces
    (``E(m; r) = (1+mn) r^n`` is always coprime to n when gcd(r, n)=1 —
    a non-coprime c either leaks a factor of n or poisons the sum).
    """
    if not 0 < ciphertext < nsquare:
        raise ValidationError("ciphertext outside Z*_{n^2}")
    if math.gcd(ciphertext, n) != 1:
        raise ValidationError("ciphertext shares a factor with the modulus")


def resume_state_bytes(key_bits: int) -> int:
    """Resident bytes one resume state costs the registry.

    Dominated by three big integers of ciphertext width — the cached
    modulus, its square, and the running aggregate — so the registry can
    budget memory in bytes rather than pretending all sessions are the
    same size.
    """
    return 3 * bytes_for_bits(2 * key_bits)
