"""Protocol selection: pick the cheapest variant for a query, analytically.

The paper evaluates four single-client variants whose relative merit
depends on the deployment: preprocessing needs offline time and client
storage; batching needs a streaming-capable server; multi-client needs
cooperating peers.  :class:`ProtocolPlanner` encodes those constraints,
prices every admissible variant with the closed-form estimator, and
returns a ranked plan — the query-optimizer shape of the decision the
paper's §3 explores by experiment.

    >>> from repro.experiments.environments import short_distance
    >>> planner = ProtocolPlanner(short_distance.context())
    >>> plan = planner.plan(n=100_000, allow_preprocessing=True)
    >>> plan.best.protocol
    'combined'
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.exceptions import ParameterError
from repro.spfe.batching import PAPER_BATCH_SIZE
from repro.spfe.context import ExecutionContext
from repro.spfe.estimator import CostEstimate, ProtocolCostEstimator

__all__ = ["QueryPlan", "ProtocolPlanner"]


@dataclass
class QueryPlan:
    """Ranked protocol choices for one query."""

    n: int
    candidates: List[CostEstimate] = field(default_factory=list)
    rejected: List[str] = field(default_factory=list)

    @property
    def best(self) -> CostEstimate:
        if not self.candidates:
            raise ParameterError("no admissible protocol for these constraints")
        return self.candidates[0]

    def ranking(self) -> List[str]:
        """Protocol names, cheapest online runtime first."""
        return [estimate.protocol for estimate in self.candidates]

    def explain(self) -> str:
        """Human-readable plan summary."""
        lines = ["query plan for n = %d:" % self.n]
        for rank, estimate in enumerate(self.candidates, start=1):
            lines.append(
                "  %d. %-13s %8.2f min online, %8.1f KB"
                % (
                    rank,
                    estimate.protocol,
                    estimate.online_minutes(),
                    estimate.total_bytes / 1e3,
                )
            )
            offline = estimate.breakdown.offline_precompute_s
            if offline:
                lines[-1] += "  (+%.1f min offline)" % (offline / 60)
        for reason in self.rejected:
            lines.append("  excluded: %s" % reason)
        return "\n".join(lines)


class ProtocolPlanner:
    """Prices the protocol family under deployment constraints."""

    def __init__(self, context: Optional[ExecutionContext] = None) -> None:
        self.ctx = context if context is not None else ExecutionContext()
        self._estimator = ProtocolCostEstimator(self.ctx)

    def plan(
        self,
        n: int,
        allow_preprocessing: bool = True,
        allow_batching: bool = True,
        available_clients: int = 1,
        max_offline_minutes: Optional[float] = None,
        max_client_storage_mb: Optional[float] = None,
        batch_size: int = PAPER_BATCH_SIZE,
    ) -> QueryPlan:
        """Rank admissible variants by online runtime.

        Args:
            n: database size.
            allow_preprocessing: client can precompute offline (§3.3).
            allow_batching: server supports streamed chunks (§3.2).
            available_clients: cooperating clients (>=2 enables §3.5).
            max_offline_minutes: budget for offline precomputation.
            max_client_storage_mb: budget for the encryption pool
                (2n ciphertexts).
            batch_size: chunk size for the pipelined variants.
        """
        if n < 1:
            raise ParameterError("database size must be positive")
        plan = QueryPlan(n=n)
        estimator = self._estimator

        plan.candidates.append(estimator.plain(n))
        if allow_batching:
            plan.candidates.append(estimator.batched(n, batch_size))
        else:
            plan.rejected.append("batched/combined: server cannot stream chunks")

        preprocessing_ok = allow_preprocessing
        if preprocessing_ok and max_offline_minutes is not None:
            offline_minutes = (
                estimator.preprocessed(n).breakdown.offline_precompute_s / 60
            )
            if offline_minutes > max_offline_minutes:
                preprocessing_ok = False
                plan.rejected.append(
                    "preprocessed/combined: offline phase needs %.1f min "
                    "(budget %.1f)" % (offline_minutes, max_offline_minutes)
                )
        if preprocessing_ok and max_client_storage_mb is not None:
            pool_mb = 2 * n * self._pool_ciphertext_bytes() / 1e6
            if pool_mb > max_client_storage_mb:
                preprocessing_ok = False
                plan.rejected.append(
                    "preprocessed/combined: pool needs %.1f MB "
                    "(budget %.1f)" % (pool_mb, max_client_storage_mb)
                )
        if not allow_preprocessing:
            plan.rejected.append("preprocessed/combined: no offline phase allowed")

        if preprocessing_ok:
            plan.candidates.append(estimator.preprocessed(n))
            if allow_batching:
                plan.candidates.append(estimator.combined(n, batch_size))

        if available_clients >= 2:
            plan.candidates.append(estimator.multiclient(n, available_clients))
        elif available_clients != 1:
            raise ParameterError("available_clients must be >= 1")

        plan.candidates.sort(key=lambda estimate: estimate.makespan_s)
        return plan

    def _pool_ciphertext_bytes(self) -> int:
        from repro.crypto.serialization import ciphertext_bytes

        return ciphertext_bytes(self.ctx.key_bits)
