"""Single-pass batching with pipeline parallelism — paper §3.2.

Both the client's encryption and the server's product are single-pass,
so the client can process its index vector in chunks, sending each chunk
as soon as it is encrypted; the server folds each chunk into its partial
product on arrival.  Three activities overlap: encryption of chunk
*i+1*, transfer of chunk *i*, server processing of chunk *i-1*.

Side benefits the paper notes: bounded memory on both sides (one chunk
at a time), and — in our wire accounting — far fewer framed messages
(one per chunk instead of one per element).

The paper uses a batch size of 100 and reports ~10 % overall-runtime
reduction on the cluster; since client encryption dominates there, the
pipeline's makespan approaches the encryption total, and the ~10 % saved
is the communication + server time that now overlaps it.  The batch-size
ablation bench sweeps this parameter (the paper: "the optimal chunk size
will depend on the relative communication and computation speeds").
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.crypto.scheme import SchemeKeyPair
from repro.datastore.database import ServerDatabase
from repro.exceptions import ParameterError
from repro.spfe.base import MSG_ENC_INDEX, MSG_RESULT, SelectedSumBase
from repro.spfe.context import CLIENT, SERVER
from repro.spfe.result import SumRunResult
from repro.timing.clock import VirtualClock
from repro.timing.costmodel import Op
from repro.timing.report import TimingBreakdown

__all__ = ["BatchedSelectedSumProtocol", "PAPER_BATCH_SIZE"]

PAPER_BATCH_SIZE = 100  # "we took a batch size of 100 elements" (§3.2)


class BatchedSelectedSumProtocol(SelectedSumBase):
    """The pipelined chunked variant of the selected-sum protocol."""

    protocol_name = "batched"

    def __init__(self, context=None, batch_size: int = PAPER_BATCH_SIZE) -> None:
        super().__init__(context)
        if batch_size < 1:
            raise ParameterError("batch size must be positive")
        self.batch_size = batch_size

    def run(
        self,
        database: ServerDatabase,
        selection: Sequence[int],
        keypair: Optional[SchemeKeyPair] = None,
    ) -> SumRunResult:
        """Execute the pipelined protocol (see the class docstring)."""
        ctx = self.ctx
        scheme = ctx.scheme
        m = self.validate_inputs(database, selection)

        keygen_s = 0.0
        if keypair is None:
            keypair, keygen_s = ctx.generate_keypair(CLIENT)
        public, private = keypair.public, keypair.private
        self.check_capacity(database, selection, public)

        channel = ctx.new_channel()
        client_clock = VirtualClock()
        server_clock = VirtualClock()

        t_pk = channel.client_send(self.public_key_message(public), client_clock.now)
        server_clock.wait_until(t_pk)
        channel.server_recv()
        comm_s = t_pk  # pk transfer time (sender started at 0)

        encrypt_s = 0.0
        server_s = 0.0
        aggregate = scheme.identity(public)

        # The pipeline: encrypt chunk -> ship chunk -> fold chunk.
        for offset, values in database.chunks(self.batch_size):
            weights = selection[offset : offset + len(values)]

            with ctx.compute(CLIENT, Op.ENCRYPT, len(weights)) as enc_block:
                chunk_cts = scheme.encrypt_vector(public, weights, ctx.rng)
            client_clock.advance(enc_block.seconds)
            encrypt_s += enc_block.seconds

            message = self.vector_message(MSG_ENC_INDEX, chunk_cts, public, CLIENT)
            sent_at = client_clock.now
            arrival = channel.client_send(message, sent_at)
            comm_s += self._marginal_transfer(message.wire_bytes)

            server_clock.wait_until(arrival)
            received = channel.server_recv()[0].payload
            with ctx.compute(SERVER, Op.WEIGHTED_STEP, len(values)) as srv_block:
                aggregate = scheme.weighted_product(
                    public, received, values, initial=aggregate
                )
            server_clock.advance(srv_block.seconds)
            server_s += srv_block.seconds

        # Result return + decryption (as in the plain protocol).
        result_message = self.ciphertext_message(MSG_RESULT, aggregate, public, SERVER)
        reply_started = server_clock.now
        arrival = channel.server_send(result_message, server_clock.now)
        comm_s += arrival - reply_started
        client_clock.wait_until(arrival)
        payload = channel.client_recv()[0].payload

        with ctx.compute(CLIENT, Op.DECRYPT, 1) as dec_block:
            value = scheme.decrypt(private, payload)
        client_clock.advance(dec_block.seconds)

        breakdown = TimingBreakdown(
            client_encrypt_s=encrypt_s,
            server_compute_s=server_s,
            communication_s=comm_s,
            client_decrypt_s=dec_block.seconds,
        )
        return self.build_result(
            value=value,
            database=database,
            m=m,
            breakdown=breakdown,
            makespan_s=client_clock.now,
            channel=channel,
            metadata={
                "keygen_s": keygen_s,
                "batch_size": self.batch_size,
                "channel": channel,
            },
        )

    def _marginal_transfer(self, wire_bytes: int) -> float:
        """Link busy time contributed by one message (for the component)."""
        return self.ctx.link.seconds_per_message(wire_bytes)
