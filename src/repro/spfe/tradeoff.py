"""Quantifiable privacy/performance tradeoff — the paper's future work.

§4: "we plan to investigate ... methods that give up some quantifiable
amount of privacy in order to achieve significant performance
improvements."  This module implements the natural such method for the
selected-sum protocol:

Instead of encrypting an index bit for *every* database element, the
client reveals (in the clear) a **superset** T of its true selection S —
padded with decoys — and runs the private protocol only over T.  Costs
scale with |T| = s instead of n; what is given up is exactly "the
selection is hidden within T" rather than "within the whole database".

The privacy loss is quantifiable, and we quantify it:

* **anonymity ratio** ``m / s`` — the server's posterior probability
  that a given member of T is truly selected (uniform decoys);
* **candidate-set shrinkage** ``s / n`` — how much of the database the
  server can rule out.

With ``s = n`` this degenerates to the fully private protocol; with
``s = m`` it degenerates to the non-private send-indices baseline.  The
tradeoff bench sweeps the full curve.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.crypto.serialization import FRAME_HEADER_BYTES
from repro.datastore.database import ServerDatabase
from repro.exceptions import ParameterError
from repro.net.wire import Message
from repro.spfe.base import MSG_ENC_INDEX, MSG_RESULT, SelectedSumBase
from repro.spfe.context import CLIENT, SERVER
from repro.spfe.result import SumRunResult
from repro.timing.clock import VirtualClock
from repro.timing.costmodel import Op
from repro.timing.report import TimingBreakdown

__all__ = ["PartialPrivacySumProtocol"]

_INDEX_BYTES = 4


class PartialPrivacySumProtocol(SelectedSumBase):
    """Selected sum over a revealed decoy superset.

    Args:
        context: execution context.
        superset_factor: |T| / m — how many decoys per true index
            (>= 1.0; 1.0 means no privacy, n/m means full privacy).
    """

    protocol_name = "partial-privacy"

    def __init__(self, context=None, superset_factor: float = 4.0) -> None:
        super().__init__(context)
        if superset_factor < 1.0:
            raise ParameterError("superset factor must be >= 1")
        self.superset_factor = superset_factor

    def build_superset(
        self, n: int, selection: Sequence[int]
    ) -> List[int]:
        """The revealed candidate set: true indices plus uniform decoys."""
        true_indices = [i for i, w in enumerate(selection) if w]
        m = len(true_indices)
        target = min(n, max(m, int(round(m * self.superset_factor))))
        chosen: Set[int] = set(true_indices)
        while len(chosen) < target:
            chosen.add(self.ctx.rng.randbelow(n))
        return sorted(chosen)

    def run(
        self, database: ServerDatabase, selection: Sequence[int]
    ) -> SumRunResult:
        """Reveal the decoy superset, then run the private sum over it."""
        ctx = self.ctx
        scheme = ctx.scheme
        m = self.validate_inputs(database, selection)
        if any(w not in (0, 1) for w in selection):
            raise ParameterError("partial-privacy protocol needs a 0/1 selection")
        if m == 0:
            raise ParameterError("empty selection")

        keypair, keygen_s = ctx.generate_keypair(CLIENT)
        public, private = keypair.public, keypair.private
        self.check_capacity(database, selection, public)

        superset = self.build_superset(len(database), selection)
        s = len(superset)

        channel = ctx.new_channel()
        client_clock = VirtualClock()
        server_clock = VirtualClock()

        t_pk = channel.client_send(self.public_key_message(public), client_clock.now)
        server_clock.wait_until(t_pk)
        channel.server_recv()

        # The superset travels in the clear — this is the revealed part.
        superset_msg = Message(
            "candidate-set",
            tuple(superset),
            s * _INDEX_BYTES + FRAME_HEADER_BYTES,
            CLIENT,
        )
        arrival = channel.client_send(superset_msg, client_clock.now)
        comm_s = arrival - client_clock.now + t_pk
        server_clock.wait_until(arrival)
        channel.server_recv()

        # Private protocol over the s candidates only.
        sub_selection = [selection[i] for i in superset]
        with ctx.compute(CLIENT, Op.ENCRYPT, s) as enc_block:
            ciphertexts = scheme.encrypt_vector(public, sub_selection, ctx.rng)
        client_clock.advance(enc_block.seconds)

        send_started = client_clock.now
        last_arrival = send_started
        for ct in ciphertexts:
            msg = self.ciphertext_message(MSG_ENC_INDEX, ct, public, CLIENT)
            last_arrival = channel.client_send(msg, client_clock.now)
        comm_s += last_arrival - send_started
        server_clock.wait_until(last_arrival)
        received = [channel.server_recv()[0].payload for _ in ciphertexts]

        sub_values = [database[i] for i in superset]
        with ctx.compute(SERVER, Op.WEIGHTED_STEP, s) as srv_block:
            aggregate = scheme.weighted_product(public, received, sub_values)
        server_clock.advance(srv_block.seconds)

        result_msg = self.ciphertext_message(MSG_RESULT, aggregate, public, SERVER)
        reply_started = server_clock.now
        arrival = channel.server_send(result_msg, server_clock.now)
        comm_s += arrival - reply_started
        client_clock.wait_until(arrival)
        payload = channel.client_recv()[0].payload

        with ctx.compute(CLIENT, Op.DECRYPT, 1) as dec_block:
            value = scheme.decrypt(private, payload)
        client_clock.advance(dec_block.seconds)

        breakdown = TimingBreakdown(
            client_encrypt_s=enc_block.seconds,
            server_compute_s=srv_block.seconds,
            communication_s=comm_s,
            client_decrypt_s=dec_block.seconds,
        )
        return self.build_result(
            value=value,
            database=database,
            m=m,
            breakdown=breakdown,
            makespan_s=client_clock.now,
            channel=channel,
            metadata={
                "keygen_s": keygen_s,
                "superset_size": s,
                "anonymity_ratio": m / s,
                "candidate_fraction": s / len(database),
                "leaks": ["candidate-superset"],
                "channel": channel,
            },
        )
