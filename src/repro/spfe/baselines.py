"""Baseline protocols — the paper's §2 comparison points.

Two *trivial but non-private* solutions frame the problem:

* **send-indices**: the client ships its m indices in the clear; the
  server sums and replies.  Nearly free, but the server learns the
  client's entire selection (client privacy violated).
* **download-database**: the server ships the whole database; the client
  sums locally.  Client privacy is perfect, but the client learns every
  element (database privacy violated).

And one *private but generic* solution:

* **Yao garbled circuits** (Fairplay-style), wrapped from
  :mod:`repro.yao` — private in both directions but with a cost profile
  that is impractical at database scale (≥15 minutes at n = 100 on 2004
  hardware, per the paper's quote [16]).

Each baseline returns the same :class:`~repro.spfe.result.SumRunResult`
shape as the real protocols, with ``metadata["leaks"]`` stating exactly
what privacy it gives up — the tests assert these flags, and the benches
print them alongside the timings.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.crypto.serialization import FRAME_HEADER_BYTES
from repro.datastore.database import ServerDatabase
from repro.net.wire import Message
from repro.spfe.base import SelectedSumBase
from repro.spfe.context import CLIENT, SERVER
from repro.spfe.result import SumRunResult
from repro.timing.clock import VirtualClock
from repro.timing.costmodel import Op
from repro.timing.report import TimingBreakdown

__all__ = [
    "NonPrivateIndexProtocol",
    "DownloadDatabaseProtocol",
    "YaoBaselineProtocol",
]

_INDEX_BYTES = 4  # a 32-bit index on the wire
_SUM_BYTES = 8


class NonPrivateIndexProtocol(SelectedSumBase):
    """Client sends indices in the clear; leaks the selection."""

    protocol_name = "baseline-send-indices"

    def run(
        self, database: ServerDatabase, selection: Sequence[int]
    ) -> SumRunResult:
        """Send the indices in the clear; the server sums and replies."""
        ctx = self.ctx
        m = self.validate_inputs(database, selection)
        channel = ctx.new_channel()
        client_clock = VirtualClock()
        server_clock = VirtualClock()

        indices = [i for i, w in enumerate(selection) if w]
        request = Message(
            "plain-indices",
            tuple(indices),
            len(indices) * _INDEX_BYTES + FRAME_HEADER_BYTES,
            CLIENT,
        )
        sent = client_clock.now
        arrival = channel.client_send(request, sent)
        comm_s = arrival - sent
        server_clock.wait_until(arrival)
        payload = channel.server_recv()[0].payload

        with ctx.compute(SERVER, Op.PLAIN_ADD, len(payload)) as srv_block:
            total = sum(database[i] * selection[i] for i in payload)
        server_clock.advance(srv_block.seconds)

        reply = Message("plain-sum", total, _SUM_BYTES + FRAME_HEADER_BYTES, SERVER)
        reply_sent = server_clock.now
        arrival = channel.server_send(reply, reply_sent)
        comm_s += arrival - reply_sent
        client_clock.wait_until(arrival)
        value = channel.client_recv()[0].payload

        breakdown = TimingBreakdown(
            server_compute_s=srv_block.seconds, communication_s=comm_s
        )
        return self.build_result(
            value=value,
            database=database,
            m=m,
            breakdown=breakdown,
            makespan_s=client_clock.now,
            channel=channel,
            metadata={"leaks": ["client-selection"], "channel": channel},
        )


class DownloadDatabaseProtocol(SelectedSumBase):
    """Server ships the whole database; leaks every element."""

    protocol_name = "baseline-download"

    def run(
        self, database: ServerDatabase, selection: Sequence[int]
    ) -> SumRunResult:
        """Fetch the whole database; the client sums locally."""
        ctx = self.ctx
        m = self.validate_inputs(database, selection)
        channel = ctx.new_channel()
        client_clock = VirtualClock()
        server_clock = VirtualClock()

        element_bytes = (database.value_bits + 7) // 8
        request = Message("fetch-all", None, FRAME_HEADER_BYTES, CLIENT)
        arrival = channel.client_send(request, client_clock.now)
        comm_s = arrival
        server_clock.wait_until(arrival)
        channel.server_recv()

        dump = Message(
            "database-dump",
            database.values,
            len(database) * element_bytes + FRAME_HEADER_BYTES,
            SERVER,
        )
        dump_sent = server_clock.now
        arrival = channel.server_send(dump, dump_sent)
        comm_s += arrival - dump_sent
        client_clock.wait_until(arrival)
        values = channel.client_recv()[0].payload

        with ctx.compute(CLIENT, Op.PLAIN_ADD, len(values)) as sum_block:
            value = sum(w * x for w, x in zip(selection, values))
        client_clock.advance(sum_block.seconds)

        breakdown = TimingBreakdown(communication_s=comm_s)
        return self.build_result(
            value=value,
            database=database,
            m=m,
            breakdown=breakdown,
            makespan_s=client_clock.now,
            channel=channel,
            metadata={"leaks": ["entire-database"], "channel": channel},
        )


class YaoBaselineProtocol(SelectedSumBase):
    """The garbled-circuit comparator, adapted to the result shape.

    Runs the *real* garbled-circuit protocol (measured wall clock) and
    reports the modelled 2004-Fairplay runtime alongside, so benches can
    print both "our Python Yao, today" and "the paper's quoted Fairplay"
    for the same n.
    """

    protocol_name = "baseline-yao"

    def __init__(self, context=None, value_bits: Optional[int] = None) -> None:
        super().__init__(context)
        self.value_bits = value_bits

    def run(
        self, database: ServerDatabase, selection: Sequence[int]
    ) -> SumRunResult:
        """Run the real garbled-circuit protocol and adapt its result."""
        from repro.yao.protocol import YaoSelectedSum, fairplay_model_minutes

        m = self.validate_inputs(database, selection)
        bits = self.value_bits if self.value_bits is not None else database.value_bits
        runner = YaoSelectedSum(value_bits=bits, rng=self.ctx.rng)
        yao = runner.run(list(database.values), list(selection))

        comm_s = self.ctx.link.transfer_seconds(yao.total_bytes, messages=len(selection) + 2)
        breakdown = TimingBreakdown(
            client_encrypt_s=yao.ot_s,
            server_compute_s=yao.garble_s,
            communication_s=comm_s,
            client_decrypt_s=yao.evaluate_s,
        )
        return SumRunResult(
            value=yao.value,
            n=len(database),
            m=m,
            breakdown=breakdown,
            makespan_s=yao.total_s + comm_s,
            bytes_up=yao.ot_bytes,
            bytes_down=yao.garbled_bytes,
            messages=len(selection) + 2,
            scheme="yao-garbled-circuit",
            link=self.ctx.link.name,
            protocol=self.protocol_name,
            metadata={
                "leaks": [],
                "gate_count": yao.gate_count,
                "fairplay_model_minutes": fairplay_model_minutes(len(database)),
                "measured": True,
            },
        )
