"""Index-vector preprocessing — paper §3.3.

The client's dominant cost is the n public-key encryptions of its index
bits.  But those encryptions do not depend on anything the client learns
online: "Even if the client does not yet know which indices will be 0
and which will be 1, it can simply encrypt a large number of 0s and a
large number of 1s to use later."  The online phase then just *fetches*
the right stored ciphertexts and ships them.

The paper motivates this for weak devices with ample storage (PDAs) and
reports the online runtime dropping ~82 % on the cluster, with the
server's computation becoming the dominant online component (Figure 5);
over the modem, communication dominates instead (Figure 6).

Security note: each pooled encryption is used at most once.  Reusing a
ciphertext would let the server link equal index positions across
queries (the whole point of randomised encryption is that it cannot do
this for *fresh* encryptions).  :class:`EncryptionPool` enforces
single-use and counts underflows.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.crypto.scheme import AdditiveHomomorphicScheme, SchemeKeyPair
from repro.datastore.database import ServerDatabase
from repro.exceptions import ParameterError, ProtocolError
from repro.spfe.base import MSG_ENC_INDEX, MSG_RESULT, SelectedSumBase
from repro.spfe.context import CLIENT, SERVER
from repro.spfe.result import SumRunResult
from repro.timing.clock import VirtualClock
from repro.timing.costmodel import Op
from repro.timing.report import TimingBreakdown

__all__ = ["EncryptionPool", "PreprocessedSelectedSumProtocol"]


class EncryptionPool:
    """A store of pre-encrypted index bits (0s and 1s), single-use.

    Built offline with :meth:`fill`; consumed online with :meth:`take`.
    ``misses`` counts ciphertexts that had to be encrypted online because
    the pool ran dry — the timing layer charges those at full encryption
    cost, so an undersized pool shows up honestly in results.
    """

    def __init__(
        self,
        scheme: AdditiveHomomorphicScheme,
        public_key: Any,
        rng: Any = None,
        engine: Any = None,
    ) -> None:
        self.scheme = scheme
        self.public_key = public_key
        self._rng = rng
        self.engine = engine
        self._store: Dict[int, List[Any]] = {0: [], 1: []}
        self.misses = 0

    def fill(self, zeros: int, ones: int) -> None:
        """Encrypt and store ``zeros`` 0-bits and ``ones`` 1-bits (offline).

        Runs as two vector encryptions so an attached engine (or an
        engine-backed scheme) can partition the offline phase — the bulk
        of the client's work — across worker processes.
        """
        if zeros < 0 or ones < 0:
            raise ParameterError("pool sizes must be non-negative")
        for bit, count in ((0, zeros), (1, ones)):
            if not count:
                continue
            plaintexts = [bit] * count
            if self.engine is not None and self.engine.supports_key(self.public_key):
                encrypted = self.engine.encrypt_vector(
                    self.public_key, plaintexts, self._rng
                )
            else:
                encrypted = self.scheme.encrypt_vector(
                    self.public_key, plaintexts, self._rng
                )
            self._store[bit].extend(encrypted)

    def take(self, bit: int) -> Any:
        """Pop one stored encryption of ``bit``; encrypt online if dry."""
        if bit not in (0, 1):
            raise ParameterError("pool holds encrypted bits, got %r" % (bit,))
        store = self._store[bit]
        if store:
            return store.pop()
        self.misses += 1
        return self.scheme.encrypt(self.public_key, bit, self._rng)

    def available(self, bit: int) -> int:
        """Stored encryptions left for ``bit``."""
        return len(self._store[bit])


class PreprocessedSelectedSumProtocol(SelectedSumBase):
    """Selected sum with the §3.3 offline-encryption optimization.

    Only 0/1 selections are supported: the preprocessing trick relies on
    the index alphabet being tiny.  (Weighted sums would need a pool per
    weight value; the paper does not pursue that and neither do we.)
    """

    protocol_name = "preprocessed"

    def __init__(
        self,
        context=None,
        pool_zeros: Optional[int] = None,
        pool_ones: Optional[int] = None,
        engine: Any = None,
    ) -> None:
        """``pool_zeros`` / ``pool_ones`` default to the database size —
        enough for any selection, matching the paper's "large number".
        ``engine`` is handed to the :class:`EncryptionPool` so the
        offline fill can fan out across worker processes."""
        super().__init__(context)
        self.pool_zeros = pool_zeros
        self.pool_ones = pool_ones
        self.engine = engine

    def run(
        self,
        database: ServerDatabase,
        selection: Sequence[int],
        keypair: Optional[SchemeKeyPair] = None,
    ) -> SumRunResult:
        """Fill the pool offline, then run the online phase (see class docstring)."""
        ctx = self.ctx
        scheme = ctx.scheme
        m = self.validate_inputs(database, selection)
        if any(w not in (0, 1) for w in selection):
            raise ProtocolError(
                "preprocessing requires a 0/1 selection vector "
                "(pools are per index value)"
            )

        keygen_s = 0.0
        if keypair is None:
            keypair, keygen_s = ctx.generate_keypair(CLIENT)
        public, private = keypair.public, keypair.private
        self.check_capacity(database, selection, public)

        # ---- offline phase: fill the pool before the query exists ----
        zeros = self.pool_zeros if self.pool_zeros is not None else len(database)
        ones = self.pool_ones if self.pool_ones is not None else len(database)
        pool = EncryptionPool(scheme, public, ctx.rng, engine=self.engine)
        with ctx.compute(CLIENT, Op.ENCRYPT, zeros + ones) as off_block:
            pool.fill(zeros, ones)
        offline_s = off_block.seconds

        # ---- online phase -------------------------------------------------
        channel = ctx.new_channel()
        client_clock = VirtualClock()
        server_clock = VirtualClock()

        t_pk = channel.client_send(self.public_key_message(public), client_clock.now)
        server_clock.wait_until(t_pk)
        channel.server_recv()

        with ctx.compute(CLIENT, Op.POOL_FETCH, len(selection)) as fetch_block:
            ciphertexts = [pool.take(bit) for bit in selection]
        client_clock.advance(fetch_block.seconds)
        online_misses = pool.misses
        if online_misses:  # charge dry-pool encryptions at full cost
            with ctx.compute(CLIENT, Op.ENCRYPT, online_misses) as miss_block:
                pass
            client_clock.advance(miss_block.seconds)
            fetch_block.seconds += miss_block.seconds

        send_started = client_clock.now
        last_arrival = send_started
        for ct in ciphertexts:
            message = self.ciphertext_message(MSG_ENC_INDEX, ct, public, CLIENT)
            last_arrival = channel.client_send(message, client_clock.now)
        comm_up_s = last_arrival - send_started
        server_clock.wait_until(last_arrival)
        received = [channel.server_recv()[0].payload for _ in ciphertexts]

        with ctx.compute(SERVER, Op.WEIGHTED_STEP, len(database)) as srv_block:
            aggregate = scheme.weighted_product(public, received, database.values)
        server_clock.advance(srv_block.seconds)

        result_message = self.ciphertext_message(MSG_RESULT, aggregate, public, SERVER)
        reply_started = server_clock.now
        arrival = channel.server_send(result_message, server_clock.now)
        comm_down_s = arrival - reply_started
        client_clock.wait_until(arrival)
        payload = channel.client_recv()[0].payload

        with ctx.compute(CLIENT, Op.DECRYPT, 1) as dec_block:
            value = scheme.decrypt(private, payload)
        client_clock.advance(dec_block.seconds)

        breakdown = TimingBreakdown(
            client_encrypt_s=fetch_block.seconds,  # online client processing
            server_compute_s=srv_block.seconds,
            communication_s=comm_up_s + comm_down_s,
            client_decrypt_s=dec_block.seconds,
            offline_precompute_s=offline_s,
        )
        return self.build_result(
            value=value,
            database=database,
            m=m,
            breakdown=breakdown,
            makespan_s=client_clock.now,
            channel=channel,
            metadata={
                "keygen_s": keygen_s,
                "pool_zeros": zeros,
                "pool_ones": ones,
                "pool_misses": online_misses,
                "channel": channel,
            },
        )
