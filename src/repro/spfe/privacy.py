"""Privacy auditors: transcript-level checks of the paper's §2 requirements.

The paper defines three requirements for a privacy-preserving
client/server computation:

* **Correctness** — checked by ``SumRunResult.verify`` everywhere.
* **Client privacy** — the server must learn nothing about the selection.
* **Database privacy** — the client must learn only the agreed output.

Semantic security itself is a cryptographic assumption, not something a
test can prove; what these auditors *can* verify mechanically is that a
protocol's transcript has the right *shape* to inherit the guarantee:

* the server's view contains only ciphertexts and key material — no
  plaintext integers that correlate with the selection;
* no ciphertext is ever reused (reuse would let the server link equal
  selection bits — the pitfall of a naive §3.3 pool);
* the client's view contains only the single encrypted result (or, in
  the multi-client protocol, one blinded partial sum per client).

The test suite runs every protocol variant through these auditors; the
baselines deliberately fail them (and say so in ``metadata["leaks"]``).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.exceptions import PrivacyViolationError
from repro.net.channel import Channel
from repro.spfe.base import MSG_ENC_INDEX, MSG_PUBLIC_KEY
from repro.spfe.result import SumRunResult

__all__ = [
    "audit_client_privacy",
    "audit_database_privacy",
    "audit_result",
]

_ALLOWED_SERVER_KINDS = {MSG_PUBLIC_KEY, MSG_ENC_INDEX, "fetch-all"}


def _is_plaintext_integer(payload: Any) -> bool:
    """True for payloads that are bare integers (or containers of them).

    Ciphertexts in this library are never bare ints *except* for raw
    Paillier ciphertexts — those are ints, but live in Z_{n^2} and are
    indistinguishable from random; we identify "suspicious" plaintexts
    as small integers (selection bits / indices / weights are all tiny
    compared to 1024-bit ciphertexts).
    """
    suspicion_bound = 1 << 64
    if isinstance(payload, bool):
        return True
    if isinstance(payload, int):
        return payload < suspicion_bound
    if isinstance(payload, (tuple, list)):
        return any(_is_plaintext_integer(item) for item in payload)
    return False


def audit_client_privacy(channel: Channel, selection: Sequence[int]) -> None:
    """Check the server's view leaks nothing about the selection.

    Raises :class:`PrivacyViolationError` if the uplink transcript
    contains plaintext-looking integers, repeats a ciphertext, or sends
    messages whose *count* differs from the full database size (a
    selection-dependent message count is itself a leak).
    """
    enc_messages = [
        m for m in channel.server_view.entries if m.kind == MSG_ENC_INDEX
    ]
    seen = set()
    element_count = 0
    for message in enc_messages:
        payload = message.payload
        items = payload if isinstance(payload, tuple) else (payload,)
        for item in items:
            element_count += 1
            if _is_plaintext_integer(item):
                raise PrivacyViolationError(
                    "server received a plaintext-looking value: %r" % (item,)
                )
            marker = _ciphertext_marker(item)
            if marker in seen:
                raise PrivacyViolationError(
                    "server received a repeated ciphertext — "
                    "equal selection bits would be linkable"
                )
            seen.add(marker)
    if element_count != len(selection):
        raise PrivacyViolationError(
            "server saw %d encrypted elements for a database of %d — "
            "message count depends on the selection" % (element_count, len(selection))
        )
    for message in channel.server_view.entries:
        if message.kind not in _ALLOWED_SERVER_KINDS:
            raise PrivacyViolationError(
                "unexpected message kind in server view: %r" % message.kind
            )


def audit_database_privacy(channel: Channel, expected_results: int = 1) -> None:
    """Check the client's view contains only the encrypted result(s)."""
    entries = channel.client_view.entries
    if len(entries) != expected_results:
        raise PrivacyViolationError(
            "client received %d messages, expected %d (the result only)"
            % (len(entries), expected_results)
        )
    for message in entries:
        if isinstance(message.payload, (tuple, list)):
            raise PrivacyViolationError(
                "client received a vector — the result must be a single value"
            )


def audit_result(result: SumRunResult, selection: Sequence[int]) -> None:
    """Run both audits on a finished protocol run (plain-family only)."""
    channel = result.metadata.get("channel")
    if channel is None:
        raise PrivacyViolationError("run kept no channel to audit")
    if result.metadata.get("leaks"):
        raise PrivacyViolationError(
            "protocol declares leaks: %s" % result.metadata["leaks"]
        )
    audit_client_privacy(channel, selection)
    audit_database_privacy(channel)


def _ciphertext_marker(item: Any) -> Any:
    """A hashable identity for a ciphertext (for reuse detection)."""
    if isinstance(item, int):
        return item
    try:
        hash(item)
        return item
    except TypeError:
        return id(item)
