"""Multiple distributed databases — the extension the paper points at.

§1 of the paper: "This protocol, as well as some of the others of
Canetti et al. [5], can easily be extended to work for multiple
distributed databases."  This module is that extension: the data is
horizontally partitioned across k independent servers, and the client
computes one sum across all of them.

The client encrypts its index vector once (under its own key) and sends
each server the slice covering that server's partition.  Each server
computes its partial product ``E(P_j)``; because all partials are
encrypted under the *same* client key, the client simply multiplies the
k replies — homomorphically adding the partials — and decrypts once.

Two privacy postures for the partials:

* ``hide_partials=False`` (default): the client may decrypt each
  server's reply individually, learning per-server subtotals.  Each
  server's own guarantee ("the client learns only the agreed aggregate
  of *my* data") still holds — this is the natural setting when each
  server is an independent data owner.
* ``hide_partials=True``: the servers jointly insist the client learn
  only the *global* sum.  Server 0 acts as coordinator and distributes
  blinding values R_1..R_k with sum 0 (mod B) over server-to-server
  channels (same statistical-blinding construction as the §3.5
  multi-client protocol, see DESIGN.md §3 substitution 6); each server
  adds E(R_j) before replying, so individual replies decrypt to noise
  while their homomorphic sum is exact.

Timing model: the k client→server transfers and the k server passes
proceed in parallel (independent machines); the client's encryption is
the sequential prefix, as in the plain protocol.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.crypto.ntheory import bytes_for_bits
from repro.crypto.scheme import SchemeKeyPair
from repro.crypto.serialization import FRAME_HEADER_BYTES
from repro.datastore.database import ServerDatabase
from repro.exceptions import ParameterError, ProtocolError
from repro.spfe.base import MSG_ENC_INDEX, MSG_RESULT, SelectedSumBase
from repro.spfe.context import CLIENT, ExecutionContext
from repro.spfe.result import SumRunResult
from repro.timing.clock import VirtualClock
from repro.timing.costmodel import Op
from repro.timing.report import TimingBreakdown

__all__ = ["DistributedSelectedSumProtocol"]

DEFAULT_SIGMA = 40


class DistributedSelectedSumProtocol(SelectedSumBase):
    """One private sum over k horizontally partitioned databases."""

    protocol_name = "multidatabase"

    def __init__(
        self,
        context: Optional[ExecutionContext] = None,
        hide_partials: bool = False,
        sigma: int = DEFAULT_SIGMA,
    ) -> None:
        super().__init__(context)
        if sigma < 1:
            raise ParameterError("sigma must be positive")
        self.hide_partials = hide_partials
        self.sigma = sigma

    def run_distributed(
        self,
        databases: Sequence[ServerDatabase],
        selection: Sequence[int],
        keypair: Optional[SchemeKeyPair] = None,
    ) -> SumRunResult:
        """Compute the selected sum over the concatenation of ``databases``.

        Args:
            databases: one partition per server (at least 2).
            selection: weights over the concatenated index space.
            keypair: optional key reuse, as in the single-server protocols.
        """
        ctx = self.ctx
        scheme = ctx.scheme
        if len(databases) < 2:
            raise ParameterError(
                "distributed protocol needs at least 2 servers; "
                "use SelectedSumProtocol for one"
            )
        value_bits = {db.value_bits for db in databases}
        if len(value_bits) != 1:
            raise ProtocolError("partitions must share a value width")
        total_n = sum(len(db) for db in databases)
        if len(selection) != total_n:
            raise ParameterError(
                "selection length %d != total database size %d"
                % (len(selection), total_n)
            )
        combined = ServerDatabase(
            [v for db in databases for v in db.values],
            value_bits=value_bits.pop(),
        )
        m = self.validate_inputs(combined, selection)

        keygen_s = 0.0
        if keypair is None:
            keypair, keygen_s = ctx.generate_keypair(CLIENT)
        public, private = keypair.public, keypair.private
        self.check_capacity(combined, selection, public)

        blinds = (
            self._blinds(combined, len(databases)) if self.hide_partials else None
        )
        if blinds is not None:
            worst = sum(selection) * (2**combined.value_bits - 1) + len(
                databases
            ) * self._blind_modulus(combined)
            if worst >= scheme.plaintext_modulus(public):
                raise ProtocolError(
                    "blinded distributed sum can wrap the plaintext space"
                )

        channels = [ctx.new_channel() for _ in databases]
        client_clock = VirtualClock()
        server_clocks = [VirtualClock() for _ in databases]

        # Client encrypts the whole vector once.
        with ctx.compute(CLIENT, Op.ENCRYPT, total_n) as enc_block:
            ciphertexts = scheme.encrypt_vector(public, selection, ctx.rng)
        client_clock.advance(enc_block.seconds)

        # Coordinator blinding distribution: server 0 sends each peer its
        # share over server-to-server links (same medium), off the
        # client's channels.  Accounted as communication time + bytes.
        blind_comm_s = 0.0
        blind_bytes = 0
        if blinds is not None:
            share_bytes = (
                bytes_for_bits(self._blind_modulus(combined).bit_length())
                + FRAME_HEADER_BYTES
            )
            for _ in range(1, len(databases)):
                blind_comm_s += ctx.link.seconds_per_message(share_bytes)
                blind_bytes += share_bytes
            blind_comm_s += ctx.link.latency_s

        # Fan out every slice first (the k uplinks run in parallel; the
        # client's sends are free once the ciphertexts exist), then let
        # each server compute, then collect all replies.  The client's
        # clock advances to the *latest* reply arrival, so the makespan
        # reflects genuinely parallel servers.
        server_s = comm_s = 0.0
        fan_out_time = client_clock.now
        reply_arrivals = []
        offset = 0
        for j, database in enumerate(databases):
            channel = channels[j]
            srv_clock = server_clocks[j]

            t_pk = channel.client_send(self.public_key_message(public), fan_out_time)
            srv_clock.wait_until(t_pk)
            channel.server_recv()

            slice_cts = ciphertexts[offset : offset + len(database)]
            last_arrival = fan_out_time
            for ct in slice_cts:
                msg = self.ciphertext_message(MSG_ENC_INDEX, ct, public, CLIENT)
                last_arrival = channel.client_send(msg, fan_out_time)
            comm_s += last_arrival - fan_out_time
            srv_clock.wait_until(last_arrival)
            received = [channel.server_recv()[0].payload for _ in slice_cts]

            with ctx.compute("server", Op.WEIGHTED_STEP, len(database)) as srv_block:
                partial = scheme.weighted_product(public, received, database.values)
            step_s = srv_block.seconds
            if blinds is not None:
                with ctx.compute("server", Op.ENCRYPT, 1) as blind_enc:
                    enc_blind = scheme.encrypt(public, blinds[j], ctx.rng)
                with ctx.compute("server", Op.CIPHER_ADD, 1) as blind_add:
                    partial = scheme.ciphertext_add(public, partial, enc_blind)
                step_s += blind_enc.seconds + blind_add.seconds
            srv_clock.advance(step_s)
            server_s += step_s

            reply = self.ciphertext_message(MSG_RESULT, partial, public, "server")
            reply_started = srv_clock.now
            arrival = channel.server_send(reply, srv_clock.now)
            comm_s += arrival - reply_started
            reply_arrivals.append(arrival)
            offset += len(database)

        client_clock.wait_until(max(reply_arrivals))
        replies = [channel.client_recv()[0].payload for channel in channels]

        # Client combines the k encrypted partials and decrypts once.
        with ctx.compute(CLIENT, Op.CIPHER_ADD, len(replies) - 1) as add_block:
            aggregate = replies[0]
            for reply in replies[1:]:
                aggregate = scheme.ciphertext_add(public, aggregate, reply)
        client_clock.advance(add_block.seconds)

        with ctx.compute(CLIENT, Op.DECRYPT, 1) as dec_block:
            raw_value = scheme.decrypt(private, aggregate)
        client_clock.advance(dec_block.seconds)

        if blinds is not None:
            # Sum of blinds ≡ 0 (mod B); the raw value carries the exact
            # integer sum of (partials + blinds), so reduce mod B.
            value = raw_value % self._blind_modulus(combined)
        else:
            value = raw_value

        for channel in channels:
            channel.drain_check()
        breakdown = TimingBreakdown(
            client_encrypt_s=enc_block.seconds,
            server_compute_s=server_s,
            communication_s=comm_s + blind_comm_s,
            client_decrypt_s=dec_block.seconds,
            combine_s=add_block.seconds,
        )
        return SumRunResult(
            value=value,
            n=total_n,
            m=m,
            breakdown=breakdown,
            makespan_s=client_clock.now,
            bytes_up=sum(c.bytes_up for c in channels),
            bytes_down=sum(c.bytes_down for c in channels),
            messages=sum(
                c.uplink.messages_sent + c.downlink.messages_sent for c in channels
            ),
            scheme=scheme.name,
            link=ctx.link.name,
            protocol=self.protocol_name,
            metadata={
                "keygen_s": keygen_s,
                "num_servers": len(databases),
                "hide_partials": self.hide_partials,
                "blind_coordination_bytes": blind_bytes if blinds is not None else 0,
                "partition_sizes": [len(db) for db in databases],
                "channels": channels,
            },
        )

    # -- blinding helpers ---------------------------------------------------

    def _blind_modulus(self, combined: ServerDatabase) -> int:
        n_bits = max(1, len(combined).bit_length())
        return 2 ** (combined.value_bits + n_bits + self.sigma)

    def _blinds(self, combined: ServerDatabase, num_servers: int) -> List[int]:
        """Coordinator-drawn shares R_1..R_k with sum ≡ 0 (mod B)."""
        modulus = self._blind_modulus(combined)
        shares = [self.ctx.rng.randbelow(modulus) for _ in range(num_servers - 1)]
        shares.append(-sum(shares) % modulus)
        return shares

    def run(self, database: ServerDatabase, selection: Sequence[int]) -> SumRunResult:
        """Not supported directly; use :meth:`run_distributed`."""
        raise ProtocolError(
            "use run_distributed(databases, selection) for the multi-server protocol"
        )
