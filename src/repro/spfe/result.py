"""Run-result records for the SPFE protocols.

Every protocol run returns a :class:`SumRunResult`: the computed value,
the verification hook, the component timing breakdown the paper's
figures plot, the pipelined makespan where applicable, and byte/message
accounting from the channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.timing.report import TimingBreakdown, seconds_to_minutes

__all__ = ["SumRunResult"]


@dataclass
class SumRunResult:
    """Outcome of one private-sum protocol run.

    Attributes:
        value: the decrypted sum the client obtained.
        n: database size.
        m: number of selected elements (or non-zero weights).
        breakdown: per-component busy times (the paper's figure series).
        makespan_s: end-to-end online runtime.  Equal to the sum of
            online components for sequential protocols; smaller for
            pipelined ones (that difference *is* the §3.2 optimization).
        bytes_up / bytes_down: wire bytes client->server / server->client.
        messages: total message count.
        scheme: scheme name ("paillier", "simulated-paillier", ...).
        link: link-model name ("cluster-gigabit", "modem-56k", ...).
        protocol: protocol identifier ("plain", "batched", ...).
        metadata: free-form extras (batch size, k, keygen time, ...).
    """

    value: int
    n: int
    m: int
    breakdown: TimingBreakdown
    makespan_s: float
    bytes_up: int
    bytes_down: int
    messages: int
    scheme: str
    link: str
    protocol: str
    metadata: Dict[str, Any] = field(default_factory=dict)

    def verify(self, expected: int) -> "SumRunResult":
        """Assert correctness against a ground-truth value (returns self)."""
        if self.value != expected:
            raise AssertionError(
                "protocol %r returned %d, expected %d"
                % (self.protocol, self.value, expected)
            )
        return self

    @property
    def total_bytes(self) -> int:
        return self.bytes_up + self.bytes_down

    def online_minutes(self) -> float:
        """The paper's headline unit for overall runtimes."""
        return seconds_to_minutes(self.makespan_s)

    def component_minutes(self) -> Dict[str, float]:
        """Component view in minutes (Figures 2, 3, 5, 6)."""
        return self.breakdown.as_minutes()

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            "%s: n=%d m=%d sum=%d online=%.2f min "
            "(enc=%.2f srv=%.2f comm=%.2f dec=%.4f) bytes=%d"
            % (
                self.protocol,
                self.n,
                self.m,
                self.value,
                self.online_minutes(),
                seconds_to_minutes(self.breakdown.client_encrypt_s),
                seconds_to_minutes(self.breakdown.server_compute_s),
                seconds_to_minutes(self.breakdown.communication_s),
                seconds_to_minutes(self.breakdown.client_decrypt_s),
                self.total_bytes,
            )
        )
