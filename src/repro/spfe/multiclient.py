"""Multiple clients in parallel with blinded partial sums — paper §3.5.

k cooperating clients each hold the index vector for 1/k of the
database and run the selected-sum protocol on their share in parallel,
cutting the dominant client-encryption time by ~k.  The challenge the
paper identifies: the partial sums P_1..P_k must stay hidden (learning
them would violate database privacy), so the server *blinds* each one —
it homomorphically adds a random R_i to client i's encrypted partial
sum, choosing the R_i to cancel: sum_i R_i ≡ 0 (mod M).

Phase two combines: C_1 sends its blinded sum to C_2; each C_i adds its
own and forwards; C_k obtains the unblinded total (the R_i cancel) and
broadcasts it (Figure 8).

**Blinding modulus (implementation note).**  The paper's description
assumes a common plaintext modulus M, but each client generates its own
key (with its own M_i).  We therefore blind over a server-published
*combining modulus* ``B = 2**(value_bits + ceil(log2 n) + sigma)``:
R_1..R_{k-1} are uniform mod B, R_k makes the sum 0 mod B.  Because
``B`` (with sigma = 40 statistical-hiding bits of headroom) is far below
every client's M_i, the homomorphic addition P_i + R_i never wraps M_i,
decryption recovers the exact integer, and combining mod B unblinds
exactly.  Each partial sum is statistically hidden (to within 2^-sigma)
from its own client.  DESIGN.md §3 records this substitution.

**Server concurrency (modelling note).**  The paper's ~2.99x speedup at
k = 3 implies the server overlaps its per-client work (its experiments
ran on an HPC cluster); we model one server worker per client.  The
paper measured this optimization only in Java, hence Figure 9's Java
(~5x) profile.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.crypto.ntheory import bytes_for_bits
from repro.crypto.serialization import FRAME_HEADER_BYTES
from repro.datastore.database import ServerDatabase
from repro.exceptions import ParameterError, ProtocolError
from repro.net.wire import Message
from repro.spfe.base import MSG_ENC_INDEX, MSG_RESULT, SelectedSumBase
from repro.spfe.context import CLIENT, SERVER
from repro.spfe.result import SumRunResult
from repro.timing.clock import VirtualClock
from repro.timing.costmodel import Op
from repro.timing.report import TimingBreakdown

__all__ = ["MultiClientSelectedSumProtocol", "PAPER_CLIENT_COUNT"]

PAPER_CLIENT_COUNT = 3  # Figure 9 measures k = 3
DEFAULT_SIGMA = 40  # statistical-hiding parameter for the blinding

MSG_BLINDED_PARTIAL = "blinded-partial"
MSG_RING_FORWARD = "ring-forward"
MSG_BROADCAST_TOTAL = "broadcast-total"


class MultiClientSelectedSumProtocol(SelectedSumBase):
    """k-client parallel selected sum with server-side blinding."""

    protocol_name = "multiclient"

    def __init__(
        self,
        context=None,
        num_clients: int = PAPER_CLIENT_COUNT,
        sigma: int = DEFAULT_SIGMA,
    ) -> None:
        super().__init__(context)
        if num_clients < 2:
            raise ParameterError("multi-client protocol needs at least 2 clients")
        if sigma < 1:
            raise ParameterError("sigma must be positive")
        self.num_clients = num_clients
        self.sigma = sigma

    # -- helpers ---------------------------------------------------------------

    def _combining_modulus(self, database: ServerDatabase) -> int:
        n_bits = max(1, (len(database)).bit_length())
        return 2 ** (database.value_bits + n_bits + self.sigma)

    def _slices(self, n: int) -> List[range]:
        """Split [0, n) into num_clients near-equal contiguous slices."""
        k = self.num_clients
        base, extra = divmod(n, k)
        slices = []
        start = 0
        for i in range(k):
            size = base + (1 if i < extra else 0)
            slices.append(range(start, start + size))
            start += size
        return slices

    # -- the protocol ------------------------------------------------------------

    def run(
        self, database: ServerDatabase, selection: Sequence[int]
    ) -> SumRunResult:
        """Execute both phases of the k-client protocol (see class docstring)."""
        ctx = self.ctx
        scheme = ctx.scheme
        m = self.validate_inputs(database, selection)
        n = len(database)
        if self.num_clients > n:
            raise ProtocolError(
                "more clients (%d) than database elements (%d)"
                % (self.num_clients, n)
            )

        blind_modulus = self._combining_modulus(database)
        slices = self._slices(n)
        k = self.num_clients

        # The server draws blinding values summing to 0 mod B.
        blinds = [ctx.rng.randbelow(blind_modulus) for _ in range(k - 1)]
        blinds.append(-sum(blinds) % blind_modulus)

        # ---- phase 1: k independent client/server interactions -------------
        channels = []
        client_clocks = [VirtualClock() for _ in range(k)]
        server_clocks = [VirtualClock() for _ in range(k)]  # one worker each
        blinded_values: List[int] = []
        encrypt_s = server_s = comm_s = decrypt_s = 0.0
        keygen_total = 0.0

        for i, sl in enumerate(slices):
            party = "client-%d" % i
            keypair, keygen_s = ctx.generate_keypair(party)
            keygen_total += keygen_s
            public, private = keypair.public, keypair.private

            # The blinded partial sum must fit the client's plaintext space.
            worst = sum(selection) * (2**database.value_bits - 1) + blind_modulus
            if worst >= scheme.plaintext_modulus(public):
                raise ProtocolError(
                    "blinded sum can wrap client %d's plaintext modulus; "
                    "use larger keys or smaller sigma" % i
                )

            channel = ctx.new_channel()
            channels.append(channel)
            clock = client_clocks[i]
            srv_clock = server_clocks[i]

            t_pk = channel.client_send(self.public_key_message(public), clock.now)
            srv_clock.wait_until(t_pk)
            channel.server_recv()

            weights = [selection[j] for j in sl]
            values = [database[j] for j in sl]

            with ctx.compute(party, Op.ENCRYPT, len(weights)) as enc_block:
                cts = scheme.encrypt_vector(public, weights, ctx.rng)
            clock.advance(enc_block.seconds)
            encrypt_s += enc_block.seconds

            send_started = clock.now
            last_arrival = send_started
            for ct in cts:
                msg = self.ciphertext_message(MSG_ENC_INDEX, ct, public, party)
                last_arrival = channel.client_send(msg, clock.now)
            comm_s += last_arrival - send_started
            srv_clock.wait_until(last_arrival)
            received = [channel.server_recv()[0].payload for _ in cts]

            # Server worker i: partial product, then blinding.
            with ctx.compute(SERVER, Op.WEIGHTED_STEP, len(values)) as srv_block:
                partial = scheme.weighted_product(public, received, values)
            with ctx.compute(SERVER, Op.ENCRYPT, 1) as blind_enc:
                enc_blind = scheme.encrypt(public, blinds[i], ctx.rng)
            with ctx.compute(SERVER, Op.CIPHER_ADD, 1) as blind_add:
                blinded = scheme.ciphertext_add(public, partial, enc_blind)
            srv_step = srv_block.seconds + blind_enc.seconds + blind_add.seconds
            srv_clock.advance(srv_step)
            server_s += srv_step

            reply = self.ciphertext_message(MSG_BLINDED_PARTIAL, blinded, public, SERVER)
            reply_started = srv_clock.now
            arrival = channel.server_send(reply, srv_clock.now)
            comm_s += arrival - reply_started
            clock.wait_until(arrival)
            payload = channel.client_recv()[0].payload

            with ctx.compute(party, Op.DECRYPT, 1) as dec_block:
                blinded_values.append(scheme.decrypt(private, payload))
            clock.advance(dec_block.seconds)
            decrypt_s += dec_block.seconds

        phase1_end = max(clock.now for clock in client_clocks)

        # ---- phase 2: ring combination and broadcast -------------------------
        ring_bytes = bytes_for_bits(blind_modulus.bit_length()) + FRAME_HEADER_BYTES
        ring_channels = [ctx.new_channel() for _ in range(k)]  # i -> i+1, k-1 used
        combine_comm_s = 0.0

        running = blinded_values[0] % blind_modulus
        for i in range(1, k):
            msg = Message(MSG_RING_FORWARD, running, ring_bytes, "client-%d" % (i - 1))
            sent_at = client_clocks[i - 1].now
            arrival = ring_channels[i - 1].client_send(msg, sent_at)
            combine_comm_s += arrival - sent_at
            client_clocks[i].wait_until(arrival)
            ring_channels[i - 1].server_recv()
            with ctx.compute("client-%d" % i, Op.PLAIN_ADD, 1) as add_block:
                running = (running + blinded_values[i]) % blind_modulus
            client_clocks[i].advance(add_block.seconds)

        total = running  # blinding cancelled: sum R_i ≡ 0 (mod B)

        # C_k broadcasts the total to the other clients.
        broadcaster = client_clocks[k - 1]
        for i in range(k - 1):
            msg = Message(MSG_BROADCAST_TOTAL, total, ring_bytes, "client-%d" % (k - 1))
            sent_at = broadcaster.now
            arrival = ring_channels[k - 1].client_send(msg, sent_at)
            combine_comm_s += arrival - sent_at
            ring_channels[k - 1].server_recv()
            client_clocks[i].wait_until(arrival)

        makespan = max(clock.now for clock in client_clocks)
        combine_s = makespan - phase1_end

        bytes_up = sum(c.bytes_up for c in channels) + sum(
            c.bytes_up for c in ring_channels
        )
        bytes_down = sum(c.bytes_down for c in channels)
        messages = sum(
            c.uplink.messages_sent + c.downlink.messages_sent
            for c in channels + ring_channels
        )

        breakdown = TimingBreakdown(
            client_encrypt_s=encrypt_s,
            server_compute_s=server_s,
            communication_s=comm_s + combine_comm_s,
            client_decrypt_s=decrypt_s,
            combine_s=combine_s,
        )
        metadata: Dict[str, Any] = {
            "num_clients": k,
            "blind_modulus_bits": blind_modulus.bit_length() - 1,  # B = 2^k
            "keygen_s": keygen_total,
            "phase1_s": phase1_end,
            "channels": channels,
            "ring_channels": ring_channels,
        }
        for channel in channels + ring_channels:
            channel.drain_check()
        return SumRunResult(
            value=total,
            n=n,
            m=m,
            breakdown=breakdown,
            makespan_s=makespan,
            bytes_up=bytes_up,
            bytes_down=bytes_down,
            messages=messages,
            scheme=scheme.name,
            link=ctx.link.name,
            protocol=self.protocol_name,
            metadata=metadata,
        )
