"""Closed-form cost estimation for the protocol family.

The event-driven engine *executes* a protocol to find its cost; this
module *predicts* the cost from the parameters alone — the planning
question a deployment asks ("how long will a query over 10 million rows
take on this link?") without materialising a workload.

The formulas mirror the engine's accounting exactly (same link model,
same per-op costs, same message framing), and the test suite asserts
estimator-vs-engine agreement across protocols, sizes, environments,
and key sizes — which doubles as a regression net for the engine's
timing logic: if either side drifts, the cross-check fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.serialization import (
    FRAME_HEADER_BYTES,
    ciphertext_bytes,
    public_key_bytes,
)
from repro.exceptions import ParameterError
from repro.net.link import LinkModel
from repro.spfe.batching import PAPER_BATCH_SIZE
from repro.spfe.context import ExecutionContext
from repro.timing.clock import PipelineSchedule
from repro.timing.costmodel import Op
from repro.timing.report import TimingBreakdown

__all__ = ["CostEstimate", "ProtocolCostEstimator"]


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost of one protocol run."""

    protocol: str
    n: int
    breakdown: TimingBreakdown
    makespan_s: float
    bytes_up: int
    bytes_down: int

    @property
    def total_bytes(self) -> int:
        return self.bytes_up + self.bytes_down

    def online_minutes(self) -> float:
        """Predicted online runtime in the paper's unit (minutes)."""
        return self.makespan_s / 60.0


class ProtocolCostEstimator:
    """Predicts run costs for a given execution context.

    The context supplies the link model, hardware profiles, and key
    size; the estimator never touches a database or a scheme.
    """

    def __init__(self, context: Optional[ExecutionContext] = None) -> None:
        self.ctx = context if context is not None else ExecutionContext()

    # -- shared building blocks ----------------------------------------------

    def _ct_bytes(self) -> int:
        return ciphertext_bytes(self.ctx.key_bits)

    def _pk_message_bytes(self) -> int:
        return public_key_bytes(self.ctx.key_bits) + FRAME_HEADER_BYTES

    def _per_element_message_bytes(self) -> int:
        return self._ct_bytes() + FRAME_HEADER_BYTES

    def _chunk_message_bytes(self, chunk: int) -> int:
        return chunk * self._ct_bytes() + FRAME_HEADER_BYTES

    def _stream_seconds(self, message_bytes: int, messages: int) -> float:
        """A pipelined stream: per-message busy time + one latency."""
        link = self.ctx.link
        return messages * link.seconds_per_message(message_bytes) + link.latency_s

    def _cost(self, party: str, op: Op) -> float:
        return self.ctx.op_cost(party, op)

    # -- protocol estimates -----------------------------------------------------

    def plain(self, n: int) -> CostEstimate:
        """The unoptimized protocol (Figure 2/3 configuration)."""
        self._validate(n)
        encrypt = n * self._cost("client", Op.ENCRYPT)
        server = n * self._cost("server", Op.WEIGHTED_STEP)
        comm_up = self._stream_seconds(self._per_element_message_bytes(), n)
        comm_down = self._stream_seconds(self._per_element_message_bytes(), 1)
        decrypt = self._cost("client", Op.DECRYPT)
        breakdown = TimingBreakdown(
            client_encrypt_s=encrypt,
            server_compute_s=server,
            communication_s=comm_up + comm_down,
            client_decrypt_s=decrypt,
        )
        return CostEstimate(
            protocol="plain",
            n=n,
            breakdown=breakdown,
            makespan_s=encrypt + comm_up + server + comm_down + decrypt,
            bytes_up=self._pk_message_bytes()
            + n * self._per_element_message_bytes(),
            bytes_down=self._per_element_message_bytes(),
        )

    def preprocessed(self, n: int) -> CostEstimate:
        """§3.3: pool fetches online, 2n encryptions offline."""
        self._validate(n)
        fetch = n * self._cost("client", Op.POOL_FETCH)
        offline = 2 * n * self._cost("client", Op.ENCRYPT)
        server = n * self._cost("server", Op.WEIGHTED_STEP)
        comm_up = self._stream_seconds(self._per_element_message_bytes(), n)
        comm_down = self._stream_seconds(self._per_element_message_bytes(), 1)
        decrypt = self._cost("client", Op.DECRYPT)
        breakdown = TimingBreakdown(
            client_encrypt_s=fetch,
            server_compute_s=server,
            communication_s=comm_up + comm_down,
            client_decrypt_s=decrypt,
            offline_precompute_s=offline,
        )
        return CostEstimate(
            protocol="preprocessed",
            n=n,
            breakdown=breakdown,
            makespan_s=fetch + comm_up + server + comm_down + decrypt,
            bytes_up=self._pk_message_bytes()
            + n * self._per_element_message_bytes(),
            bytes_down=self._per_element_message_bytes(),
        )

    def batched(self, n: int, batch_size: int = PAPER_BATCH_SIZE) -> CostEstimate:
        """§3.2: the flow-shop pipeline over ceil(n / batch) chunks."""
        return self._pipelined(n, batch_size, Op.ENCRYPT, "batched", offline=0.0)

    def combined(self, n: int, batch_size: int = PAPER_BATCH_SIZE) -> CostEstimate:
        """§3.4: pipeline with pool fetches; 2n encryptions offline."""
        offline = 2 * n * self._cost("client", Op.ENCRYPT)
        return self._pipelined(
            n, batch_size, Op.POOL_FETCH, "combined", offline=offline
        )

    def _pipelined(
        self, n: int, batch_size: int, client_op: Op, name: str, offline: float
    ) -> CostEstimate:
        self._validate(n)
        if batch_size < 1:
            raise ParameterError("batch size must be positive")
        link = self.ctx.link
        sizes = [
            min(batch_size, n - start) for start in range(0, n, batch_size)
        ]
        client_cost = self._cost("client", client_op)
        server_cost = self._cost("server", Op.WEIGHTED_STEP)
        client_stage = [s * client_cost for s in sizes]
        link_stage = [
            link.seconds_per_message(self._chunk_message_bytes(s)) for s in sizes
        ]
        server_stage = [s * server_cost for s in sizes]
        schedule = PipelineSchedule(client_stage, link_stage, server_stage)

        decrypt = self._cost("client", Op.DECRYPT)
        result_stream = self._stream_seconds(self._per_element_message_bytes(), 1)
        # The engine's first chunk also waits one propagation latency.
        makespan = schedule.makespan() + link.latency_s + result_stream + decrypt

        comm = sum(link_stage) + result_stream + link.seconds_per_message(
            self._pk_message_bytes()
        )
        breakdown = TimingBreakdown(
            client_encrypt_s=sum(client_stage),
            server_compute_s=sum(server_stage),
            communication_s=comm,
            client_decrypt_s=decrypt,
            offline_precompute_s=offline,
        )
        bytes_up = self._pk_message_bytes() + sum(
            self._chunk_message_bytes(s) for s in sizes
        )
        return CostEstimate(
            protocol=name,
            n=n,
            breakdown=breakdown,
            makespan_s=makespan,
            bytes_up=bytes_up,
            bytes_down=self._per_element_message_bytes(),
        )

    def multiclient(
        self,
        n: int,
        num_clients: int,
        value_bits: int = 32,
        sigma: int = 40,
    ) -> CostEstimate:
        """§3.5: k parallel clients; phase 1 dominated by the largest slice.

        ``value_bits`` and ``sigma`` size the blinding modulus (and thus
        the tiny ring messages of the combining phase), mirroring
        :class:`~repro.spfe.multiclient.MultiClientSelectedSumProtocol`.
        """
        self._validate(n)
        if num_clients < 2:
            raise ParameterError("multi-client estimate needs k >= 2")
        base, extra = divmod(n, num_clients)
        largest = base + (1 if extra else 0)
        link = self.ctx.link

        encrypt_each = largest * self._cost("client", Op.ENCRYPT)
        server_each = largest * self._cost("server", Op.WEIGHTED_STEP) + self._cost(
            "server", Op.ENCRYPT
        ) + self._cost("server", Op.CIPHER_ADD)
        comm_up = self._stream_seconds(self._per_element_message_bytes(), largest)
        comm_down = self._stream_seconds(self._per_element_message_bytes(), 1)
        decrypt = self._cost("client", Op.DECRYPT)
        phase1 = encrypt_each + comm_up + server_each + comm_down + decrypt

        # Ring combination: k-1 forwarding hops (own channel each, one
        # latency per hop) then k-1 broadcast messages down one channel.
        blind_bits = value_bits + max(1, n.bit_length()) + sigma
        ring_bytes = (blind_bits + 7) // 8 + FRAME_HEADER_BYTES
        hop = (
            link.seconds_per_message(ring_bytes)
            + link.latency_s
            + self._cost("client", Op.PLAIN_ADD)
        )
        broadcast = (num_clients - 1) * link.seconds_per_message(
            ring_bytes
        ) + link.latency_s
        combine = (num_clients - 1) * hop + broadcast
        makespan = phase1 + combine

        ring_comm = (2 * (num_clients - 1)) * link.seconds_per_message(
            ring_bytes
        ) + 2 * link.latency_s
        breakdown = TimingBreakdown(
            client_encrypt_s=n * self._cost("client", Op.ENCRYPT),
            server_compute_s=n * self._cost("server", Op.WEIGHTED_STEP)
            + num_clients
            * (
                self._cost("server", Op.ENCRYPT)
                + self._cost("server", Op.CIPHER_ADD)
            ),
            communication_s=num_clients * (comm_up + comm_down) + ring_comm,
            client_decrypt_s=num_clients * decrypt,
            combine_s=combine,
        )
        # Slices differ by at most one element; total uplink is exact.
        total_up = num_clients * self._pk_message_bytes() + n * (
            self._per_element_message_bytes()
        ) + 2 * (num_clients - 1) * ring_bytes
        return CostEstimate(
            protocol="multiclient",
            n=n,
            breakdown=breakdown,
            makespan_s=makespan,
            bytes_up=total_up,
            bytes_down=num_clients * self._per_element_message_bytes(),
        )

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _validate(n: int) -> None:
        if n < 1:
            raise ParameterError("database size must be positive")
