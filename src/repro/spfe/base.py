"""Shared machinery for the selected-sum protocol family.

All protocol variants (plain, batched, preprocessed, combined,
multi-client) share input validation, capacity checking, message
construction, and the run-result assembly; that lives here so each
variant module contains only what the corresponding paper section
describes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.crypto.serialization import FRAME_HEADER_BYTES, public_key_bytes
from repro.datastore.database import ServerDatabase
from repro.exceptions import ParameterError, ProtocolError
from repro.net.channel import Channel
from repro.net.wire import Message
from repro.spfe.context import CLIENT, SERVER, ExecutionContext
from repro.spfe.result import SumRunResult
from repro.timing.report import TimingBreakdown

__all__ = ["SelectedSumBase", "MSG_PUBLIC_KEY", "MSG_ENC_INDEX", "MSG_RESULT"]

MSG_PUBLIC_KEY = "public-key"
MSG_ENC_INDEX = "enc-index"
MSG_RESULT = "result"


class SelectedSumBase:
    """Common validation, wiring, and result assembly.

    Subclasses implement :meth:`run` and set :attr:`protocol_name`.
    """

    protocol_name = "abstract"

    def __init__(self, context: Optional[ExecutionContext] = None) -> None:
        self.ctx = context if context is not None else ExecutionContext()

    # -- validation -----------------------------------------------------------

    def validate_inputs(
        self, database: ServerDatabase, selection: Sequence[int]
    ) -> int:
        """Check lengths and weights; return m (# of non-zero weights)."""
        if len(selection) != len(database):
            raise ParameterError(
                "selection length %d != database size %d"
                % (len(selection), len(database))
            )
        m = 0
        for i, w in enumerate(selection):
            if not isinstance(w, int) or isinstance(w, bool):
                raise ParameterError("selection[%d] is not an integer" % i)
            if w < 0:
                raise ParameterError(
                    "selection[%d] = %d; weights must be non-negative" % (i, w)
                )
            if w:
                m += 1
        return m

    def check_capacity(
        self,
        database: ServerDatabase,
        selection: Sequence[int],
        public_key: Any,
    ) -> None:
        """Ensure the worst-case sum cannot wrap the plaintext modulus.

        Uses the *worst case* (every weight at its actual value, every
        element at the 32-bit maximum) rather than the true sum, since
        the server must be able to rely on the bound without knowing the
        client's true selection.
        """
        modulus = self.ctx.scheme.plaintext_modulus(public_key)
        max_element = 2**database.value_bits - 1
        worst = sum(selection) * max_element
        if worst >= modulus:
            raise ProtocolError(
                "worst-case sum %d cannot be represented in the %d-bit "
                "plaintext space; use a larger key" % (worst, modulus.bit_length())
            )

    # -- message helpers -----------------------------------------------------------

    def public_key_message(self, public_key: Any) -> Message:
        """The client's public-key announcement message."""
        return Message(
            MSG_PUBLIC_KEY,
            public_key,
            public_key_bytes(self.ctx.key_bits) + FRAME_HEADER_BYTES,
            CLIENT,
        )

    def ciphertext_message(
        self, kind: str, ciphertext: Any, public_key: Any, sender: str
    ) -> Message:
        """A framed message carrying one ciphertext."""
        return Message(
            kind,
            ciphertext,
            self.ctx.ciphertext_bytes(public_key) + FRAME_HEADER_BYTES,
            sender,
        )

    def vector_message(
        self, kind: str, ciphertexts: Sequence[Any], public_key: Any, sender: str
    ) -> Message:
        """One framed message carrying a whole batch of ciphertexts."""
        size = (
            len(ciphertexts) * self.ctx.ciphertext_bytes(public_key)
            + FRAME_HEADER_BYTES
        )
        return Message(kind, tuple(ciphertexts), size, sender)

    # -- result assembly ------------------------------------------------------------

    def build_result(
        self,
        value: int,
        database: ServerDatabase,
        m: int,
        breakdown: TimingBreakdown,
        makespan_s: float,
        channel: Channel,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> SumRunResult:
        """Assemble the run result (checks the channel drained)."""
        channel.drain_check()
        return SumRunResult(
            value=value,
            n=len(database),
            m=m,
            breakdown=breakdown,
            makespan_s=makespan_s,
            bytes_up=channel.bytes_up,
            bytes_down=channel.bytes_down,
            messages=channel.uplink.messages_sent + channel.downlink.messages_sent,
            scheme=self.ctx.scheme.name,
            link=self.ctx.link.name,
            protocol=self.protocol_name,
            metadata=metadata or {},
        )

    # -- interface ----------------------------------------------------------------------

    def run(
        self, database: ServerDatabase, selection: Sequence[int]
    ) -> SumRunResult:
        """Execute the protocol (implemented by each variant)."""
        raise NotImplementedError
