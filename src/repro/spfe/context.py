"""Execution context: scheme + link + hardware profiles + timing mode.

An :class:`ExecutionContext` wires together everything a protocol run
needs and answers one question for the protocol code: *how long did this
block of work take, for this party?*  Two answers are possible:

* ``mode="modelled"`` — durations come from the party's
  :class:`~repro.timing.costmodel.HardwareProfile` via explicit operation
  charges.  The scheme defaults to
  :class:`~repro.crypto.simulated.SimulatedPaillier` so paper-scale runs
  (n = 100,000) finish in milliseconds of real time while reporting 2004
  minutes of modelled time.
* ``mode="measured"`` — durations are wall-clock measurements of the
  real cryptosystem (default :class:`~repro.crypto.paillier.PaillierScheme`).
  Communication is still modelled from the link (the channel is
  in-memory), which DESIGN.md §3 documents.

Protocol code is identical under both modes::

    with ctx.compute(CLIENT, Op.ENCRYPT, count=n) as block:
        cts = scheme.encrypt_vector(pk, bits, rng)
    encrypt_seconds = block.seconds
"""

from __future__ import annotations

import time
from typing import Optional, Union

from repro.crypto.paillier import PaillierScheme
from repro.crypto.rng import RandomSource, as_random_source
from repro.crypto.scheme import AdditiveHomomorphicScheme, SchemeKeyPair
from repro.crypto.simulated import SimulatedPaillier
from repro.exceptions import ParameterError
from repro.net.channel import Channel
from repro.net.link import LinkModel, links
from repro.obs.tracing import Tracer
from repro.timing.costmodel import HardwareProfile, Op, profiles

__all__ = ["ExecutionContext", "ComputeBlock", "CLIENT", "SERVER"]

CLIENT = "client"
SERVER = "server"

_MODES = ("modelled", "measured")

#: Op -> canonical tracer phase name.  Unlisted ops record under their
#: own value (visible in Tracer.totals, outside the figure breakdown);
#: CIPHER_ADD stays unmapped because it runs on either party.
_OP_PHASE = {
    Op.ENCRYPT: "encrypt",
    Op.DECRYPT: "decrypt",
    Op.WEIGHTED_STEP: "server_compute",
    Op.PRECOMPUTE: "offline_precompute",
}


class ComputeBlock:
    """Context manager that yields the duration of a block of party work."""

    def __init__(
        self,
        mode: str,
        profile: HardwareProfile,
        op: Op,
        count: int,
        key_bits: int,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._mode = mode
        self._profile = profile
        self._op = op
        self._count = count
        self._key_bits = key_bits
        self._tracer = tracer
        self._started = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "ComputeBlock":
        if self._mode == "measured":
            self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if exc_info[0] is not None:
            return
        if self._mode == "measured":
            self.seconds = time.perf_counter() - self._started
        else:
            self.seconds = self._count * self._profile.cost(
                self._op, self._key_bits
            )
        if self._tracer is not None:
            # Both timing modes flow into the same tracer: measured
            # blocks as wall-clock spans, modelled ones as recorded
            # charges — so traced runs always produce a breakdown.
            self._tracer.record(
                _OP_PHASE.get(self._op, self._op.value), self.seconds
            )


class ExecutionContext:
    """Everything one protocol run needs, bundled.

    Args:
        scheme: homomorphic scheme; defaults by mode (see module docs).
        link: communication medium (default: the paper's cluster switch).
        client_profile / server_profile: hardware models for the two
            sides (defaults: the paper's Pentium-III 2 GHz for both, as
            in the short-distance experiments).
        key_bits: key size used for both key generation and cost scaling
            (default 512, the paper's).
        mode: "modelled" or "measured".
        rng: randomness for key generation / encryption; seeds accepted.
        tracer: optional :class:`~repro.obs.tracing.Tracer`; every
            compute block (measured or modelled) records its duration
            there under the op's canonical phase name, so a traced run
            yields both per-phase histograms and a
            :meth:`~repro.obs.tracing.Tracer.breakdown`.
    """

    def __init__(
        self,
        scheme: Optional[AdditiveHomomorphicScheme] = None,
        link: Optional[LinkModel] = None,
        client_profile: Optional[HardwareProfile] = None,
        server_profile: Optional[HardwareProfile] = None,
        key_bits: int = 512,
        mode: str = "modelled",
        rng: Union[RandomSource, bytes, str, int, None] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if mode not in _MODES:
            raise ParameterError("mode must be one of %s, got %r" % (_MODES, mode))
        if key_bits < 16:
            raise ParameterError("key_bits too small: %d" % key_bits)
        if scheme is None:
            scheme = SimulatedPaillier() if mode == "modelled" else PaillierScheme()
        self.scheme = scheme
        self.link = link if link is not None else links.cluster
        self.client_profile = client_profile or profiles.pentium3_2ghz
        self.server_profile = server_profile or profiles.pentium3_2ghz
        self.key_bits = key_bits
        self.mode = mode
        self.rng = as_random_source(rng)
        self.tracer = tracer
        self._channel_counter = 0

    # -- wiring ----------------------------------------------------------------

    def profile_for(self, party: str) -> HardwareProfile:
        """Profile lookup: any ``client*`` party uses the client profile."""
        if party.startswith(CLIENT):
            return self.client_profile
        if party.startswith(SERVER):
            return self.server_profile
        raise ParameterError("unknown party %r" % party)

    def new_channel(self) -> Channel:
        """A fresh byte-accounted channel on this context's link."""
        self._channel_counter += 1
        return Channel(self.link, "channel-%d" % self._channel_counter)

    def generate_keypair(self, party: str = CLIENT) -> "tuple[SchemeKeyPair, float]":
        """Generate a key pair, returning ``(keypair, seconds)``."""
        with self.compute(party, Op.KEYGEN) as block:
            keypair = self.scheme.generate(self.key_bits, self.rng)
        return keypair, block.seconds

    # -- timing -------------------------------------------------------------------

    def compute(self, party: str, op: Op, count: int = 1) -> ComputeBlock:
        """Duration of a block of ``count`` operations by ``party``."""
        if count < 0:
            raise ParameterError("operation count must be non-negative")
        return ComputeBlock(
            self.mode, self.profile_for(party), op, count, self.key_bits,
            tracer=self.tracer,
        )

    def op_cost(self, party: str, op: Op) -> float:
        """Modelled per-op cost (used for pipeline stage construction)."""
        return self.profile_for(party).cost(op, self.key_bits)

    def ciphertext_bytes(self, public_key: object) -> int:
        """Wire size of one ciphertext under ``public_key``."""
        return self.scheme.ciphertext_size_bytes(public_key)

    def describe(self) -> str:
        """One-line human-readable description of the wiring."""
        return "%s/%s client=%s server=%s key=%d (%s)" % (
            self.scheme.name,
            self.link.name,
            self.client_profile.name,
            self.server_profile.name,
            self.key_bits,
            self.mode,
        )
