"""Private group-by: per-group sums in a single protocol run.

A natural statistics workload over the paper's primitive: the client
partitions its selected rows into g secret groups (age bands, treatment
arms, ...) and wants each group's sum.  Running the selected-sum
protocol once per group costs g full passes; this module gets the whole
group-by in *one* pass using plaintext packing — a standard trick on
additively homomorphic schemes:

Give every selected row in group ``j`` the weight ``B**j``, where the
radix ``B`` exceeds any single group's maximum sum.  The server computes
its usual product ``prod E(w_i)^{x_i} = E(sum_i w_i x_i)`` — and the
decrypted value is ``sum_j B**j * S_j``, whose base-B digits *are* the
per-group sums.  The server's work and the communication are exactly
one protocol run; only the plaintext-capacity requirement grows
(g·log2(B) bits), which the capacity check enforces against the key.

Privacy is unchanged: the grouping travels only inside semantically
secure ciphertexts, and the client learns exactly the g sums it asked
for (the agreed output).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.crypto.scheme import SchemeKeyPair
from repro.datastore.database import ServerDatabase
from repro.exceptions import ParameterError, ProtocolError
from repro.spfe.base import SelectedSumBase
from repro.spfe.context import ExecutionContext
from repro.spfe.result import SumRunResult
from repro.spfe.selected_sum import SelectedSumProtocol

__all__ = ["GroupedSumProtocol", "GroupedSumResult"]


class GroupedSumResult:
    """Per-group sums plus the underlying single protocol run."""

    def __init__(self, group_sums: List[int], run: SumRunResult) -> None:
        self.group_sums = group_sums
        self.run = run

    def __getitem__(self, group: int) -> int:
        return self.group_sums[group]

    def __len__(self) -> int:
        return len(self.group_sums)

    @property
    def total(self) -> int:
        return sum(self.group_sums)

    def verify(self, expected: Sequence[int]) -> "GroupedSumResult":
        """Assert the per-group sums against ground truth (returns self)."""
        if list(expected) != self.group_sums:
            raise AssertionError(
                "group sums %s != expected %s" % (self.group_sums, list(expected))
            )
        return self


class GroupedSumProtocol(SelectedSumBase):
    """One-pass private group-by over the selected-sum protocol."""

    protocol_name = "grouped"

    def __init__(self, context: Optional[ExecutionContext] = None) -> None:
        super().__init__(context)
        self._inner = SelectedSumProtocol(self.ctx)

    # -- packing -----------------------------------------------------------

    def radix(self, database: ServerDatabase, group_sizes: Sequence[int]) -> int:
        """The packing radix: strictly larger than any group's max sum."""
        largest_group = max(group_sizes) if group_sizes else 0
        return largest_group * (2**database.value_bits - 1) + 1

    def check_packing_capacity(
        self, database: ServerDatabase, num_groups: int, radix: int, public_key
    ) -> None:
        """Refuse packings that exceed the key's plaintext space."""
        packed_bound = radix**num_groups
        modulus = self.ctx.scheme.plaintext_modulus(public_key)
        if packed_bound >= modulus:
            raise ProtocolError(
                "packing %d groups needs %d plaintext bits; the key offers %d "
                "(use fewer groups, a larger key, or Damgård–Jurik s>1)"
                % (num_groups, packed_bound.bit_length(), modulus.bit_length())
            )

    # -- the protocol -------------------------------------------------------------

    def run_grouped(
        self,
        database: ServerDatabase,
        groups: Sequence[Optional[int]],
        num_groups: Optional[int] = None,
        keypair: Optional[SchemeKeyPair] = None,
    ) -> GroupedSumResult:
        """Compute per-group sums in one protocol pass.

        Args:
            database: the server's data.
            groups: per-row group assignment — ``None`` (or any negative
                int) means "not selected"; otherwise a group id in
                ``[0, num_groups)``.
            num_groups: total groups (default: 1 + max assigned id).
            keypair: optional key reuse.

        Returns:
            :class:`GroupedSumResult` with one sum per group.
        """
        if len(groups) != len(database):
            raise ParameterError(
                "group vector length %d != database size %d"
                % (len(groups), len(database))
            )
        assigned = [g for g in groups if g is not None and g >= 0]
        if num_groups is None:
            if not assigned:
                raise ParameterError("no rows assigned to any group")
            num_groups = max(assigned) + 1
        if num_groups < 1:
            raise ParameterError("need at least one group")
        if any(g >= num_groups for g in assigned):
            raise ParameterError("group id exceeds num_groups")

        group_sizes = [0] * num_groups
        for g in assigned:
            group_sizes[g] += 1
        radix = self.radix(database, group_sizes)

        # Weight vector: B^group for selected rows, 0 otherwise.
        weights = [
            radix**g if (g is not None and g >= 0) else 0 for g in groups
        ]

        # Key setup first so the packing capacity can be checked against
        # the actual key (the inner protocol re-checks the sum bound).
        if keypair is None:
            keypair, _ = self.ctx.generate_keypair()
        self.check_packing_capacity(database, num_groups, radix, keypair.public)

        run = self._inner.run(database, weights, keypair=keypair)
        run.protocol = self.protocol_name
        run.metadata["num_groups"] = num_groups
        run.metadata["radix_bits"] = radix.bit_length()

        # Unpack the base-B digits.
        packed = run.value
        sums: List[int] = []
        for _ in range(num_groups):
            packed, digit = divmod(packed, radix)
            sums.append(digit)
        if packed != 0:
            raise ProtocolError("packing overflow: residue after unpacking")
        return GroupedSumResult(sums, run)

    def run(self, database: ServerDatabase, selection: Sequence[int]) -> SumRunResult:
        """Not supported directly; use :meth:`run_grouped`."""
        raise ProtocolError("use run_grouped(database, groups) for group-by")


def group_means(result: GroupedSumResult, group_sizes: Sequence[int]) -> Dict[int, float]:
    """Per-group means from a grouped run (client knows its group sizes)."""
    if len(group_sizes) != len(result):
        raise ParameterError("group size vector mismatch")
    means = {}
    for j, (total, count) in enumerate(zip(result.group_sums, group_sizes)):
        if count:
            means[j] = total / count
    return means
