"""Deployable client/server sessions speaking the byte-level protocol.

The protocol engines in this package (:mod:`repro.spfe.selected_sum`
and friends) run both parties in one process with modelled or measured
timing — ideal for experiments.  This module is the *deployment* shape:
two independent state machines that exchange nothing but bytes, so the
same protocol runs over a real socket, a pipe, or any
:class:`~repro.net.transport.Transport`.

* :class:`ServerSession` holds the database.  Feed it received bytes
  via :meth:`receive_bytes`; it returns the bytes to send back (empty
  until it has everything it needs).
* :class:`ClientSession` holds the selection and the key pair.
  :meth:`initial_bytes` yields the entire outgoing stream (HELLO,
  public key, encrypted chunks); :meth:`receive_bytes` consumes the
  server's reply and exposes :attr:`result`.

Resilience (wire v2, the default): every frame carries a CRC and chunk
frames carry their absolute index, and sessions are *resumable*.  The
client advertises a random 16-byte session id in its HELLO; the server
tracks the last contiguously received chunk per session id in a
:class:`SessionRegistry`.  After a disconnect the client reconnects,
sends RESUME, and the server answers ACK with the next chunk index it
expects — the client then re-sends only the missing chunks from its
cache instead of re-encrypting the whole vector (client-side Paillier
encryption dominates the protocol's cost, paper §3).  If the server has
evicted the session the ACK says so and the client restarts cleanly.
:func:`run_resilient` packages the whole reconnect-and-resume loop
behind a retry policy.

The tests drive a pair of sessions through ``socket.socketpair()`` —
real kernel buffers, real partial reads — and assert the sum is correct
and that the server-side transcript contains only ciphertexts; the
chaos suite replays seeded fault plans against the same pair.

Only the real Paillier scheme makes sense here (bytes are bytes), so
sessions are fixed to :class:`~repro.crypto.paillier.PaillierScheme`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.crypto.multiexp import multi_exponent
from repro.crypto.paillier import (
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
)
from repro.crypto.scheme import SchemeKeyPair
from repro.crypto.rng import RandomSource, as_random_source
from repro.datastore.database import ServerDatabase
from repro.exceptions import (
    ParameterError,
    PolicyViolation,
    ProtocolError,
    RetryExhausted,
    ServerBusy,
    SessionResumeError,
    TransportError,
    ValidationError,
)
from repro.net import codec
from repro.net.codec import Frame, FrameDecoder, FrameType
from repro.net.transport import (
    DEFAULT_RECV_BYTES,
    RETRY_METRIC_HELP,
    RetryPolicy,
    Transport,
)
from repro.obs.registry import MetricsRegistry
from repro.store.state import SessionRecord, StateStore
from repro.obs.tracing import Tracer
from repro.spfe.validation import (
    ServerPolicy,
    check_ciphertext,
    check_hello,
    check_public_key,
    resume_state_bytes,
)

__all__ = [
    "ClientSession",
    "ServerSession",
    "SessionRegistry",
    "run_sessions_in_memory",
    "run_over_transport",
    "run_resilient",
    "serve_over_transport",
    "DEFAULT_CHUNK",
]

DEFAULT_CHUNK = 64


class ClientSession:
    """The querying side, as a byte-stream state machine."""

    def __init__(
        self,
        selection: Sequence[int],
        key_bits: int = 512,
        chunk_size: int = DEFAULT_CHUNK,
        rng: Optional[RandomSource] = None,
        wire_version: int = codec.WIRE_VERSION_2,
        keypair: Optional[SchemeKeyPair] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not selection:
            raise ProtocolError("selection must be non-empty")
        if any(w < 0 for w in selection):
            raise ProtocolError("selection weights must be non-negative")
        if chunk_size < 1:
            raise ProtocolError("chunk size must be positive")
        if wire_version not in (codec.WIRE_VERSION_1, codec.WIRE_VERSION_2):
            raise ProtocolError("unsupported wire version %d" % wire_version)
        self.selection = list(selection)
        self.key_bits = key_bits
        self.chunk_size = chunk_size
        self.wire_version = wire_version
        #: optional :class:`~repro.obs.tracing.Tracer` recording the
        #: paper's client phases (``encrypt``, ``decrypt``, ``resume``)
        self.tracer = tracer
        self._rng = as_random_source(rng)
        keypair = keypair or generate_keypair(key_bits, self._rng)
        self.public_key: PaillierPublicKey = keypair.public
        self._private_key: PaillierPrivateKey = keypair.private
        #: 16-byte resumable-session identifier (None on legacy v1 wire)
        self.session_id: Optional[bytes] = (
            self._rng.randbytes(codec.SESSION_ID_BYTES)
            if wire_version == codec.WIRE_VERSION_2
            else None
        )
        self._decoder = FrameDecoder()
        self._encoded_chunks: Dict[int, bytes] = {}
        self._ack: Optional[int] = None
        self._awaiting_ack = False
        self.result: Optional[int] = None
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Paillier encryptions performed — the resume machinery exists
        #: precisely so this never exceeds len(selection)
        self.encryptions = 0
        #: chunk frames handed to the transport, re-sends included
        self.chunk_frames_sent = 0

    # -- outgoing ---------------------------------------------------------

    @property
    def total_chunks(self) -> int:
        """Number of chunk frames the full selection occupies."""
        return (len(self.selection) + self.chunk_size - 1) // self.chunk_size

    def _sequence(self, value: int) -> Optional[int]:
        return value if self.wire_version == codec.WIRE_VERSION_2 else None

    def _chunk_frame(self, index: int) -> bytes:
        """Encode chunk ``index``, encrypting at most once per chunk."""
        cached = self._encoded_chunks.get(index)
        if cached is None:
            start = index * self.chunk_size
            chunk = self.selection[start : start + self.chunk_size]
            encrypt_started = time.perf_counter()
            ciphertexts = [
                self.public_key.encrypt_raw(w, self._rng) for w in chunk
            ]
            if self.tracer is not None:
                self.tracer.record(
                    "encrypt", time.perf_counter() - encrypt_started
                )
            self.encryptions += len(chunk)
            cached = codec.encode_ciphertext_chunk(
                ciphertexts, self.key_bits, self._sequence(index)
            )
            self._encoded_chunks[index] = cached
        return cached

    def _chunk_frames_from(self, start: int) -> Iterator[bytes]:
        for index in range(start, self.total_chunks):
            data = self._chunk_frame(index)
            self.bytes_sent += len(data)
            self.chunk_frames_sent += 1
            yield data

    def initial_bytes(self) -> Iterator[bytes]:
        """The client's whole outgoing stream, chunk by chunk.

        Yields separately so a caller can interleave with socket writes
        (and so the server genuinely streams — it never needs the whole
        vector in memory at once, the §3.2 point).  Chunks are encrypted
        lazily and cached, so an interrupted stream has paid only for
        the chunks it actually produced.
        """
        hello = codec.encode_hello(
            self.key_bits,
            len(self.selection),
            self.chunk_size,
            self.session_id,
            self._sequence(0),
        )
        self.bytes_sent += len(hello)
        yield hello

        pk = codec.encode_public_key(
            self.public_key.n, self.key_bits, self._sequence(0)
        )
        self.bytes_sent += len(pk)
        yield pk

        for data in self._chunk_frames_from(0):
            yield data

    # -- resumption ---------------------------------------------------------

    def resume_request(self) -> bytes:
        """The RESUME frame to send on a fresh connection."""
        if self.session_id is None:
            raise SessionResumeError("legacy v1 sessions cannot resume")
        self._ack = None
        self._awaiting_ack = True
        data = codec.encode_resume(self.session_id)
        self.bytes_sent += len(data)
        return data

    @property
    def resume_ready(self) -> bool:
        """True once the server's ACK has been received."""
        return self._ack is not None

    def resume_bytes(self) -> Iterator[bytes]:
        """The stream to send after an ACK: only what the server lacks.

        Cached chunks are re-sent as bytes — no re-encryption.  If the
        server no longer knows the session, this degrades to the full
        :meth:`initial_bytes` stream (still reusing cached chunks).
        """
        if self._ack is None:
            raise SessionResumeError("no ACK received; send resume_request first")
        ack = self._ack
        self._ack = None
        if ack == codec.RESUME_UNKNOWN:
            for data in self.initial_bytes():
                yield data
            return
        if ack > self.total_chunks:
            raise ProtocolError(
                "server acknowledged chunk %d of %d" % (ack, self.total_chunks)
            )
        for data in self._chunk_frames_from(ack):
            yield data

    # -- incoming -----------------------------------------------------------

    def receive_bytes(self, data: bytes) -> None:
        """Consume server bytes; sets :attr:`result` when complete."""
        self.bytes_received += len(data)
        self._decoder.feed(data)
        for frame in self._decoder.frames():
            self._handle(frame)

    def _handle(self, frame: Frame) -> None:
        if frame.frame_type == FrameType.ERROR:
            code, message = codec.decode_error(frame.payload)
            exc_type = {
                codec.ERROR_CODE_POLICY: PolicyViolation,
                codec.ERROR_CODE_VALIDATION: ValidationError,
            }.get(code, ProtocolError)
            raise exc_type("server error: %s" % message)
        if frame.frame_type == FrameType.BUSY:
            hint_ms = codec.decode_busy(frame.payload)
            raise ServerBusy(
                "server is shedding load (retry after %d ms)" % hint_ms,
                retry_after_ms=hint_ms,
            )
        if frame.frame_type == FrameType.ACK:
            if not self._awaiting_ack:
                raise ProtocolError("unsolicited ACK from server")
            self._awaiting_ack = False
            self._ack = codec.decode_ack(frame.payload)
            return
        if frame.frame_type != FrameType.RESULT:
            raise ProtocolError(
                "client expected RESULT, got frame type %d" % frame.frame_type
            )
        if self.result is not None:
            raise ProtocolError("server sent more than one result")
        ciphertext = codec.decode_result(frame.payload, self.key_bits)
        decrypt_started = time.perf_counter()
        self.result = self._private_key.raw_decrypt(ciphertext)
        if self.tracer is not None:
            self.tracer.record(
                "decrypt", time.perf_counter() - decrypt_started
            )


class _ResumeState:
    """Everything the server must keep to resume one session.

    Sessions never share a live state object: what a
    :class:`ServerSession` mutates is always its private copy, and what
    sits in the :class:`SessionRegistry` is always a frozen
    :meth:`snapshot` of one — so a client that reconnects while its old
    connection is still being served can never observe (or double-fold
    into) a state another thread is mid-way through mutating.
    """

    __slots__ = (
        "key_bits",
        "chunk_size",
        "public_key",
        "aggregate",
        "received",
        "chunks_received",
        "done",
        "resident_bytes",
    )

    def __init__(self, key_bits: int, chunk_size: int, public_key: PaillierPublicKey) -> None:
        self.key_bits = key_bits
        self.chunk_size = chunk_size
        self.public_key = public_key
        self.aggregate = 1
        self.received = 0
        self.chunks_received = 0
        self.done = False
        #: what this state costs the registry's byte budget
        self.resident_bytes = resume_state_bytes(key_bits)

    def snapshot(self) -> "_ResumeState":
        """An independent copy (the public key is shared — it is never
        mutated)."""
        dup = _ResumeState(self.key_bits, self.chunk_size, self.public_key)
        dup.aggregate = self.aggregate
        dup.received = self.received
        dup.chunks_received = self.chunks_received
        dup.done = self.done
        return dup


class SessionRegistry:
    """Server-side store of resumable sessions, LRU-bounded twice over.

    One registry serves one database; share it across connections so a
    reconnecting client finds its half-finished session.  Two independent
    bounds protect server memory: ``capacity`` caps the session *count*,
    ``max_bytes`` caps the resident ciphertext *bytes* (a handful of
    4096-bit sessions can outweigh dozens of 512-bit ones, so count alone
    is not a memory bound).  Least-recently-touched sessions are evicted
    first, and an evicted session simply restarts from scratch (the ACK
    tells the client so) — resumption is an optimisation, never a
    correctness requirement.

    The registry is thread-safe: one instance is shared by every worker
    of a concurrent :class:`~repro.net.server.SpfeServer`, so all access
    to the LRU map and the byte accounting happens under an internal
    lock.  Stored states are treated as frozen — sessions save
    :meth:`_ResumeState.snapshot` copies and copy again on resume — so
    an entry read under the lock stays consistent after it is released.

    With a :class:`~repro.store.state.StateStore` attached the registry
    becomes a *journal*: every save is also written durably, a memory
    miss falls back to the journal (so a **restarted** server process
    resumes sessions its predecessor was serving), and eviction/discard
    delete the journal row too — an evicted session answers
    ``RESUME_UNKNOWN`` after a restart exactly as it does before one,
    never a stale snapshot.  Store writes happen outside the registry
    lock (lock order: registry, then store, never back).
    """

    def __init__(
        self,
        capacity: int = 64,
        max_bytes: Optional[int] = None,
        store: Optional[StateStore] = None,
    ) -> None:
        if capacity < 1:
            raise ParameterError("registry capacity must be positive")
        if max_bytes is not None and max_bytes < 1:
            raise ParameterError("registry byte budget must be positive")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.store = store
        self._lock = threading.Lock()
        self._states: "OrderedDict[bytes, _ResumeState]" = OrderedDict()
        self.evictions = 0
        #: sessions recovered from the journal after a memory miss
        #: (i.e. across a process restart)
        self.recoveries = 0
        #: resident ciphertext bytes across all stored states
        self.resident_bytes = 0

    @classmethod
    def from_policy(
        cls, policy: ServerPolicy, store: Optional[StateStore] = None
    ) -> "SessionRegistry":
        """Build a registry sized by a :class:`ServerPolicy`."""
        return cls(
            capacity=policy.max_registry_sessions,
            max_bytes=policy.max_registry_bytes,
            store=store,
        )

    @staticmethod
    def _state_bytes(state: _ResumeState) -> int:
        # getattr so the registry stays usable with stand-in states in
        # tests; real _ResumeState always carries resident_bytes.
        return getattr(state, "resident_bytes", 0)

    @staticmethod
    def _record_from_state(
        session_id: bytes, state: _ResumeState
    ) -> SessionRecord:
        return SessionRecord(
            session_id=session_id,
            key_bits=state.key_bits,
            chunk_size=state.chunk_size,
            public_n=state.public_key.n,
            aggregate=state.aggregate,
            received=state.received,
            chunks_received=state.chunks_received,
            done=state.done,
        )

    @staticmethod
    def _state_from_record(record: SessionRecord) -> _ResumeState:
        state = _ResumeState(
            record.key_bits,
            record.chunk_size,
            PaillierPublicKey(record.public_n),
        )
        state.aggregate = record.aggregate
        state.received = record.received
        state.chunks_received = record.chunks_received
        state.done = record.done
        return state

    def _evict_lru_locked(self) -> bytes:
        """Evict the LRU entry; caller holds ``self._lock``.

        Returns the evicted session id so the caller can delete the
        journal row *after* releasing the lock.
        """
        session_id, evicted = self._states.popitem(last=False)
        self.resident_bytes -= self._state_bytes(evicted)
        self.evictions += 1
        return session_id

    def _insert_locked(
        self, session_id: bytes, state: _ResumeState
    ) -> List[bytes]:
        """Insert/refresh an entry; caller holds ``self._lock``.

        Returns the session ids evicted to make room.
        """
        previous = self._states.get(session_id)
        if previous is not None:
            self.resident_bytes -= self._state_bytes(previous)
        self._states[session_id] = state
        self.resident_bytes += self._state_bytes(state)
        self._states.move_to_end(session_id)
        evicted: List[bytes] = []
        while len(self._states) > self.capacity:
            evicted.append(self._evict_lru_locked())
        if self.max_bytes is not None:
            while (
                len(self._states) > 1
                and self.resident_bytes > self.max_bytes
            ):
                evicted.append(self._evict_lru_locked())
        return evicted

    def save(self, session_id: bytes, state: _ResumeState) -> None:
        """Insert or refresh a session, evicting LRU beyond either bound.

        The newest session is never evicted on its own account: a state
        larger than ``max_bytes`` by itself still resumes, it just has
        the registry to itself.  With a store attached the snapshot is
        journalled durably *before* this method returns — which is what
        lets :meth:`ServerSession._on_chunk` guarantee that a RESULT is
        journalled before it is sent.
        """
        with self._lock:
            evicted = self._insert_locked(session_id, state)
        if self.store is not None:
            for evicted_id in evicted:
                self.store.delete_session(evicted_id)
            self.store.save_session(self._record_from_state(session_id, state))

    def get(self, session_id: bytes) -> Optional[_ResumeState]:
        """Look up (and LRU-touch) a session; None when unknown/evicted.

        On a memory miss with a store attached, the journal is
        consulted: a hit means this process restarted since the session
        was journalled, so the snapshot is rehydrated into memory and
        the resume proceeds as if the crash never happened.  Eviction
        deletes the journal row, so an evicted session stays unknown
        here — never a stale snapshot.
        """
        with self._lock:
            state = self._states.get(session_id)
            if state is not None:
                self._states.move_to_end(session_id)
                return state
        if self.store is None:
            return None
        record = self.store.load_session(session_id)
        if record is None:
            return None
        state = self._state_from_record(record)
        with self._lock:
            # A concurrent resume may have rehydrated first; prefer the
            # entry already in memory (it can only be newer).
            existing = self._states.get(session_id)
            if existing is not None:
                self._states.move_to_end(session_id)
                return existing
            evicted = self._insert_locked(session_id, state)
            self.recoveries += 1
        if self.store is not None:
            for evicted_id in evicted:
                self.store.delete_session(evicted_id)
        return state

    def discard(self, session_id: bytes) -> None:
        """Forget a session if present (memory *and* journal)."""
        with self._lock:
            state = self._states.pop(session_id, None)
            if state is not None:
                self.resident_bytes -= self._state_bytes(state)
        if self.store is not None:
            self.store.delete_session(session_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._states)

    def __contains__(self, session_id: bytes) -> bool:
        with self._lock:
            return session_id in self._states


class ServerSession:
    """The database side, as a byte-stream state machine.

    Pass a shared :class:`SessionRegistry` to make sessions resumable
    across connections; without one the server still speaks v1 and v2
    wire but answers every RESUME with "unknown, restart".

    Event-loop safety (audited for the asyncio front-end): this class
    performs **no I/O** — :meth:`receive_bytes` maps input bytes to
    output bytes and touches only per-session state, so one session may
    be driven from any single thread, including an executor thread owned
    by :class:`~repro.net.aio.AsyncSpfeServer`.  The only shared objects
    it reaches are the :class:`SessionRegistry` (every method takes the
    registry lock; its optional :class:`~repro.store.state.StateStore`
    serialises on its own connection lock), the metrics/tracer
    instruments (each mutation under the instrument's lock), and the
    :class:`~repro.crypto.engine.CryptoEngine`, whose submission path is
    already shared by the threaded worker pool.  A *single* session
    object must still not be fed from two threads at once — both
    front-ends guarantee that by construction (one connection, one
    worker thread or one handler task).
    """

    _WAIT_HELLO = "wait-hello"
    _WAIT_KEY = "wait-key"
    _RECEIVING = "receiving"
    _DONE = "done"

    def __init__(
        self,
        database: ServerDatabase,
        registry: Optional[SessionRegistry] = None,
        policy: Optional[ServerPolicy] = None,
        engine: Optional[object] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.database = database
        self.registry = registry
        #: optional :class:`~repro.obs.tracing.Tracer` recording the
        #: server's ``fold`` phase (a concurrent server shares one
        #: tracer across all of its sessions)
        self.tracer = tracer
        #: trust-boundary limits; None preserves the legacy permissive mode
        self.policy = policy
        #: optional :class:`~repro.crypto.engine.CryptoEngine`; chunks are
        #: folded with the multiexp kernel either way, the engine adds
        #: multi-process partitioning for large chunks
        self.engine = engine
        self._decoder = FrameDecoder(
            max_payload=policy.max_frame_payload if policy else None
        )
        self._state = self._WAIT_HELLO
        self._key_bits = 0
        self._chunk_size = 0
        self._public_key: Optional[PaillierPublicKey] = None
        self._aggregate = 1
        self._received = 0
        self._chunks_received = 0
        self._session_id: Optional[bytes] = None
        self._resume_state: Optional[_ResumeState] = None
        self._peer_wire_version = codec.WIRE_VERSION_1
        self.bytes_received = 0
        self.bytes_sent = 0
        #: True once a protocol violation has been answered with ERROR
        self.errored = False
        #: the exception behind :attr:`errored`, for typed accounting
        self.last_error: Optional[ProtocolError] = None
        #: chunk frames folded into the aggregate (duplicates excluded)
        self.chunk_frames_processed = 0
        #: every ciphertext seen, for transcript audits in tests
        self.ciphertext_log: List[int] = []

    @staticmethod
    def _error_code(exc: ProtocolError) -> int:
        if isinstance(exc, PolicyViolation):
            return codec.ERROR_CODE_POLICY
        if isinstance(exc, ValidationError):
            return codec.ERROR_CODE_VALIDATION
        return codec.ERROR_CODE_PROTOCOL

    def receive_bytes(self, data: bytes) -> bytes:
        """Consume client bytes; returns reply bytes (possibly empty)."""
        self.bytes_received += len(data)
        out = bytearray()
        try:
            if (
                self.policy is not None
                and self.bytes_received > self.policy.max_session_bytes
            ):
                raise PolicyViolation(
                    "session exceeded its %d-byte inbound quota"
                    % self.policy.max_session_bytes
                )
            self._decoder.feed(data)
            for frame in self._decoder.frames():
                self._peer_wire_version = frame.version
                out.extend(self._handle(frame))
        except ProtocolError as exc:
            self.errored = True
            self.last_error = exc
            if self.registry is not None and self._session_id is not None:
                # Never keep resume state for a session that violated the
                # protocol: a rejected peer must restart, not resume.
                self.registry.discard(self._session_id)
            error = codec.encode_error(
                str(exc), self._error_code(exc), self._reply_sequence()
            )
            self.bytes_sent += len(error)
            return bytes(error)
        self.bytes_sent += len(out)
        return bytes(out)

    @property
    def finished(self) -> bool:
        """True once the result has been produced."""
        return self._state == self._DONE

    def _reply_sequence(self) -> Optional[int]:
        return 0 if self._peer_wire_version == codec.WIRE_VERSION_2 else None

    # -- state machine ---------------------------------------------------------

    def _handle(self, frame: Frame) -> bytes:
        if frame.frame_type == FrameType.RESUME:
            return self._on_resume(frame)
        if self._state == self._WAIT_HELLO:
            return self._on_hello(frame)
        if self._state == self._WAIT_KEY:
            return self._on_key(frame)
        if self._state == self._RECEIVING:
            return self._on_chunk(frame)
        raise ProtocolError("unexpected frame after protocol completion")

    def _on_hello(self, frame: Frame) -> bytes:
        if frame.frame_type != FrameType.HELLO:
            raise ProtocolError("expected HELLO first")
        key_bits, database_size, chunk_size, session_id = codec.decode_hello(
            frame.payload
        )
        if self.policy is not None:
            check_hello(key_bits, database_size, chunk_size, self.policy)
        elif chunk_size < 1:
            raise ProtocolError("chunk size must be positive")
        if database_size != len(self.database):
            raise ProtocolError(
                "client assumes %d elements; this database has %d"
                % (database_size, len(self.database))
            )
        worst = database_size * (2**self.database.value_bits - 1)
        if worst.bit_length() >= key_bits:
            raise ProtocolError("key too small for the worst-case sum")
        self._key_bits = key_bits
        self._chunk_size = chunk_size
        self._session_id = session_id
        self._state = self._WAIT_KEY
        return b""

    def _on_key(self, frame: Frame) -> bytes:
        if frame.frame_type != FrameType.PUBLIC_KEY:
            raise ProtocolError("expected PUBLIC_KEY after HELLO")
        n = codec.decode_public_key(frame.payload)
        if n.bit_length() > self._key_bits:
            raise ProtocolError("public key larger than announced")
        if self.policy is not None:
            check_public_key(n, self._key_bits)
        self._public_key = PaillierPublicKey(n)
        self._state = self._RECEIVING
        if self.registry is not None and self._session_id is not None:
            # Only register once the key is known: a pre-key session has
            # nothing worth resuming, so RESUME answers "restart".  The
            # registry holds a frozen snapshot; this session keeps (and
            # mutates) its own private copy.
            self._resume_state = _ResumeState(
                self._key_bits, self._chunk_size, self._public_key
            )
            self.registry.save(self._session_id, self._resume_state.snapshot())
        return b""

    def _on_resume(self, frame: Frame) -> bytes:
        if self._state != self._WAIT_HELLO:
            raise ProtocolError("RESUME must be the first frame of a connection")
        session_id = codec.decode_resume(frame.payload)
        entry = self.registry.get(session_id) if self.registry is not None else None
        if entry is None:
            # Unknown or evicted: tell the client to start over.
            return codec.encode_ack(codec.RESUME_UNKNOWN, self._reply_sequence())
        # Copy-on-resume: work on a private copy so a second connection
        # resuming the same id (an honest client whose old read timed
        # out, reconnecting while the stale connection is still being
        # served) never shares mutable state with this one.
        state = entry.snapshot()
        self._session_id = session_id
        self._resume_state = state
        self._key_bits = state.key_bits
        self._chunk_size = state.chunk_size
        self._public_key = state.public_key
        self._aggregate = state.aggregate
        self._received = state.received
        self._chunks_received = state.chunks_received
        reply = codec.encode_ack(state.chunks_received, self._reply_sequence())
        if state.done:
            # The previous connection died between computing the result
            # and the client receiving it: re-send the result directly.
            self._state = self._DONE
            reply += codec.encode_result(
                self._aggregate, self._key_bits, self._reply_sequence()
            )
        else:
            self._state = self._RECEIVING
        return reply

    def _on_chunk(self, frame: Frame) -> bytes:
        if frame.frame_type != FrameType.ENC_CHUNK:
            raise ProtocolError("expected ENC_CHUNK")
        assert self._public_key is not None
        if frame.version == codec.WIRE_VERSION_2:
            if frame.sequence < self._chunks_received:
                return b""  # duplicate of an already-folded chunk: ignore
            if frame.sequence > self._chunks_received:
                raise ProtocolError(
                    "chunk sequence gap: got %d, expected %d"
                    % (frame.sequence, self._chunks_received)
                )
        ciphertexts = codec.decode_ciphertext_chunk(frame.payload, self._key_bits)
        if self._received + len(ciphertexts) > len(self.database):
            raise ProtocolError("client sent more ciphertexts than elements")
        nsquare = self._public_key.nsquare
        n = self._public_key.n
        batch_cts: List[int] = []
        batch_weights: List[int] = []
        for ct in ciphertexts:
            if self.policy is not None:
                check_ciphertext(ct, n, nsquare)
            elif not 0 < ct < nsquare:
                raise ProtocolError("ciphertext outside Z*_{n^2}")
            value = self.database[self._received]
            if value:
                batch_cts.append(ct)
                batch_weights.append(value)
            self.ciphertext_log.append(ct)
            self._received += 1
        if batch_cts:
            # Fold the whole chunk with the simultaneous-multiexp kernel
            # (one shared squaring chain) instead of one pow() per
            # element; an engine additionally partitions across workers.
            fold_started = time.perf_counter()
            if self.engine is not None:
                self._aggregate = self.engine.weighted_product(
                    nsquare, n, batch_cts, batch_weights, self._aggregate
                )
            else:
                self._aggregate = multi_exponent(
                    batch_cts,
                    [w % n for w in batch_weights],
                    nsquare,
                    initial=self._aggregate,
                )
            if self.tracer is not None:
                self.tracer.record("fold", time.perf_counter() - fold_started)
        self._chunks_received += 1
        self.chunk_frames_processed += 1
        done = self._received == len(self.database)
        if self._resume_state is not None:
            state = self._resume_state
            state.aggregate = self._aggregate
            state.received = self._received
            state.chunks_received = self._chunks_received
            state.done = done
            if self._session_id is not None and self.registry is not None:
                # Publish a frozen snapshot: registry entries are never
                # mutated in place, so a concurrent resume always reads
                # a self-consistent (aggregate, received) pair and can
                # never double-fold a chunk.
                self.registry.save(self._session_id, state.snapshot())
        if done:
            self._state = self._DONE
            return codec.encode_result(
                self._aggregate, self._key_bits, self._reply_sequence()
            )
        return b""


def run_sessions_in_memory(
    client: ClientSession, server: ServerSession
) -> int:
    """Drive a session pair to completion through in-memory byte handoff.

    Returns the client's decrypted sum.  (The socket variant lives in
    the tests; this helper is the transport-free reference driver.)
    """
    for outgoing in client.initial_bytes():
        reply = server.receive_bytes(outgoing)
        if reply:
            client.receive_bytes(reply)
    if client.result is None:
        raise ProtocolError("protocol completed without a result")
    return client.result


# -- transport drivers --------------------------------------------------------


def serve_over_transport(
    session: ServerSession,
    transport: Transport,
    recv_bytes: int = DEFAULT_RECV_BYTES,
) -> ServerSession:
    """Serve one connection until completion, error, or peer close.

    Transport failures (including read timeouts — the transport should
    carry a deadline so a dead peer cannot hang the server) propagate as
    typed :class:`~repro.exceptions.TransportError`\\ s.
    """
    while True:
        data = transport.recv(recv_bytes)
        if not data:
            break  # peer closed; a resumable client will reconnect
        reply = session.receive_bytes(data)
        if reply:
            transport.send(reply)
        if session.errored or session.finished:
            break
    return session


def _drain_early_replies(
    client: ClientSession, transport: Transport, recv_bytes: int
) -> None:
    """Process anything the server already said while we were streaming.

    A hardened server rejects a bad session (policy violation, invalid
    key, load shed) while the client still has chunks in flight.
    Reading eagerly between sends surfaces the typed ERROR or BUSY
    frame instead of a broken pipe on the next write.
    """
    while client.result is None and transport.recv_ready():
        data = transport.recv(recv_bytes)
        if not data:
            raise TransportError("server closed the connection mid-stream")
        client.receive_bytes(data)


def run_over_transport(
    client: ClientSession,
    transport: Transport,
    recv_bytes: int = DEFAULT_RECV_BYTES,
) -> int:
    """Run a client to completion over one connection (no reconnects)."""
    for outgoing in client.initial_bytes():
        transport.send(outgoing)
        _drain_early_replies(client, transport, recv_bytes)
    while client.result is None:
        data = transport.recv(recv_bytes)
        if not data:
            raise TransportError("server closed the connection before the result")
        client.receive_bytes(data)
    return client.result


def run_resilient(
    client: ClientSession,
    connect: Callable[[], Transport],
    policy: Optional[RetryPolicy] = None,
    rng: Optional[RandomSource] = None,
    sleep: Callable[[float], None] = time.sleep,
    recv_bytes: int = DEFAULT_RECV_BYTES,
    metrics: Optional[MetricsRegistry] = None,
) -> int:
    """Run a client to completion across reconnects and resumes.

    ``connect`` opens a fresh :class:`~repro.net.transport.Transport`
    (and may itself raise transport errors, which count as failed
    attempts).  On a transport failure mid-run the client reconnects
    under ``policy`` and resumes from the server's ACK — re-sending
    cached ciphertext chunks, never re-encrypting.  This covers a
    *restarted* server process too: a ``--state-dir`` server answers
    the RESUME from its journal, and a server that lost the session
    answers ``RESUME_UNKNOWN``, degrading to a fresh session that still
    reuses every cached ciphertext.  Protocol violations are *not*
    retried; they propagate immediately.

    A BUSY shed (:class:`~repro.exceptions.ServerBusy`) is retried on
    the policy's dedicated busy schedule — longer backoff, floored at
    the server's ``retry_after_ms`` hint — so shed clients re-enter
    gently instead of stampeding a saturated server.

    An optional ``metrics`` registry gets the same attempt/backoff/
    give-up instruments as :func:`~repro.net.transport.call_with_retry`
    plus ``repro_retry_busy_total``; a client constructed with a tracer
    additionally records a ``resume`` span per reconnect handshake.

    Raises :class:`~repro.exceptions.RetryExhausted` (with the last
    transport failure chained) when the policy gives up.
    """
    policy = policy or RetryPolicy()
    rng = as_random_source(rng)
    attempts = (
        metrics.counter(
            "repro_retry_attempts_total",
            RETRY_METRIC_HELP["repro_retry_attempts_total"],
        )
        if metrics is not None
        else None
    )
    resuming = False
    last: Optional[TransportError] = None
    for attempt in range(policy.max_attempts):
        if attempt:
            if isinstance(last, ServerBusy):
                delay = policy.busy_delay_s(attempt, rng, last.retry_after_ms)
                if metrics is not None:
                    metrics.counter(
                        "repro_retry_busy_total",
                        RETRY_METRIC_HELP["repro_retry_busy_total"],
                    ).inc()
            else:
                delay = policy.delay_s(attempt, rng)
            if metrics is not None:
                metrics.histogram(
                    "repro_retry_backoff_seconds",
                    RETRY_METRIC_HELP["repro_retry_backoff_seconds"],
                ).observe(delay)
            sleep(delay)
        if attempts is not None:
            attempts.inc()
        try:
            transport = connect()
        except TransportError as exc:
            last = exc
            continue
        try:
            if resuming:
                resume_started = time.perf_counter()
                transport.send(client.resume_request())
                while not client.resume_ready and client.result is None:
                    data = transport.recv(recv_bytes)
                    if not data:
                        raise TransportError("connection closed awaiting ACK")
                    client.receive_bytes(data)
                if client.tracer is not None:
                    client.tracer.record(
                        "resume", time.perf_counter() - resume_started
                    )
                stream = client.resume_bytes() if client.result is None else iter(())
            else:
                stream = client.initial_bytes()
            for outgoing in stream:
                transport.send(outgoing)
                _drain_early_replies(client, transport, recv_bytes)
            while client.result is None:
                data = transport.recv(recv_bytes)
                if not data:
                    raise TransportError(
                        "server closed the connection before the result"
                    )
                client.receive_bytes(data)
            return client.result
        except TransportError as exc:
            last = exc
            resuming = client.session_id is not None
        finally:
            transport.close()
    if metrics is not None:
        metrics.counter(
            "repro_retry_giveups_total",
            RETRY_METRIC_HELP["repro_retry_giveups_total"],
        ).inc()
    raise RetryExhausted(
        "gave up after %d attempts: %s" % (policy.max_attempts, last)
    ) from last
