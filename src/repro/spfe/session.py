"""Deployable client/server sessions speaking the byte-level protocol.

The protocol engines in this package (:mod:`repro.spfe.selected_sum`
and friends) run both parties in one process with modelled or measured
timing — ideal for experiments.  This module is the *deployment* shape:
two independent state machines that exchange nothing but bytes, so the
same protocol runs over a real socket, a pipe, or any transport.

* :class:`ServerSession` holds the database.  Feed it received bytes
  via :meth:`receive_bytes`; it returns the bytes to send back (empty
  until it has everything it needs).
* :class:`ClientSession` holds the selection and the key pair.
  :meth:`initial_bytes` yields the entire outgoing stream (HELLO,
  public key, encrypted chunks); :meth:`receive_bytes` consumes the
  server's reply and exposes :attr:`result`.

The tests drive a pair of sessions through ``socket.socketpair()`` —
real kernel buffers, real partial reads — and assert the sum is correct
and that the server-side transcript contains only ciphertexts.

Only the real Paillier scheme makes sense here (bytes are bytes), so
sessions are fixed to :class:`~repro.crypto.paillier.PaillierScheme`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.crypto.paillier import (
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
)
from repro.crypto.rng import RandomSource, as_random_source
from repro.datastore.database import ServerDatabase
from repro.exceptions import ProtocolError
from repro.net import codec
from repro.net.codec import Frame, FrameDecoder, FrameType

__all__ = ["ClientSession", "ServerSession", "run_sessions_in_memory"]

DEFAULT_CHUNK = 64


class ClientSession:
    """The querying side, as a byte-stream state machine."""

    def __init__(
        self,
        selection: Sequence[int],
        key_bits: int = 512,
        chunk_size: int = DEFAULT_CHUNK,
        rng: Optional[RandomSource] = None,
    ) -> None:
        if not selection:
            raise ProtocolError("selection must be non-empty")
        if any(w < 0 for w in selection):
            raise ProtocolError("selection weights must be non-negative")
        if chunk_size < 1:
            raise ProtocolError("chunk size must be positive")
        self.selection = list(selection)
        self.key_bits = key_bits
        self.chunk_size = chunk_size
        self._rng = as_random_source(rng)
        keypair = generate_keypair(key_bits, self._rng)
        self.public_key: PaillierPublicKey = keypair.public
        self._private_key: PaillierPrivateKey = keypair.private
        self._decoder = FrameDecoder()
        self.result: Optional[int] = None
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- outgoing ---------------------------------------------------------

    def initial_bytes(self) -> Iterator[bytes]:
        """The client's whole outgoing stream, chunk by chunk.

        Yields separately so a caller can interleave with socket writes
        (and so the server genuinely streams — it never needs the whole
        vector in memory at once, the §3.2 point).
        """
        hello = codec.encode_hello(
            self.key_bits, len(self.selection), self.chunk_size
        )
        self.bytes_sent += len(hello)
        yield hello

        pk = codec.encode_public_key(self.public_key.n, self.key_bits)
        self.bytes_sent += len(pk)
        yield pk

        for start in range(0, len(self.selection), self.chunk_size):
            chunk = self.selection[start : start + self.chunk_size]
            ciphertexts = [
                self.public_key.encrypt_raw(w, self._rng) for w in chunk
            ]
            data = codec.encode_ciphertext_chunk(ciphertexts, self.key_bits)
            self.bytes_sent += len(data)
            yield data

    # -- incoming -----------------------------------------------------------

    def receive_bytes(self, data: bytes) -> None:
        """Consume server bytes; sets :attr:`result` when complete."""
        self.bytes_received += len(data)
        self._decoder.feed(data)
        for frame in self._decoder.frames():
            self._handle(frame)

    def _handle(self, frame: Frame) -> None:
        if frame.frame_type == FrameType.ERROR:
            raise ProtocolError(
                "server error: %s" % frame.payload.decode("utf-8", "replace")
            )
        if frame.frame_type != FrameType.RESULT:
            raise ProtocolError(
                "client expected RESULT, got frame type %d" % frame.frame_type
            )
        if self.result is not None:
            raise ProtocolError("server sent more than one result")
        ciphertext = codec.decode_result(frame.payload, self.key_bits)
        self.result = self._private_key.raw_decrypt(ciphertext)


class ServerSession:
    """The database side, as a byte-stream state machine."""

    _WAIT_HELLO = "wait-hello"
    _WAIT_KEY = "wait-key"
    _RECEIVING = "receiving"
    _DONE = "done"

    def __init__(self, database: ServerDatabase) -> None:
        self.database = database
        self._decoder = FrameDecoder()
        self._state = self._WAIT_HELLO
        self._key_bits = 0
        self._chunk_size = 0
        self._public_key: Optional[PaillierPublicKey] = None
        self._aggregate = 1
        self._received = 0
        self.bytes_received = 0
        self.bytes_sent = 0
        #: every ciphertext seen, for transcript audits in tests
        self.ciphertext_log: List[int] = []

    def receive_bytes(self, data: bytes) -> bytes:
        """Consume client bytes; returns reply bytes (possibly empty)."""
        self.bytes_received += len(data)
        out = bytearray()
        try:
            self._decoder.feed(data)
            for frame in self._decoder.frames():
                out.extend(self._handle(frame))
        except ProtocolError as exc:
            error = codec.encode_frame(FrameType.ERROR, str(exc).encode("utf-8"))
            self.bytes_sent += len(error)
            return bytes(error)
        self.bytes_sent += len(out)
        return bytes(out)

    @property
    def finished(self) -> bool:
        return self._state == self._DONE

    # -- state machine ---------------------------------------------------------

    def _handle(self, frame: Frame) -> bytes:
        if self._state == self._WAIT_HELLO:
            return self._on_hello(frame)
        if self._state == self._WAIT_KEY:
            return self._on_key(frame)
        if self._state == self._RECEIVING:
            return self._on_chunk(frame)
        raise ProtocolError("unexpected frame after protocol completion")

    def _on_hello(self, frame: Frame) -> bytes:
        if frame.frame_type != FrameType.HELLO:
            raise ProtocolError("expected HELLO first")
        key_bits, database_size, chunk_size = codec.decode_hello(frame.payload)
        if database_size != len(self.database):
            raise ProtocolError(
                "client assumes %d elements; this database has %d"
                % (database_size, len(self.database))
            )
        worst = database_size * (2**self.database.value_bits - 1)
        if worst.bit_length() >= key_bits:
            raise ProtocolError("key too small for the worst-case sum")
        self._key_bits = key_bits
        self._chunk_size = chunk_size
        self._state = self._WAIT_KEY
        return b""

    def _on_key(self, frame: Frame) -> bytes:
        if frame.frame_type != FrameType.PUBLIC_KEY:
            raise ProtocolError("expected PUBLIC_KEY after HELLO")
        n = codec.decode_public_key(frame.payload)
        if n.bit_length() > self._key_bits:
            raise ProtocolError("public key larger than announced")
        self._public_key = PaillierPublicKey(n)
        self._state = self._RECEIVING
        return b""

    def _on_chunk(self, frame: Frame) -> bytes:
        if frame.frame_type != FrameType.ENC_CHUNK:
            raise ProtocolError("expected ENC_CHUNK")
        assert self._public_key is not None
        ciphertexts = codec.decode_ciphertext_chunk(frame.payload, self._key_bits)
        if self._received + len(ciphertexts) > len(self.database):
            raise ProtocolError("client sent more ciphertexts than elements")
        nsquare = self._public_key.nsquare
        for ct in ciphertexts:
            if not 0 < ct < nsquare:
                raise ProtocolError("ciphertext outside Z*_{n^2}")
            value = self.database[self._received]
            if value:
                self._aggregate = (
                    self._aggregate * pow(ct, value, nsquare) % nsquare
                )
            self.ciphertext_log.append(ct)
            self._received += 1
        if self._received == len(self.database):
            self._state = self._DONE
            return codec.encode_result(self._aggregate, self._key_bits)
        return b""


def run_sessions_in_memory(
    client: ClientSession, server: ServerSession
) -> int:
    """Drive a session pair to completion through in-memory byte handoff.

    Returns the client's decrypted sum.  (The socket variant lives in
    the tests; this helper is the transport-free reference driver.)
    """
    for outgoing in client.initial_bytes():
        reply = server.receive_bytes(outgoing)
        if reply:
            client.receive_bytes(reply)
    if client.result is None:
        raise ProtocolError("protocol completed without a result")
    return client.result
