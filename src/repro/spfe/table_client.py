"""Column-oriented private statistics over a :class:`~repro.datastore.
table.Table`.

The ergonomic top layer for the paper's motivating use case: a client
names a column and supplies a private row selection; every statistic
routes through the selected-sum protocol against the right server-side
view (the raw column, its square, or a product column).

    >>> from repro.datastore.table import Table
    >>> table = Table({"age": [30, 40, 50], "bp": [110, 120, 140]},
    ...               value_bits=16)
    >>> client = PrivateTableClient(table)
    >>> client.mean("age", [1, 0, 1]).value
    40.0
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.datastore.table import Table
from repro.spfe.base import SelectedSumBase
from repro.spfe.context import ExecutionContext
from repro.spfe.statistics import PrivateStatisticsClient, StatisticResult

__all__ = ["PrivateTableClient"]


class PrivateTableClient:
    """Private per-column statistics over a named-column table."""

    def __init__(
        self,
        table: Table,
        context: Optional[ExecutionContext] = None,
        protocol_factory: Optional[
            Callable[[ExecutionContext], SelectedSumBase]
        ] = None,
    ) -> None:
        self.table = table
        self._stats = PrivateStatisticsClient(context, protocol_factory)

    @property
    def ctx(self) -> ExecutionContext:
        return self._stats.ctx

    # -- single-column statistics ------------------------------------------

    def sum(self, column: str, selection: Sequence[int]) -> StatisticResult:
        """Private sum of a column over a 0/1 row selection."""
        return self._stats.sum(self.table.column(column), selection)

    def mean(self, column: str, selection: Sequence[int]) -> StatisticResult:
        """Private mean of a column over a row selection."""
        return self._stats.mean(self.table.column(column), selection)

    def variance(
        self, column: str, selection: Sequence[int], ddof: int = 0
    ) -> StatisticResult:
        """Private variance of a column (ddof=0 population, 1 sample)."""
        return self._stats.variance(self.table.column(column), selection, ddof)

    def std(
        self, column: str, selection: Sequence[int], ddof: int = 0
    ) -> StatisticResult:
        """Private standard deviation of a column."""
        return self._stats.std(self.table.column(column), selection, ddof)

    def weighted_sum(
        self, column: str, weights: Sequence[int]
    ) -> StatisticResult:
        """Private weighted sum of a column."""
        return self._stats.weighted_sum(self.table.column(column), weights)

    def weighted_average(
        self, column: str, weights: Sequence[int]
    ) -> StatisticResult:
        """Private weighted average of a column."""
        return self._stats.weighted_average(self.table.column(column), weights)

    # -- two-column statistics ------------------------------------------------

    def covariance(
        self,
        x_column: str,
        y_column: str,
        selection: Sequence[int],
        ddof: int = 0,
    ) -> StatisticResult:
        """Private covariance of two columns over a row selection."""
        return self._stats.covariance(
            self.table.column(x_column),
            self.table.column(y_column),
            selection,
            ddof,
        )

    def correlation(
        self, x_column: str, y_column: str, selection: Sequence[int]
    ) -> StatisticResult:
        """Private Pearson correlation of two columns."""
        return self._stats.correlation(
            self.table.column(x_column), self.table.column(y_column), selection
        )

    # -- bulk convenience ---------------------------------------------------------

    def describe(self, column: str, selection: Sequence[int]) -> dict:
        """mean/variance/std of a column in one call (three sums total).

        Reuses the two underlying sum runs rather than re-running per
        statistic.
        """
        m = self._stats.count(selection)
        var = self.variance(column, selection)
        run_sum = var.runs[0]
        mean = run_sum.value / m
        std = var.value**0.5 if var.value > 0 else 0.0
        return {
            "count": m,
            "mean": mean,
            "variance": var.value,
            "std": std,
            "runs": var.runs,
        }
