"""Private statistics built on the selected-sum primitive — paper §1.

"Such protocols immediately yield private solutions for computing means,
variances, and weighted averages, which can be useful on their own or as
part of a larger privacy-preserving distributed data mining protocol."

This module is that layer: every statistic decomposes into one or two
private selected sums, so each inherits the protocol's privacy
guarantees verbatim.

* mean      = Σ_S x / m                      (one sum; the client knows m)
* variance  = Σ_S x² / m − mean²             (two sums; the server serves
  a squared view of its database — computed locally from its own data,
  so no extra privacy surface)
* weighted sum / average: the paper's §2 remark — "integer weights in
  some larger range could be used to produce a weighted sum" — the same
  protocol run with weights in place of the 0/1 bits.
* covariance of two server columns: one extra sum over the element-wise
  product column.

The protocol variant is pluggable, so statistics can run over the plain,
batched, preprocessed, or combined protocol unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.datastore.database import ServerDatabase, elementwise_product
from repro.exceptions import ParameterError, ProtocolError
from repro.spfe.base import SelectedSumBase
from repro.spfe.context import ExecutionContext
from repro.spfe.result import SumRunResult
from repro.spfe.selected_sum import SelectedSumProtocol
from repro.timing.report import TimingBreakdown

__all__ = ["StatisticResult", "PrivateStatisticsClient", "elementwise_product"]


@dataclass
class StatisticResult:
    """A private statistic plus the protocol runs that produced it.

    Attributes:
        name: statistic identifier ("mean", "variance", ...).
        value: the statistic (float; exact sums are ints in ``runs``).
        runs: the underlying selected-sum protocol runs.
    """

    name: str
    value: float
    runs: List[SumRunResult] = field(default_factory=list)

    @property
    def total_breakdown(self) -> TimingBreakdown:
        total = TimingBreakdown()
        for run in self.runs:
            total = total.add(run.breakdown)
        return total

    @property
    def makespan_s(self) -> float:
        """Runs execute sequentially (one client, one server)."""
        return sum(run.makespan_s for run in self.runs)

    @property
    def total_bytes(self) -> int:
        return sum(run.total_bytes for run in self.runs)


class PrivateStatisticsClient:
    """Client-side API for private statistics over a remote database.

    Args:
        context: execution context (scheme/link/profiles); defaults to a
            modelled cluster context.
        protocol_factory: which protocol variant to run each sum with
            (default: the plain protocol; pass e.g.
            ``lambda ctx: CombinedSelectedSumProtocol(ctx)`` to use the
            optimized pipeline).
    """

    def __init__(
        self,
        context: Optional[ExecutionContext] = None,
        protocol_factory: Optional[
            Callable[[ExecutionContext], SelectedSumBase]
        ] = None,
    ) -> None:
        self.ctx = context if context is not None else ExecutionContext()
        self._factory = protocol_factory or (lambda ctx: SelectedSumProtocol(ctx))

    # -- internals ----------------------------------------------------------

    def _run_sum(
        self, database: ServerDatabase, selection: Sequence[int]
    ) -> SumRunResult:
        return self._factory(self.ctx).run(database, selection)

    @staticmethod
    def _check_selection(selection: Sequence[int]) -> int:
        m = sum(1 for w in selection if w)
        if m == 0:
            raise ParameterError("selection is empty; statistics undefined")
        return m

    # -- statistics ----------------------------------------------------------

    def sum(
        self, database: ServerDatabase, selection: Sequence[int]
    ) -> StatisticResult:
        """Private Σ_{i in S} x_i for a 0/1 selection vector."""
        run = self._run_sum(database, selection)
        return StatisticResult("sum", float(run.value), [run])

    def count(self, selection: Sequence[int]) -> int:
        """m is client knowledge (it chose the selection) — no protocol."""
        return sum(1 for w in selection if w)

    def mean(
        self, database: ServerDatabase, selection: Sequence[int]
    ) -> StatisticResult:
        """Private mean of the selected elements."""
        m = self._check_selection(selection)
        run = self._run_sum(database, selection)
        return StatisticResult("mean", run.value / m, [run])

    def variance(
        self,
        database: ServerDatabase,
        selection: Sequence[int],
        ddof: int = 0,
    ) -> StatisticResult:
        """Private variance via two sums: Σx and Σx² (squared view).

        ``ddof=0`` gives the population variance, ``ddof=1`` the sample
        variance.
        """
        m = self._check_selection(selection)
        if m - ddof <= 0:
            raise ParameterError(
                "need more than %d selected elements for ddof=%d" % (ddof, ddof)
            )
        run_sum = self._run_sum(database, selection)
        run_sq = self._run_sum(database.squared(), selection)
        mean = run_sum.value / m
        variance = (run_sq.value - m * mean * mean) / (m - ddof)
        return StatisticResult("variance", variance, [run_sum, run_sq])

    def std(
        self,
        database: ServerDatabase,
        selection: Sequence[int],
        ddof: int = 0,
    ) -> StatisticResult:
        """Private standard deviation (sqrt of :meth:`variance`)."""
        var = self.variance(database, selection, ddof)
        value = math.sqrt(var.value) if var.value > 0 else 0.0
        return StatisticResult("std", value, var.runs)

    def weighted_sum(
        self, database: ServerDatabase, weights: Sequence[int]
    ) -> StatisticResult:
        """Private Σ w_i x_i with non-negative integer weights."""
        run = self._run_sum(database, weights)
        return StatisticResult("weighted_sum", float(run.value), [run])

    def weighted_average(
        self, database: ServerDatabase, weights: Sequence[int]
    ) -> StatisticResult:
        """Private Σ w_i x_i / Σ w_i (the client knows its own weights)."""
        total_weight = sum(weights)
        if total_weight <= 0:
            raise ParameterError("weights sum to zero; average undefined")
        run = self._run_sum(database, weights)
        return StatisticResult("weighted_average", run.value / total_weight, [run])

    def covariance(
        self,
        x: ServerDatabase,
        y: ServerDatabase,
        selection: Sequence[int],
        ddof: int = 0,
    ) -> StatisticResult:
        """Private covariance of two server columns over a selection.

        cov = Σ x_i y_i / m − mean_x · mean_y  (three private sums; the
        product column is served by the server like the squared view).
        """
        m = self._check_selection(selection)
        if m - ddof <= 0:
            raise ParameterError(
                "need more than %d selected elements for ddof=%d" % (ddof, ddof)
            )
        run_x = self._run_sum(x, selection)
        run_y = self._run_sum(y, selection)
        run_xy = self._run_sum(elementwise_product(x, y), selection)
        mean_x = run_x.value / m
        mean_y = run_y.value / m
        cov = (run_xy.value - m * mean_x * mean_y) / (m - ddof)
        return StatisticResult("covariance", cov, [run_x, run_y, run_xy])

    def correlation(
        self,
        x: ServerDatabase,
        y: ServerDatabase,
        selection: Sequence[int],
    ) -> StatisticResult:
        """Pearson correlation, composed from private moments."""
        cov = self.covariance(x, y, selection)
        std_x = self.std(x, selection)
        std_y = self.std(y, selection)
        denominator = std_x.value * std_y.value
        if denominator == 0:
            raise ProtocolError("zero variance; correlation undefined")
        runs = cov.runs + std_x.runs + std_y.runs
        return StatisticResult("correlation", cov.value / denominator, runs)
