"""Homomorphic private information retrieval — the sublinear direction.

The paper implements the *linear-communication* SPFE solution; the work
it builds on (Canetti et al. [5]) also gives sublinear-communication
solutions, whose engine is single-server computational PIR.  This module
implements that engine on the same Paillier substrate:

* :class:`LinearPIRProtocol` — retrieval of one element as a degenerate
  selected sum (a 0/1 vector with a single 1): Θ(n) upload, one
  ciphertext down.
* :class:`SquareRootPIRProtocol` — the Kushilevitz–Ostrovsky folding:
  the server arranges its n elements in a √n x √n grid; the client sends
  an encrypted *row* indicator (√n ciphertexts); the server returns, for
  every column, the homomorphic fold of that column against the
  indicator — √n ciphertexts, each an encryption of one element of the
  chosen row.  The client decrypts the column it wants.  Total
  communication Θ(√n) instead of Θ(n).

Both provide full client privacy (the server sees only ciphertexts).
Database privacy differs: √n-PIR reveals the whole retrieved *row* to
the client (standard for PIR, which protects the *client*); the result
metadata says so explicitly.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.datastore.database import ServerDatabase
from repro.exceptions import ParameterError
from repro.spfe.base import MSG_ENC_INDEX, MSG_RESULT, SelectedSumBase
from repro.spfe.context import CLIENT, SERVER
from repro.spfe.result import SumRunResult
from repro.spfe.selected_sum import SelectedSumProtocol
from repro.timing.clock import VirtualClock
from repro.timing.costmodel import Op
from repro.timing.report import TimingBreakdown

__all__ = ["LinearPIRProtocol", "SquareRootPIRProtocol"]


class LinearPIRProtocol:
    """Single-element retrieval as a one-hot selected sum."""

    protocol_name = "pir-linear"

    def __init__(self, context=None) -> None:
        self._inner = SelectedSumProtocol(context)
        self.ctx = self._inner.ctx

    def retrieve(self, database: ServerDatabase, index: int) -> SumRunResult:
        """Privately fetch ``database[index]``."""
        if not 0 <= index < len(database):
            raise ParameterError("index %d out of range" % index)
        selection = [0] * len(database)
        selection[index] = 1
        result = self._inner.run(database, selection)
        result.metadata["retrieved_index"] = index
        result.metadata["reveals_to_client"] = "one element"
        return result


class SquareRootPIRProtocol(SelectedSumBase):
    """Two-level PIR with Θ(√n) communication (Kushilevitz–Ostrovsky
    style, instantiated with additively homomorphic encryption)."""

    protocol_name = "pir-sqrt"

    def grid_shape(self, n: int) -> Tuple[int, int]:
        """(rows, cols) of the server's grid: cols = ceil(sqrt(n))."""
        cols = max(1, math.isqrt(n))
        if cols * cols < n:
            cols += 1
        rows = (n + cols - 1) // cols
        return rows, cols

    def retrieve(self, database: ServerDatabase, index: int) -> SumRunResult:
        """Privately fetch ``database[index]`` with Θ(√n) communication."""
        ctx = self.ctx
        scheme = ctx.scheme
        n = len(database)
        if not 0 <= index < n:
            raise ParameterError("index %d out of range" % index)
        rows, cols = self.grid_shape(n)
        target_row, target_col = divmod(index, cols)

        keypair, keygen_s = ctx.generate_keypair(CLIENT)
        public, private = keypair.public, keypair.private
        # Capacity: the fold is sum of a one-hot against one column.
        if 2**database.value_bits >= scheme.plaintext_modulus(public):
            raise ParameterError("element range exceeds plaintext space")

        channel = ctx.new_channel()
        client_clock = VirtualClock()
        server_clock = VirtualClock()

        t_pk = channel.client_send(self.public_key_message(public), client_clock.now)
        server_clock.wait_until(t_pk)
        channel.server_recv()

        # Client: encrypted one-hot ROW indicator (rows ciphertexts).
        indicator = [1 if r == target_row else 0 for r in range(rows)]
        with ctx.compute(CLIENT, Op.ENCRYPT, rows) as enc_block:
            enc_indicator = scheme.encrypt_vector(public, indicator, ctx.rng)
        client_clock.advance(enc_block.seconds)

        send_started = client_clock.now
        last_arrival = send_started
        for ct in enc_indicator:
            msg = self.ciphertext_message(MSG_ENC_INDEX, ct, public, CLIENT)
            last_arrival = channel.client_send(msg, client_clock.now)
        comm_s = (last_arrival - send_started) + t_pk
        server_clock.wait_until(last_arrival)
        received = [channel.server_recv()[0].payload for _ in enc_indicator]

        # Server: fold every column against the indicator.
        with ctx.compute(SERVER, Op.WEIGHTED_STEP, rows * cols) as srv_block:
            column_folds = []
            for c in range(cols):
                column = [
                    database[r * cols + c] if r * cols + c < n else 0
                    for r in range(rows)
                ]
                column_folds.append(
                    scheme.weighted_product(public, received, column)
                )
        server_clock.advance(srv_block.seconds)

        # Server returns one ciphertext per column (the chosen row,
        # encrypted element-wise).
        reply_started = server_clock.now
        arrival = reply_started
        for fold in column_folds:
            msg = self.ciphertext_message(MSG_RESULT, fold, public, SERVER)
            arrival = channel.server_send(msg, server_clock.now)
        comm_s += arrival - reply_started
        client_clock.wait_until(arrival)
        payloads = [channel.client_recv()[0].payload for _ in column_folds]

        # Client decrypts only the column it needs (could decrypt all —
        # the whole row is information-theoretically in its hands).
        with ctx.compute(CLIENT, Op.DECRYPT, 1) as dec_block:
            value = scheme.decrypt(private, payloads[target_col])
        client_clock.advance(dec_block.seconds)

        breakdown = TimingBreakdown(
            client_encrypt_s=enc_block.seconds,
            server_compute_s=srv_block.seconds,
            communication_s=comm_s,
            client_decrypt_s=dec_block.seconds,
        )
        result = self.build_result(
            value=value,
            database=database,
            m=1,
            breakdown=breakdown,
            makespan_s=client_clock.now,
            channel=channel,
            metadata={
                "keygen_s": keygen_s,
                "grid": (rows, cols),
                "retrieved_index": index,
                "reveals_to_client": "one row (%d elements)" % cols,
                "uplink_ciphertexts": rows,
                "downlink_ciphertexts": cols,
                "channel": channel,
            },
        )
        return result
