"""Combined optimizations: preprocessing + batching — paper §3.4.

"The batching of index vector optimization reduces the server's idle
time while preprocessing the vector of indices reduces the client's
on-line encryption time.  Combining these optimizations results in an
overall on-line runtime reduction of about 94%."

With the client's online work reduced to pool fetches and the chunks
pipelined, the makespan collapses to (roughly) the largest single
resource total — on the cluster that is the server's product pass, which
is why Figure 7 shows the combined runtime at a few percent of the
unoptimized one.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.crypto.scheme import SchemeKeyPair
from repro.datastore.database import ServerDatabase
from repro.exceptions import ParameterError, ProtocolError
from repro.spfe.base import MSG_ENC_INDEX, MSG_RESULT, SelectedSumBase
from repro.spfe.batching import PAPER_BATCH_SIZE
from repro.spfe.context import CLIENT, SERVER
from repro.spfe.preprocessing import EncryptionPool
from repro.spfe.result import SumRunResult
from repro.timing.clock import VirtualClock
from repro.timing.costmodel import Op
from repro.timing.report import TimingBreakdown

__all__ = ["CombinedSelectedSumProtocol"]


class CombinedSelectedSumProtocol(SelectedSumBase):
    """Preprocessed pool + chunked pipeline in one protocol."""

    protocol_name = "combined"

    def __init__(
        self,
        context=None,
        batch_size: int = PAPER_BATCH_SIZE,
        pool_zeros: Optional[int] = None,
        pool_ones: Optional[int] = None,
    ) -> None:
        super().__init__(context)
        if batch_size < 1:
            raise ParameterError("batch size must be positive")
        self.batch_size = batch_size
        self.pool_zeros = pool_zeros
        self.pool_ones = pool_ones

    def run(
        self,
        database: ServerDatabase,
        selection: Sequence[int],
        keypair: Optional[SchemeKeyPair] = None,
    ) -> SumRunResult:
        """Execute pool-fetch + pipelined chunks (see class docstring)."""
        ctx = self.ctx
        scheme = ctx.scheme
        m = self.validate_inputs(database, selection)
        if any(w not in (0, 1) for w in selection):
            raise ProtocolError("combined protocol requires a 0/1 selection")

        keygen_s = 0.0
        if keypair is None:
            keypair, keygen_s = ctx.generate_keypair(CLIENT)
        public, private = keypair.public, keypair.private
        self.check_capacity(database, selection, public)

        # Offline: fill the pool (§3.3).
        zeros = self.pool_zeros if self.pool_zeros is not None else len(database)
        ones = self.pool_ones if self.pool_ones is not None else len(database)
        pool = EncryptionPool(scheme, public, ctx.rng)
        with ctx.compute(CLIENT, Op.ENCRYPT, zeros + ones) as off_block:
            pool.fill(zeros, ones)

        # Online: pipelined chunks of pool fetches (§3.2 + §3.3).
        channel = ctx.new_channel()
        client_clock = VirtualClock()
        server_clock = VirtualClock()

        t_pk = channel.client_send(self.public_key_message(public), client_clock.now)
        server_clock.wait_until(t_pk)
        channel.server_recv()
        comm_s = t_pk

        fetch_s = 0.0
        server_s = 0.0
        misses_so_far = 0
        aggregate = scheme.identity(public)

        for offset, values in database.chunks(self.batch_size):
            bits = selection[offset : offset + len(values)]

            with ctx.compute(CLIENT, Op.POOL_FETCH, len(bits)) as fetch_block:
                chunk_cts = [pool.take(bit) for bit in bits]
            chunk_seconds = fetch_block.seconds
            new_misses = pool.misses - misses_so_far
            if new_misses:
                with ctx.compute(CLIENT, Op.ENCRYPT, new_misses) as miss_block:
                    pass
                chunk_seconds += miss_block.seconds
                misses_so_far = pool.misses
            client_clock.advance(chunk_seconds)
            fetch_s += chunk_seconds

            message = self.vector_message(MSG_ENC_INDEX, chunk_cts, public, CLIENT)
            arrival = channel.client_send(message, client_clock.now)
            comm_s += ctx.link.seconds_per_message(message.wire_bytes)

            server_clock.wait_until(arrival)
            received = channel.server_recv()[0].payload
            with ctx.compute(SERVER, Op.WEIGHTED_STEP, len(values)) as srv_block:
                aggregate = scheme.weighted_product(
                    public, received, values, initial=aggregate
                )
            server_clock.advance(srv_block.seconds)
            server_s += srv_block.seconds

        result_message = self.ciphertext_message(MSG_RESULT, aggregate, public, SERVER)
        reply_started = server_clock.now
        arrival = channel.server_send(result_message, server_clock.now)
        comm_s += arrival - reply_started
        client_clock.wait_until(arrival)
        payload = channel.client_recv()[0].payload

        with ctx.compute(CLIENT, Op.DECRYPT, 1) as dec_block:
            value = scheme.decrypt(private, payload)
        client_clock.advance(dec_block.seconds)

        breakdown = TimingBreakdown(
            client_encrypt_s=fetch_s,
            server_compute_s=server_s,
            communication_s=comm_s,
            client_decrypt_s=dec_block.seconds,
            offline_precompute_s=off_block.seconds,
        )
        return self.build_result(
            value=value,
            database=database,
            m=m,
            breakdown=breakdown,
            makespan_s=client_clock.now,
            channel=channel,
            metadata={
                "keygen_s": keygen_s,
                "batch_size": self.batch_size,
                "pool_misses": pool.misses,
                "channel": channel,
            },
        )
