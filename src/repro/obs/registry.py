"""Thread-safe metric instruments: counters, gauges, histograms.

The paper is an *experimental analysis* — measurement is the entire
contribution — yet until this module every layer of the codebase kept
its own private tallies (``ServerStats`` dicts, engine batch counters,
per-session byte fields) that could not be observed from outside the
process.  :class:`MetricsRegistry` is the one shared instrument rack:
every subsystem registers named instruments here, and the exposition
layer (:mod:`repro.obs.exposition`, :mod:`repro.obs.http`) renders a
consistent snapshot of all of them on demand.

Design constraints, in order:

* **No third-party dependencies.**  The container bakes in only the
  standard library, so this is a from-scratch implementation of the
  Prometheus data model's useful core: monotonic counters, settable
  gauges, and histograms with *fixed* bucket boundaries.
* **Thread-safe by construction.**  Instruments are shared by the
  server's worker pool, the accept loop, and the stats endpoint's HTTP
  threads; every mutation happens under the owning object's lock, and
  ``seclint`` rule SEC004 enforces the discipline mechanically (the
  guarded attributes are registered in
  :class:`~repro.analysis.config.AnalysisConfig.lock_guards`).
* **Cheap on the hot path.**  A counter bump is one lock acquisition
  and one integer add — measured in
  ``benchmarks/test_obs_overhead.py`` so future PRs can cite the cost
  of instrumenting a new path instead of guessing.

Instruments are identified by ``(name, labels)``: the same metric name
may appear once per distinct label set (e.g. one
``repro_phase_seconds`` histogram per ``phase`` label), and
:meth:`MetricsRegistry.collect` groups them for exposition.
"""

from __future__ import annotations

import math
import re
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricSnapshot",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default bucket upper bounds (seconds) for latency histograms —
#: spanning sub-millisecond counter bumps to multi-second modular
#: exponentiation batches at large key sizes.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: canonical label storage: a sorted tuple of (name, value) pairs
LabelSet = Tuple[Tuple[str, str], ...]


def _canonical_labels(labels: Optional[Mapping[str, str]]) -> LabelSet:
    """Validate and freeze a label mapping into its canonical tuple."""
    if not labels:
        return ()
    out = []
    for name in sorted(labels):
        if not _LABEL_NAME_RE.match(name):
            raise ParameterError("invalid label name %r" % name)
        out.append((name, str(labels[name])))
    return tuple(out)


@dataclass(frozen=True)
class MetricSnapshot:
    """A consistent point-in-time copy of one instrument.

    ``kind`` is ``"counter"``, ``"gauge"``, or ``"histogram"``.  For
    scalar instruments only ``value`` is set; histograms carry
    ``bucket_counts`` (cumulative, aligned with ``bucket_bounds`` plus
    an implicit ``+Inf``), ``sum_value``, and ``count``.
    """

    name: str
    kind: str
    help_text: str
    labels: LabelSet = ()
    value: float = 0.0
    bucket_bounds: Tuple[float, ...] = ()
    bucket_counts: Tuple[int, ...] = ()
    sum_value: float = 0.0
    count: int = 0


class _Instrument:
    """Shared identity (name, help, labels) and lock for all instruments."""

    kind = "instrument"

    def __init__(
        self, name: str, help_text: str, labels: LabelSet
    ) -> None:
        if not _METRIC_NAME_RE.match(name):
            raise ParameterError("invalid metric name %r" % name)
        self.name = name
        self.help_text = help_text
        self.labels = labels
        self._lock = threading.Lock()

    def snapshot(self) -> MetricSnapshot:
        """A frozen copy for exposition (concrete instruments only)."""
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing count (events, bytes, retries)."""

    kind = "counter"

    def __init__(
        self, name: str, help_text: str = "", labels: LabelSet = ()
    ) -> None:
        super().__init__(name, help_text, labels)
        self._value = 0

    def inc(self, amount: int = 1) -> int:
        """Add ``amount`` (>= 0); returns the new total."""
        if amount < 0:
            raise ParameterError("counters only go up (amount=%d)" % amount)
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> int:
        """The current total."""
        with self._lock:
            return self._value

    def snapshot(self) -> MetricSnapshot:
        """A frozen copy for exposition."""
        return MetricSnapshot(
            self.name, self.kind, self.help_text, self.labels,
            value=self.value,
        )


class Gauge(_Instrument):
    """A value that can go up and down (in-flight sessions, pool size)."""

    kind = "gauge"

    def __init__(
        self, name: str, help_text: str = "", labels: LabelSet = ()
    ) -> None:
        super().__init__(name, help_text, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> float:
        """Add ``amount`` (may be negative); returns the new value."""
        with self._lock:
            self._value += amount
            return self._value

    def dec(self, amount: float = 1.0) -> float:
        """Subtract ``amount``; returns the new value."""
        return self.inc(-amount)

    @property
    def value(self) -> float:
        """The current value."""
        with self._lock:
            return self._value

    def snapshot(self) -> MetricSnapshot:
        """A frozen copy for exposition."""
        return MetricSnapshot(
            self.name, self.kind, self.help_text, self.labels,
            value=self.value,
        )


class Histogram(_Instrument):
    """Observations bucketed under fixed upper bounds.

    Buckets are declared once at construction (strictly increasing,
    finite); an implicit ``+Inf`` bucket catches the tail, so
    ``observe`` never loses a value.  Exposition follows the Prometheus
    convention: cumulative bucket counts, a running sum, and a total
    count.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels: LabelSet = (),
    ) -> None:
        super().__init__(name, help_text, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ParameterError("histogram needs at least one bucket bound")
        if any(math.isnan(b) or math.isinf(b) for b in bounds):
            raise ParameterError("bucket bounds must be finite (+Inf is implicit)")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ParameterError("bucket bounds must be strictly increasing")
        self.bucket_bounds = bounds
        # one slot per finite bound plus the +Inf tail, non-cumulative
        self._bucket_counts = [0] * (len(bounds) + 1)
        self._sum_value = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = len(self.bucket_bounds)
        for position, bound in enumerate(self.bucket_bounds):
            if value <= bound:
                index = position
                break
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum_value += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum_value(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum_value

    def snapshot(self) -> MetricSnapshot:
        """A frozen copy with *cumulative* bucket counts."""
        with self._lock:
            raw = list(self._bucket_counts)
            total = self._count
            observed_sum = self._sum_value
        cumulative: List[int] = []
        running = 0
        for bucket_count in raw:
            running += bucket_count
            cumulative.append(running)
        return MetricSnapshot(
            self.name, self.kind, self.help_text, self.labels,
            bucket_bounds=self.bucket_bounds,
            bucket_counts=tuple(cumulative),
            sum_value=observed_sum,
            count=total,
        )


class MetricsRegistry:
    """Get-or-create home for every instrument of one process/server.

    Instruments are keyed by ``(name, labels)``; asking twice returns
    the same object, and asking for an existing name with a different
    instrument kind (or different histogram buckets) is a
    :class:`~repro.exceptions.ParameterError` — a registry never holds
    two contradictory definitions of one metric.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[Tuple[str, LabelSet], _Instrument]" = {}
        #: instrument kind per metric *name*: label variants of one name
        #: must agree on kind or the exposition grouping breaks
        self._kinds: Dict[str, str] = {}

    def _get_or_create(
        self,
        key: Tuple[str, LabelSet],
        factory: "Callable[[], _Instrument]",
        kind: str,
    ) -> _Instrument:
        with self._lock:
            declared = self._kinds.get(key[0])
            if declared is not None and declared != kind:
                raise ParameterError(
                    "metric %r is a %s, not a %s" % (key[0], declared, kind)
                )
            existing = self._metrics.get(key)
            if existing is not None:
                return existing
            instrument = factory()
            self._metrics[key] = instrument
            self._kinds[key[0]] = kind
            return instrument

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        """Get or create the :class:`Counter` for ``(name, labels)``."""
        frozen = _canonical_labels(labels)
        instrument = self._get_or_create(
            (name, frozen),
            lambda: Counter(name, help_text, frozen),
            Counter.kind,
        )
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        """Get or create the :class:`Gauge` for ``(name, labels)``."""
        frozen = _canonical_labels(labels)
        instrument = self._get_or_create(
            (name, frozen),
            lambda: Gauge(name, help_text, frozen),
            Gauge.kind,
        )
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        """Get or create the :class:`Histogram` for ``(name, labels)``.

        Re-requesting an existing histogram with different bucket
        bounds is rejected: two views of one metric must bucket alike.
        """
        frozen = _canonical_labels(labels)
        instrument = self._get_or_create(
            (name, frozen),
            lambda: Histogram(name, help_text, buckets, frozen),
            Histogram.kind,
        )
        assert isinstance(instrument, Histogram)
        if instrument.bucket_bounds != tuple(float(b) for b in buckets):
            raise ParameterError(
                "histogram %r already registered with buckets %r"
                % (name, instrument.bucket_bounds)
            )
        return instrument

    def collect(self) -> List[MetricSnapshot]:
        """Snapshots of every instrument, sorted by (name, labels).

        Each snapshot is internally consistent (taken under its
        instrument's lock); the collection as a whole is a best-effort
        point in time, which is all a scrape can promise.
        """
        with self._lock:
            instruments = list(self._metrics.values())
        snapshots = [instrument.snapshot() for instrument in instruments]
        snapshots.sort(key=lambda snap: (snap.name, snap.labels))
        return snapshots
