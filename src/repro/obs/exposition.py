"""Exposition formats: Prometheus text format and structured JSON.

Two renderings of one :class:`~repro.obs.registry.MetricsRegistry`
snapshot:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4): ``# HELP``/``# TYPE`` headers once per metric name,
  one sample line per instrument, histograms expanded into cumulative
  ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.  This is
  what the ``/metrics`` endpoint serves and what the CI scrape job
  validates line by line.
* :func:`render_json` / :func:`render_json_text` — a structured dump
  for programmatic consumers: the CLI's ``--metrics-json`` flag, the
  ``/metrics.json`` endpoint, and the ``repro stats`` pretty-printer.
  The JSON round-trips: parsing it recovers every value the registry
  held (asserted by the exposition tests).

Escaping follows the Prometheus spec exactly — backslash and newline
in HELP text; backslash, double-quote, and newline in label values —
because a single malformed line makes a scraper drop the whole page.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.registry import LabelSet, MetricsRegistry, MetricSnapshot

__all__ = [
    "render_prometheus",
    "render_json",
    "render_json_text",
    "PROMETHEUS_CONTENT_TYPE",
    "JSON_CONTENT_TYPE",
]

#: the content type Prometheus scrapers expect from /metrics
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Render a sample value: integral floats as integers, rest as repr."""
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labels: LabelSet, extra: str = "") -> str:
    """``{a="x",b="y"}`` (or ``""`` when there is nothing to render)."""
    parts = [
        '%s="%s"' % (name, _escape_label_value(value))
        for name, value in labels
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{%s}" % ",".join(parts)


def _format_bound(bound: float) -> str:
    """A ``le`` bound: integral bounds render bare, the tail as +Inf."""
    return _format_value(bound)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format (0.0.4).

    Instruments sharing a name (label variants of one metric) are
    grouped under a single ``# HELP``/``# TYPE`` header, as the format
    requires.  The output always ends with a newline — scrapers treat
    a missing trailing newline as truncation.
    """
    lines: List[str] = []
    seen_headers: set = set()
    for snap in registry.collect():
        if snap.name not in seen_headers:
            seen_headers.add(snap.name)
            if snap.help_text:
                lines.append(
                    "# HELP %s %s" % (snap.name, _escape_help(snap.help_text))
                )
            lines.append("# TYPE %s %s" % (snap.name, snap.kind))
        if snap.kind == "histogram":
            lines.extend(_histogram_lines(snap))
        else:
            lines.append(
                "%s%s %s"
                % (snap.name, _format_labels(snap.labels),
                   _format_value(snap.value))
            )
    return "\n".join(lines) + "\n" if lines else "\n"


def _histogram_lines(snap: MetricSnapshot) -> List[str]:
    lines = []
    bounds = [_format_bound(b) for b in snap.bucket_bounds] + ["+Inf"]
    for bound_text, cumulative in zip(bounds, snap.bucket_counts):
        lines.append(
            "%s_bucket%s %d"
            % (
                snap.name,
                _format_labels(snap.labels, 'le="%s"' % bound_text),
                cumulative,
            )
        )
    lines.append(
        "%s_sum%s %s"
        % (snap.name, _format_labels(snap.labels),
           _format_value(snap.sum_value))
    )
    lines.append(
        "%s_count%s %d"
        % (snap.name, _format_labels(snap.labels), snap.count)
    )
    return lines


def render_json(registry: MetricsRegistry) -> Dict[str, Any]:
    """The registry as a plain-data dict (JSON-serialisable).

    Schema::

        {"metrics": [
            {"name": ..., "type": "counter"|"gauge", "help": ...,
             "labels": {...}, "value": <number>},
            {"name": ..., "type": "histogram", "help": ...,
             "labels": {...}, "sum": <number>, "count": <int>,
             "buckets": [{"le": <number or "+Inf">, "count": <int>}, ...]}
        ]}

    Bucket counts are cumulative, matching the Prometheus rendering.
    """
    metrics: List[Dict[str, Any]] = []
    for snap in registry.collect():
        entry: Dict[str, Any] = {
            "name": snap.name,
            "type": snap.kind,
            "help": snap.help_text,
            "labels": dict(snap.labels),
        }
        if snap.kind == "histogram":
            bounds: List[Any] = list(snap.bucket_bounds) + ["+Inf"]
            entry["sum"] = snap.sum_value
            entry["count"] = snap.count
            entry["buckets"] = [
                {"le": bound, "count": cumulative}
                for bound, cumulative in zip(bounds, snap.bucket_counts)
            ]
        else:
            entry["value"] = snap.value
        metrics.append(entry)
    return {"metrics": metrics}


def render_json_text(registry: MetricsRegistry, indent: int = 2) -> str:
    """:func:`render_json`, serialised (stable key order, trailing \\n)."""
    return json.dumps(render_json(registry), indent=indent, sort_keys=True) + "\n"
