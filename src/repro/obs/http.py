"""The ``/metrics`` + ``/healthz`` stats endpoint, on a plain http.server.

A :class:`StatsEndpoint` exposes one
:class:`~repro.obs.registry.MetricsRegistry` over HTTP so a running
:class:`~repro.net.server.SpfeServer` (or any other process) can be
observed from *outside*: a Prometheus scraper, ``curl``, the
``repro stats`` pretty-printer, or the CI job that boots a server and
validates the exposition output.

Routes:

* ``GET /metrics`` — Prometheus text format (0.0.4);
* ``GET /metrics.json`` — the structured JSON rendering;
* ``GET /healthz`` — a small JSON health document from the optional
  ``health`` callable (status plus whatever the owner reports), HTTP
  200 while the owner reports ``ok`` and 503 once it is draining or
  stopped — so load balancers stop routing to a server that is
  shutting down *before* its socket disappears.

The endpoint is deliberately *not* the protocol port: the wire
protocol stays binary frames on its own socket; observability rides a
separate listener that can be firewalled to the operator network.  It
runs a ``ThreadingHTTPServer`` on a daemon thread, costs nothing until
scraped, and is opt-in (``SpfeServer(stats_port=...)`` /
``repro serve --stats-port``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple

from repro.exceptions import ParameterError
from repro.obs.exposition import (
    JSON_CONTENT_TYPE,
    PROMETHEUS_CONTENT_TYPE,
    render_json_text,
    render_prometheus,
)
from repro.obs.registry import MetricsRegistry

__all__ = ["StatsEndpoint"]

#: health statuses that answer 200; anything else answers 503
_HEALTHY_STATUSES = ("ok",)


class _StatsHandler(BaseHTTPRequestHandler):
    """Request handler bound to the owning endpoint via the server object."""

    # the default implementation logs every request to stderr; a scraped
    # endpoint would spam the server's console once per scrape interval
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:
        endpoint: "StatsEndpoint" = self.server.stats_endpoint  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(endpoint.registry)
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/metrics.json":
            body = render_json_text(endpoint.registry)
            self._reply(200, JSON_CONTENT_TYPE, body)
        elif path == "/healthz":
            document = endpoint.health_document()
            status = 200 if document.get("status") in _HEALTHY_STATUSES else 503
            self._reply(
                status, JSON_CONTENT_TYPE,
                json.dumps(document, sort_keys=True) + "\n",
            )
        else:
            self._reply(
                404, "text/plain; charset=utf-8",
                "not found (try /metrics, /metrics.json, /healthz)\n",
            )

    def _reply(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        try:
            self.wfile.write(payload)
        except OSError:
            pass  # scraper went away mid-reply; nothing to salvage


class StatsEndpoint:
    """An HTTP observability listener for one metrics registry.

    Args:
        registry: the instruments to expose.
        host/port: bind address (port 0 = ephemeral, resolved by
            :attr:`port` after :meth:`start`).
        health: optional zero-argument callable returning a dict for
            ``/healthz``; it should carry at least a ``"status"`` key
            (``"ok"`` answers 200, anything else 503).  ``None`` serves
            a constant ``{"status": "ok"}``.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        health: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> None:
        if port < 0:
            raise ParameterError("stats port must be non-negative")
        self.registry = registry
        self._host = host
        self._requested_port = port
        self._health = health
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def health_document(self) -> Dict[str, Any]:
        """The current ``/healthz`` document."""
        if self._health is None:
            return {"status": "ok"}
        return self._health()

    def start(self) -> "StatsEndpoint":
        """Bind and serve on a daemon thread; returns self."""
        if self._server is not None:
            raise ParameterError("stats endpoint already started")
        server = ThreadingHTTPServer(
            (self._host, self._requested_port), _StatsHandler
        )
        server.daemon_threads = True
        server.stats_endpoint = self  # type: ignore[attr-defined]
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-stats",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def port(self) -> int:
        """The bound port (resolves an ephemeral bind)."""
        if self._server is None:
            raise ParameterError("stats endpoint not started")
        return self._server.server_address[1]

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) pair."""
        if self._server is None:
            raise ParameterError("stats endpoint not started")
        return (self._server.server_address[0], self.port)

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "StatsEndpoint":
        """Context-manager entry: start the endpoint."""
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close the endpoint."""
        self.close()
