"""Scrape a ``/metrics`` endpoint and validate the exposition output.

``python -m repro.obs.check http://127.0.0.1:9464/metrics`` fetches the
page with nothing but the standard library and checks it line by line
against the Prometheus text-format grammar:

* every line is a ``# HELP``, a ``# TYPE``, or a sample;
* every sample name is legal and, when a ``# TYPE`` was declared for
  it, consistent with that type (``_bucket``/``_sum``/``_count``
  suffixes for histograms);
* every label set parses and every ``le`` bound is a number or +Inf;
* the page ends with a newline and contains at least one sample.

Exit codes: 0 valid, 1 malformed (each violation printed with its line
number), 2 unreachable.  CI uses this as the hard gate on the
``repro serve --stats-port`` exposition; operators can use it as a
smoke test before pointing a real scraper at a server.
"""

from __future__ import annotations

import re
import sys
from http.client import HTTPConnection
from typing import List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

__all__ = ["validate_exposition", "scrape", "main"]

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_HELP_RE = re.compile(r"^# HELP (%s) .*$" % _NAME)
_TYPE_RE = re.compile(
    r"^# TYPE (%s) (counter|gauge|histogram|summary|untyped)$" % _NAME
)
_SAMPLE_RE = re.compile(
    r"^(?P<name>%s)(?:\{(?P<labels>[^{}]*)\})? (?P<value>\S+)(?: \d+)?$" % _NAME
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\[\\"n])*"$')
_VALUE_RE = re.compile(
    r"^[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN)$"
)


def _split_labels(body: str) -> List[str]:
    """Split a label body on commas outside quotes."""
    parts: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if current or parts:
        parts.append("".join(current))
    return parts


def validate_exposition(text: str) -> List[str]:
    """All grammar violations in a metrics page (empty list = valid)."""
    problems: List[str] = []
    if not text:
        return ["empty exposition body"]
    if not text.endswith("\n"):
        problems.append("exposition does not end with a newline")
    declared: dict = {}
    samples = 0
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            type_match = _TYPE_RE.match(line)
            if type_match:
                declared[type_match.group(1)] = type_match.group(2)
                continue
            if _HELP_RE.match(line):
                continue
            problems.append("line %d: malformed comment: %r" % (number, line))
            continue
        sample = _SAMPLE_RE.match(line)
        if sample is None:
            problems.append("line %d: malformed sample: %r" % (number, line))
            continue
        samples += 1
        if not _VALUE_RE.match(sample.group("value")):
            problems.append(
                "line %d: malformed value %r" % (number, sample.group("value"))
            )
        label_body = sample.group("labels")
        if label_body:
            for pair in _split_labels(label_body):
                if not _LABEL_RE.match(pair):
                    problems.append(
                        "line %d: malformed label %r" % (number, pair)
                    )
        base = sample.group("name")
        for suffix in ("_bucket", "_sum", "_count"):
            root = base[: -len(suffix)]
            if base.endswith(suffix) and declared.get(root) == "histogram":
                base = root
                break
        if declared and base not in declared and sample.group("name") not in declared:
            problems.append(
                "line %d: sample %r has no # TYPE declaration"
                % (number, sample.group("name"))
            )
    if samples == 0:
        problems.append("no samples found")
    return problems


def scrape(url: str, timeout: float = 5.0) -> Tuple[int, str]:
    """GET ``url`` with http.client; returns (status, body)."""
    parts = urlsplit(url)
    if parts.scheme not in ("http", ""):
        raise ValueError("only http:// URLs are supported, got %r" % url)
    host = parts.hostname or "127.0.0.1"
    port = parts.port or 80
    path = parts.path or "/metrics"
    if parts.query:
        path += "?" + parts.query
    connection = HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        body = response.read().decode("utf-8")
        return response.status, body
    finally:
        connection.close()


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Scrape and validate; returns the process exit code."""
    out = out if out is not None else sys.stdout
    arguments = list(argv) if argv is not None else sys.argv[1:]
    if len(arguments) != 1:
        out.write("usage: python -m repro.obs.check http://HOST:PORT/metrics\n")
        return 2
    url = arguments[0]
    try:
        status, body = scrape(url)
    except (OSError, ValueError) as exc:
        out.write("unreachable: %s\n" % exc)
        return 2
    if status != 200:
        out.write("HTTP %d from %s\n" % (status, url))
        return 1
    problems = validate_exposition(body)
    if problems:
        for problem in problems:
            out.write(problem + "\n")
        out.write("INVALID: %d problem(s) in %s\n" % (len(problems), url))
        return 1
    sample_count = sum(
        1
        for line in body.splitlines()
        if line and not line.startswith("#")
    )
    out.write("OK: %d samples, exposition is well-formed\n" % sample_count)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI scrape job
    sys.exit(main())
