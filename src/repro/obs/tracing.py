"""Phase-level tracing: spans, per-phase totals, paper-figure breakdowns.

The paper's evaluation (Figures 2, 3, 5, 6) decomposes every run into
the same four online phases — client encryption, server computation,
communication, client decryption — and the repo already has two
mechanisms that produce those numbers:
:class:`~repro.timing.clock.Stopwatch`/``ComputeBlock`` for measured
runs and :class:`~repro.timing.costmodel.HardwareProfile` charges for
modelled ones, both accumulating into a
:class:`~repro.timing.report.TimingBreakdown`.  A :class:`Tracer`
subsumes both: phases enter it either as *measured* spans
(:meth:`Tracer.span`, a ``perf_counter`` context manager) or as
*recorded* durations (:meth:`Tracer.record`, for modelled charges and
virtual clocks), and come back out three ways:

* :meth:`Tracer.totals` — seconds per phase name;
* :meth:`Tracer.breakdown` — a ready
  :class:`~repro.timing.report.TimingBreakdown` using the canonical
  phase names below, so traced runs plug straight into the
  figure-rendering pipeline;
* a per-phase latency :class:`~repro.obs.registry.Histogram`
  (``repro_phase_seconds{phase=...}``) when the tracer is attached to
  a :class:`~repro.obs.registry.MetricsRegistry` — which is how
  server-side fold latencies end up on the ``/metrics`` endpoint.

Canonical phase names (others are kept in totals but ignored by
:meth:`~Tracer.breakdown`): ``encrypt``, ``fold`` (alias
``server_compute``), ``communication``, ``decrypt``, ``offline``,
``combine``, plus the deployment-only phase ``resume``.

A tracer is thread-safe (one server tracer is shared by every worker)
and bounds its memory: per-phase *totals* are kept forever, but the
individual span list is a ring of the most recent ``keep_spans``
entries, so a long-running server does not grow without bound.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.exceptions import ParameterError
from repro.obs.registry import Histogram, MetricsRegistry
from repro.timing.report import TimingBreakdown

__all__ = ["Span", "Tracer", "PHASE_FIELDS", "PHASE_HISTOGRAM_NAME"]

#: metric name under which attached tracers publish span latencies
PHASE_HISTOGRAM_NAME = "repro_phase_seconds"

#: canonical phase name -> TimingBreakdown field
PHASE_FIELDS: Dict[str, str] = {
    "encrypt": "client_encrypt_s",
    "client_encrypt": "client_encrypt_s",
    "fold": "server_compute_s",
    "server_compute": "server_compute_s",
    "communication": "communication_s",
    "decrypt": "client_decrypt_s",
    "client_decrypt": "client_decrypt_s",
    "offline": "offline_precompute_s",
    "offline_precompute": "offline_precompute_s",
    "combine": "combine_s",
}


@dataclass(frozen=True)
class Span:
    """One completed phase interval: a name and a duration in seconds."""

    name: str
    seconds: float


class _SpanHandle:
    """Context manager measuring one span with ``perf_counter``."""

    __slots__ = ("_tracer", "_name", "_started", "seconds")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._started = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._started
        self._tracer.record(self._name, self.seconds)


class Tracer:
    """Thread-safe collector of phase spans for one run or one server.

    Args:
        registry: optional :class:`~repro.obs.registry.MetricsRegistry`;
            when given, every span is also observed into the
            ``repro_phase_seconds{phase=<name>}`` histogram there.
        keep_spans: ring size for the individual-span log (totals are
            unaffected; 0 keeps no individual spans).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        keep_spans: int = 1024,
    ) -> None:
        if keep_spans < 0:
            raise ParameterError("keep_spans must be non-negative")
        self.registry = registry
        # handle cache only — both lookup misses and racy double-writes
        # are harmless because registry creation is idempotent
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()
        self._spans: "Deque[Span]" = deque(maxlen=keep_spans)
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def span(self, name: str) -> _SpanHandle:
        """A context manager timing one ``name`` phase (measured)."""
        return _SpanHandle(self, name)

    def record(self, name: str, seconds: float) -> None:
        """Record a completed phase of known duration (modelled or measured)."""
        if seconds < 0:
            raise ParameterError("span duration must be non-negative")
        with self._lock:
            self._spans.append(Span(name, seconds))
            self._totals[name] = self._totals.get(name, 0.0) + seconds
            self._counts[name] = self._counts.get(name, 0) + 1
        if self.registry is not None:
            self._phase_histogram(name).observe(seconds)

    def _phase_histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            assert self.registry is not None
            histogram = self.registry.histogram(
                PHASE_HISTOGRAM_NAME,
                "Duration of one protocol phase span, by phase label.",
                labels={"phase": name},
            )
            self._histograms[name] = histogram
        return histogram

    def totals(self) -> Dict[str, float]:
        """Accumulated seconds per phase name (a copy)."""
        with self._lock:
            return dict(self._totals)

    def counts(self) -> Dict[str, int]:
        """Completed span count per phase name (a copy)."""
        with self._lock:
            return dict(self._counts)

    def spans(self) -> List[Span]:
        """The most recent spans, oldest first (bounded by keep_spans)."""
        with self._lock:
            return list(self._spans)

    def total(self, name: str) -> float:
        """Accumulated seconds for one phase (0.0 when never seen)."""
        with self._lock:
            return self._totals.get(name, 0.0)

    def breakdown(self) -> TimingBreakdown:
        """The canonical-phase totals as a figure-ready breakdown.

        Phase names outside :data:`PHASE_FIELDS` (e.g. ``resume``) stay
        available via :meth:`totals` but do not contribute here.
        """
        totals = self.totals()
        fields: Dict[str, float] = {}
        for name, seconds in totals.items():
            target = PHASE_FIELDS.get(name)
            if target is not None:
                fields[target] = fields.get(target, 0.0) + seconds
        return TimingBreakdown(**fields)
