"""repro.obs — the unified observability layer.

One subsystem replaces the four ad-hoc measurement mechanisms that had
accumulated across the codebase (server stat dicts, phase stopwatches,
engine batch counters, per-session byte fields):

* :mod:`repro.obs.registry` — thread-safe :class:`MetricsRegistry`
  holding :class:`Counter`/:class:`Gauge`/:class:`Histogram`
  instruments (fixed bucket boundaries, no third-party dependencies);
* :mod:`repro.obs.tracing` — :class:`Span`/:class:`Tracer` phase
  tracing that feeds both per-phase latency histograms and the paper's
  :class:`~repro.timing.report.TimingBreakdown` figures;
* :mod:`repro.obs.exposition` — Prometheus text format and structured
  JSON renderings of a registry;
* :mod:`repro.obs.http` — the opt-in ``/metrics`` + ``/healthz``
  endpoint (:class:`StatsEndpoint`) served from a plain ``http.server``
  thread;
* :mod:`repro.obs.check` — a stdlib-only scrape-and-validate tool used
  as the CI gate on exposition output.

See ``docs/observability.md`` for the metric catalogue and how spans
map onto the paper's Figure 2/3 phase decomposition.
"""

from repro.obs.exposition import (
    JSON_CONTENT_TYPE,
    PROMETHEUS_CONTENT_TYPE,
    render_json,
    render_json_text,
    render_prometheus,
)
from repro.obs.http import StatsEndpoint
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricSnapshot,
    MetricsRegistry,
)
from repro.obs.tracing import PHASE_FIELDS, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "JSON_CONTENT_TYPE",
    "MetricSnapshot",
    "MetricsRegistry",
    "PHASE_FIELDS",
    "PROMETHEUS_CONTENT_TYPE",
    "Span",
    "StatsEndpoint",
    "Tracer",
    "render_json",
    "render_json_text",
    "render_prometheus",
]
