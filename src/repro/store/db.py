"""SQLite plumbing for the durability tier: WAL mode + schema migrations.

Durability model (documented in ``docs/protocol.md`` § Durability):

* Connections run in **WAL mode** with ``synchronous=NORMAL``.  Every
  committed transaction survives *process* death unconditionally (the
  WAL append happens before commit returns); an operating-system crash
  can lose transactions committed after the last WAL sync, but never
  corrupts the store — on reopen the database is a consistent prefix of
  history.  That is exactly the guarantee warm restart needs: a journal
  entry may lag reality by a bounded amount, in which case the client
  simply re-sends a chunk it already encrypted.
* The schema is **versioned**.  ``dbversion`` records one row per
  applied migration (version, timestamp, description), in the style of
  ``swh.core.db``; :func:`migrate` applies every pending step in order,
  each inside its own transaction, so opening a store created by an
  older release upgrades it in place and a crash mid-upgrade leaves a
  cleanly resumable prefix.

The schema itself (see :data:`MIGRATIONS`):

* ``sessions`` — the resumable-session journal: one frozen snapshot per
  session id, exactly the fields of
  :class:`repro.spfe.session._ResumeState` plus an LRU timestamp.
* ``fixed_base_tables`` — serialized
  :class:`~repro.crypto.multiexp.FixedBaseTable` precomputation, keyed
  by key fingerprint.
* ``zero_pools`` — leftover precomputed obfuscators (encryptions of
  zero) per key fingerprint.
* ``databases`` — named server databases, loadable by ``repro serve
  --state-dir ... --db-name ...``.
"""

from __future__ import annotations

import sqlite3
import time
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import StoreError

__all__ = [
    "MIGRATIONS",
    "SCHEMA_VERSION",
    "open_store_db",
    "migrate",
    "schema_version",
]

#: Ordered migration history.  Append-only: released versions are never
#: edited, new releases append a new ``(version, description, [ddl])``
#: entry and :func:`migrate` carries any existing store forward.
MIGRATIONS: Tuple[Tuple[int, str, Tuple[str, ...]], ...] = (
    (
        1,
        "initial schema: session journal, precomputation caches, databases",
        (
            """
            CREATE TABLE sessions (
                session_id      BLOB PRIMARY KEY,
                key_bits        INTEGER NOT NULL,
                chunk_size      INTEGER NOT NULL,
                public_n        BLOB NOT NULL,
                aggregate       BLOB NOT NULL,
                received        INTEGER NOT NULL,
                chunks_received INTEGER NOT NULL,
                done            INTEGER NOT NULL DEFAULT 0
            )
            """,
            """
            CREATE TABLE fixed_base_tables (
                fingerprint   TEXT NOT NULL,
                label         TEXT NOT NULL DEFAULT '',
                base          BLOB NOT NULL,
                modulus       BLOB NOT NULL,
                exponent_bits INTEGER NOT NULL,
                window        INTEGER NOT NULL,
                entry_width   INTEGER NOT NULL,
                rows_blob     BLOB NOT NULL,
                PRIMARY KEY (fingerprint, label)
            )
            """,
            """
            CREATE TABLE zero_pools (
                fingerprint TEXT PRIMARY KEY,
                public_n    BLOB NOT NULL,
                entry_width INTEGER NOT NULL,
                count       INTEGER NOT NULL,
                pool_blob   BLOB NOT NULL
            )
            """,
            """
            CREATE TABLE databases (
                name        TEXT PRIMARY KEY,
                value_bits  INTEGER NOT NULL,
                length      INTEGER NOT NULL,
                entry_width INTEGER NOT NULL,
                values_blob BLOB NOT NULL
            )
            """,
        ),
    ),
    (
        2,
        "session LRU timestamps for cross-restart eviction ordering",
        (
            # Sessions journalled by a v1 store carry touched_at=0 and
            # sort oldest, which is the conservative recovery order.
            "ALTER TABLE sessions ADD COLUMN touched_at REAL NOT NULL DEFAULT 0",
            "CREATE INDEX idx_sessions_touched ON sessions (touched_at)",
        ),
    ),
    (
        3,
        "calibration profiles: cached engine mode-selection measurements",
        (
            # One JSON document per profile kind (see
            # repro.crypto.calibration.PROFILE_KIND); `repro calibrate`
            # writes it, serve/sum read it to route engine batches.
            """
            CREATE TABLE calibration (
                kind       TEXT PRIMARY KEY,
                profile    TEXT NOT NULL,
                updated_at REAL NOT NULL
            )
            """,
        ),
    ),
)

#: The schema version this code reads and writes.
SCHEMA_VERSION: int = MIGRATIONS[-1][0]

_DBVERSION_DDL = """
CREATE TABLE IF NOT EXISTS dbversion (
    version     INTEGER PRIMARY KEY,
    release_ts  REAL NOT NULL,
    description TEXT NOT NULL
)
"""


def schema_version(conn: sqlite3.Connection) -> int:
    """The newest applied migration version (0 for a fresh store)."""
    try:
        row = conn.execute("SELECT MAX(version) FROM dbversion").fetchone()
    except sqlite3.OperationalError:
        return 0
    return int(row[0]) if row and row[0] is not None else 0


def migrate(
    conn: sqlite3.Connection,
    migrations: Sequence[Tuple[int, str, Tuple[str, ...]]] = MIGRATIONS,
) -> List[int]:
    """Apply every pending migration in order; returns applied versions.

    Each step runs in its own transaction: the DDL plus its
    ``dbversion`` row commit atomically, so a crash mid-upgrade leaves
    the store at a well-defined older version that the next open
    finishes upgrading.  A store *newer* than this code is refused —
    reading a schema we do not understand risks silent corruption.
    """
    conn.execute(_DBVERSION_DDL)
    current = schema_version(conn)
    newest = migrations[-1][0] if migrations else 0
    if current > newest:
        raise StoreError(
            "store schema v%d is newer than this code (v%d); refusing to open"
            % (current, newest)
        )
    applied: List[int] = []
    for version, description, statements in migrations:
        if version <= current:
            continue
        try:
            with conn:  # one transaction per migration step
                for statement in statements:
                    conn.execute(statement)
                conn.execute(
                    "INSERT INTO dbversion (version, release_ts, description) "
                    "VALUES (?, ?, ?)",
                    (version, time.time(), description),
                )
        except sqlite3.Error as exc:
            raise StoreError(
                "migration to schema v%d failed: %s" % (version, exc)
            ) from exc
        applied.append(version)
    return applied


def open_store_db(
    path: str,
    timeout_s: float = 10.0,
    migrations: Optional[Sequence[Tuple[int, str, Tuple[str, ...]]]] = None,
) -> sqlite3.Connection:
    """Open (creating/upgrading as needed) the store database at ``path``.

    The returned connection is WAL-mode, ``synchronous=NORMAL``, and
    created with ``check_same_thread=False`` — callers serialise access
    themselves (:class:`~repro.store.state.StateStore` holds one lock
    around every operation).  ``path`` may be ``":memory:"`` in tests.
    """
    try:
        conn = sqlite3.connect(
            path, timeout=timeout_s, check_same_thread=False
        )
    except sqlite3.Error as exc:
        raise StoreError("cannot open store at %r: %s" % (path, exc)) from exc
    try:
        # WAL + NORMAL is the crash-safety sweet spot: commits are
        # process-crash durable without paying a full fsync per chunk
        # journal write (see module docstring / docs/protocol.md).
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA foreign_keys=ON")
        migrate(conn, migrations if migrations is not None else MIGRATIONS)
    except StoreError:
        conn.close()
        raise
    except sqlite3.Error as exc:
        conn.close()
        raise StoreError("cannot initialise store at %r: %s" % (path, exc)) from exc
    return conn
