"""Crash-safe persistence tier: the state that survives process death.

Everything expensive in this system is *precomputed state*: fixed-base
tables, pooled encryptions-of-zero, half-streamed session aggregates,
and the server database itself.  Until this package all of it lived in
process memory, so a ``kill -9`` threw the paper's entire amortisation
argument away — preprocessing only pays off if it outlives the process
that ran it (§3.3), and the dropout-tolerant aggregation literature
makes the same point at the protocol level.

Three modules:

* :mod:`repro.store.db` — the SQLite layer: WAL-mode connections and a
  versioned schema with ordered migration machinery (in the style of
  ``swh.core.db``: a ``dbversion`` table records every applied step, and
  opening an old store upgrades it in place).
* :mod:`repro.store.state` — :class:`~repro.store.state.StateStore`,
  the single facade every subsystem persists through: session journal
  entries (ACK/RESUME across a server *restart*, not just a reconnect),
  fixed-base tables and obfuscator pools keyed by key fingerprint, and
  named server databases.
* :mod:`repro.store.supervisor` — a process supervisor that runs the
  server as a child and restarts it on crash under bounded exponential
  backoff, turning SIGKILL into a recoverable event.

No third-party dependencies: ``sqlite3`` is in the standard library.
"""

from repro.store.db import SCHEMA_VERSION, open_store_db, schema_version
from repro.store.state import StateStore, key_fingerprint
from repro.store.supervisor import ServerSupervisor, SupervisorPolicy

__all__ = [
    "SCHEMA_VERSION",
    "open_store_db",
    "schema_version",
    "StateStore",
    "key_fingerprint",
    "ServerSupervisor",
    "SupervisorPolicy",
]
