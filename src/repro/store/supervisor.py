"""`ServerSupervisor`: restart the server child when it dies.

Durability (the journal) only pays off if *something* brings the
process back.  The supervisor is that something: it runs the server as
a child process and, whenever the child exits abnormally (SIGKILL, a
crash, an OOM kill), restarts it after a bounded exponential backoff —
so the ``--state-dir`` journal turns ``kill -9`` into a pause, not an
outage.  Clients ride through the gap via
:func:`repro.spfe.session.run_resilient`: their reconnect loop retries
until the replacement child is listening, then RESUMEs from the
journal.

The restart budget is deliberately bounded (a child that dies
``max_restarts`` times within one ``reset_after_s`` window is not
coming back on its own — crash-looping forever just hides the bug),
and a child that stays up long enough earns its budget back, the
classic supervision-tree policy.

Used programmatically by the chaos tests and from the CLI as
``repro supervise -- <serve args>``.
"""

from __future__ import annotations

import subprocess
import threading
import time
from dataclasses import dataclass
from typing import IO, List, Optional, Sequence, Union

from repro.exceptions import SupervisorError
from repro.obs.registry import MetricsRegistry

__all__ = ["SupervisorPolicy", "ServerSupervisor"]

_RESTARTS_HELP = (
    "Server child processes restarted by the supervisor after a crash."
)
_GIVEUPS_HELP = "Supervisor runs that exhausted their restart budget."


@dataclass(frozen=True)
class SupervisorPolicy:
    """Bounded exponential backoff for child restarts.

    Attributes:
        max_restarts: abnormal exits tolerated within one backoff
            window before the supervisor gives up.
        base_delay_s: sleep before the first restart.
        max_delay_s: backoff ceiling.
        multiplier: growth factor per consecutive crash.
        reset_after_s: a child that survives this long earns its full
            restart budget back (the crash streak resets to zero).
    """

    max_restarts: int = 5
    base_delay_s: float = 0.1
    max_delay_s: float = 5.0
    multiplier: float = 2.0
    reset_after_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise SupervisorError("max_restarts must be non-negative")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise SupervisorError(
                "need 0 <= base_delay_s <= max_delay_s, got %r / %r"
                % (self.base_delay_s, self.max_delay_s)
            )
        if self.multiplier < 1.0:
            raise SupervisorError("multiplier must be >= 1")
        if self.reset_after_s <= 0:
            raise SupervisorError("reset_after_s must be positive")

    def delay_s(self, crash_streak: int) -> float:
        """Backoff before restart number ``crash_streak`` (1-based)."""
        if crash_streak < 1:
            return self.base_delay_s
        delay = self.base_delay_s * self.multiplier ** (crash_streak - 1)
        return min(delay, self.max_delay_s)


class ServerSupervisor:
    """Run ``argv`` as a child process; restart it on abnormal exit.

    A monitor thread waits on the child.  Exit code 0 (or a stop
    requested through :meth:`stop`) ends supervision; any other exit —
    including death by signal — triggers a backed-off restart until the
    :class:`SupervisorPolicy` budget runs out.

    Thread-safety: child handle and counters live behind ``_lock``
    (SEC004-guarded); the monitor thread and caller threads both touch
    them.

    Args:
        argv: the child command line, e.g.
            ``[sys.executable, "-m", "repro", "serve", ...]``.
        policy: restart budget and backoff schedule.
        metrics: optional registry for ``repro_store_supervisor_*``.
        stdout/stderr: passed through to :class:`subprocess.Popen`
            (tests capture, the CLI inherits).
    """

    def __init__(
        self,
        argv: Sequence[str],
        policy: Optional[SupervisorPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        stdout: Union[int, IO[bytes], None] = None,
        stderr: Union[int, IO[bytes], None] = None,
    ) -> None:
        if not argv:
            raise SupervisorError("supervisor needs a non-empty command line")
        self.argv: List[str] = list(argv)
        self.policy = policy or SupervisorPolicy()
        self._stdout = stdout
        self._stderr = stderr
        self._lock = threading.Lock()
        self._child: Optional[subprocess.Popen] = None
        self._monitor: Optional[threading.Thread] = None
        self._stopping = False
        self._gave_up = False
        self._restarts = 0
        self._restarts_total = (
            metrics.counter("repro_store_supervisor_restarts_total", _RESTARTS_HELP)
            if metrics is not None
            else None
        )
        self._giveups_total = (
            metrics.counter("repro_store_supervisor_giveups_total", _GIVEUPS_HELP)
            if metrics is not None
            else None
        )

    # -- lifecycle --------------------------------------------------------

    def start(self) -> int:
        """Spawn the child and the monitor thread; returns the child pid."""
        with self._lock:
            if self._monitor is not None:
                raise SupervisorError("supervisor already started")
            self._stopping = False
            pid = self._spawn_locked()
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="repro-supervisor", daemon=True
            )
            self._monitor.start()
        return pid

    def stop(self, timeout_s: float = 10.0) -> None:
        """Terminate the child (TERM, then KILL) and end supervision."""
        with self._lock:
            self._stopping = True
            child = self._child
            monitor = self._monitor
        if child is not None and child.poll() is None:
            child.terminate()
            try:
                child.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:
                child.kill()
                child.wait()
        if monitor is not None:
            monitor.join(timeout=timeout_s)

    def join(self, timeout_s: Optional[float] = None) -> None:
        """Wait for supervision to end (clean exit or budget exhausted)."""
        with self._lock:
            monitor = self._monitor
        if monitor is not None:
            monitor.join(timeout=timeout_s)

    # -- introspection ----------------------------------------------------

    @property
    def pid(self) -> Optional[int]:
        """Pid of the live child, or None."""
        with self._lock:
            child = self._child
        if child is None or child.poll() is not None:
            return None
        return child.pid

    @property
    def restarts(self) -> int:
        """Abnormal-exit restarts performed so far."""
        with self._lock:
            return self._restarts

    @property
    def gave_up(self) -> bool:
        """True once the restart budget was exhausted."""
        with self._lock:
            return self._gave_up

    # -- internals --------------------------------------------------------

    def _spawn_locked(self) -> int:
        """Start one child; caller holds ``_lock``."""
        try:
            self._child = subprocess.Popen(
                self.argv, stdout=self._stdout, stderr=self._stderr
            )
        except OSError as exc:
            raise SupervisorError(
                "cannot start %r: %s" % (self.argv[0], exc)
            ) from exc
        return self._child.pid

    def _monitor_loop(self) -> None:
        """Wait on the child; restart under the policy until done."""
        crash_streak = 0
        while True:
            with self._lock:
                child = self._child
            if child is None:
                return
            started = time.monotonic()
            returncode = child.wait()
            uptime = time.monotonic() - started
            with self._lock:
                if self._stopping:
                    return
            if returncode == 0:
                return  # clean exit: supervision done
            if uptime >= self.policy.reset_after_s:
                crash_streak = 0  # long-lived child earns its budget back
            crash_streak += 1
            if crash_streak > self.policy.max_restarts:
                with self._lock:
                    self._gave_up = True
                if self._giveups_total is not None:
                    self._giveups_total.inc()
                return
            time.sleep(self.policy.delay_s(crash_streak))
            with self._lock:
                if self._stopping:
                    return
                self._spawn_locked()
                self._restarts += 1
            if self._restarts_total is not None:
                self._restarts_total.inc()

    def __enter__(self) -> "ServerSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
