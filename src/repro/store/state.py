"""`StateStore`: the one facade every subsystem persists through.

Four kinds of state, one SQLite file (see :mod:`repro.store.db` for the
schema and durability model):

* **Session journal** — frozen resumable-session snapshots, written by
  :class:`~repro.spfe.session.SessionRegistry` on every save.  A client
  whose server was SIGKILLed reconnects, sends RESUME, and the restarted
  process answers from the journal: same ACK semantics, zero
  re-encryption of already-acknowledged chunks.
* **Fixed-base tables** — the windowed precomputation of
  :class:`~repro.crypto.multiexp.FixedBaseTable`, keyed by key
  fingerprint, so a warm start skips the table build entirely.
* **Obfuscator pools** — leftover precomputed encryptions of zero
  (``r^n mod n^2`` values) from a
  :class:`~repro.crypto.paillier.RandomnessPool`; the paper's §3.3
  offline phase, made durable.
* **Named databases** — server databases loadable by name, so ``repro
  serve --state-dir DIR --db-name NAME`` serves the same data across
  restarts without re-parsing input files.

Trust note: the store holds material that is *secret relative to the
protocol's privacy argument* (an obfuscator together with its ciphertext
reveals the plaintext).  The state directory therefore belongs to the
key owner alone — the same trust domain as the process memory it
replaces, now on disk.  ``docs/protocol.md`` § Durability spells out the
guarantees and non-guarantees.

The store is thread-safe: one connection, every operation under one
internal lock (SQLite serialises writers anyway; the lock keeps our
read-modify-write sequences atomic and the connection usage
single-threaded).  All methods may be called from server worker
threads; none ever block on the network.
"""

from __future__ import annotations

import hashlib
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.crypto.multiexp import FixedBaseTable
from repro.crypto.ntheory import bytes_for_bits
from repro.crypto.paillier import PaillierPublicKey, RandomnessPool
from repro.crypto.rng import RandomSource
from repro.crypto.serialization import (
    decode_int,
    decode_int_seq,
    encode_int,
    encode_int_seq,
)
from repro.datastore.database import ServerDatabase
from repro.exceptions import StoreError
from repro.obs.registry import Counter, MetricsRegistry
from repro.store.db import open_store_db

__all__ = [
    "StateStore",
    "SessionRecord",
    "key_fingerprint",
    "STORE_METRIC_HELP",
    "DEFAULT_STORE_FILENAME",
]

#: the store file a ``--state-dir`` directory contains
DEFAULT_STORE_FILENAME = "repro-state.sqlite"

#: help text for every ``repro_store_*`` metric, shared by all emitters
#: so the registry sees one consistent definition per name
STORE_METRIC_HELP: Dict[str, str] = {
    "repro_store_journal_writes_total":
        "Session snapshots journalled to the state store.",
    "repro_store_journal_deletes_total":
        "Session journal entries deleted (evictions, discards, completions).",
    "repro_store_journal_hits_total":
        "Session journal lookups that found a snapshot (warm-restart resumes).",
    "repro_store_journal_misses_total":
        "Session journal lookups that found nothing (fresh or evicted ids).",
    "repro_store_table_hits_total":
        "Fixed-base table loads served from the store (precomputation skipped).",
    "repro_store_table_misses_total":
        "Fixed-base table loads that found nothing (cold build required).",
    "repro_store_pool_hits_total":
        "Obfuscator-pool loads that restored at least one pooled encryption.",
    "repro_store_pool_misses_total":
        "Obfuscator-pool loads that found nothing for the key fingerprint.",
    "repro_store_pool_obfuscators_restored_total":
        "Individual precomputed obfuscators restored from the store.",
    "repro_store_db_loads_total":
        "Named server databases loaded from the store.",
    "repro_store_calibration_writes_total":
        "Calibration profiles persisted by `repro calibrate`.",
    "repro_store_calibration_hits_total":
        "Calibration profile loads that found a persisted profile.",
    "repro_store_calibration_misses_total":
        "Calibration profile loads that found nothing (heuristic routing).",
    "repro_store_supervisor_restarts_total":
        "Server child processes restarted by the supervisor after a crash.",
    "repro_store_supervisor_giveups_total":
        "Supervisor runs that exhausted their restart budget.",
}


def key_fingerprint(public_n: int) -> str:
    """A stable fingerprint for a public key (hex SHA-256 of ``n``).

    Keys the precomputation caches: two processes holding the same
    modulus agree on the fingerprint, and nothing about ``n`` beyond
    its identity is recoverable from it.
    """
    width = bytes_for_bits(max(1, public_n.bit_length()))
    return hashlib.sha256(encode_int(public_n, width)).hexdigest()


def _int_blob(value: int) -> bytes:
    """A minimal-width big-endian blob for one non-negative int."""
    return encode_int(value, bytes_for_bits(max(1, value.bit_length())))


@dataclass(frozen=True)
class SessionRecord:
    """One journalled session snapshot, as plain data.

    The session layer converts to/from its private resume-state type;
    the store neither imports nor understands protocol objects.
    """

    session_id: bytes
    key_bits: int
    chunk_size: int
    public_n: int
    aggregate: int
    received: int
    chunks_received: int
    done: bool
    touched_at: float = 0.0


class StateStore:
    """Durable home for sessions, precomputation, and databases.

    Args:
        path: SQLite file path (``":memory:"`` for tests), or a
            directory — :meth:`open` resolves the conventional
            ``repro-state.sqlite`` inside a directory.
        metrics: optional :class:`~repro.obs.registry.MetricsRegistry`;
            when given, every journal write/hit/miss and cache
            hit/miss is counted under the ``repro_store_*`` names in
            :data:`STORE_METRIC_HELP`.
    """

    def __init__(
        self, path: str, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = open_store_db(path)
        self.metrics = metrics
        self._counters: Dict[str, Counter] = {}
        if metrics is not None:
            for name, help_text in STORE_METRIC_HELP.items():
                if name.startswith("repro_store_supervisor"):
                    continue  # the supervisor registers its own
                self._counters[name] = metrics.counter(name, help_text)

    @classmethod
    def open(
        cls, state_dir: str, metrics: Optional[MetricsRegistry] = None
    ) -> "StateStore":
        """Open the store inside ``state_dir`` (created if missing)."""
        import os

        os.makedirs(state_dir, exist_ok=True)
        return cls(os.path.join(state_dir, DEFAULT_STORE_FILENAME), metrics=metrics)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()

    def __enter__(self) -> "StateStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _require_conn(self) -> sqlite3.Connection:
        """The live connection; caller holds ``self._lock``."""
        if self._conn is None:
            raise StoreError("state store is closed")
        return self._conn

    def _count(self, name: str, amount: int = 1) -> None:
        counter = self._counters.get(name)
        if counter is not None:
            counter.inc(amount)

    # -- session journal --------------------------------------------------

    def save_session(self, record: SessionRecord) -> None:
        """Journal one frozen session snapshot (upsert by session id).

        Called on every chunk fold; the WAL commit makes the snapshot
        process-crash durable before the server's reply leaves the
        process (RESULT in particular is journalled before it is sent).
        """
        touched = record.touched_at if record.touched_at else time.time()
        try:
            with self._lock:
                conn = self._require_conn()
                with conn:
                    conn.execute(
                        "INSERT INTO sessions (session_id, key_bits, chunk_size,"
                        " public_n, aggregate, received, chunks_received, done,"
                        " touched_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)"
                        " ON CONFLICT(session_id) DO UPDATE SET"
                        " aggregate=excluded.aggregate,"
                        " received=excluded.received,"
                        " chunks_received=excluded.chunks_received,"
                        " done=excluded.done,"
                        " touched_at=excluded.touched_at",
                        (
                            record.session_id,
                            record.key_bits,
                            record.chunk_size,
                            _int_blob(record.public_n),
                            _int_blob(record.aggregate),
                            record.received,
                            record.chunks_received,
                            1 if record.done else 0,
                            touched,
                        ),
                    )
        except sqlite3.Error as exc:
            raise StoreError("session journal write failed: %s" % exc) from exc
        self._count("repro_store_journal_writes_total")

    def load_session(self, session_id: bytes) -> Optional[SessionRecord]:
        """Fetch one journalled snapshot; None when unknown/deleted."""
        try:
            with self._lock:
                conn = self._require_conn()
                row = conn.execute(
                    "SELECT key_bits, chunk_size, public_n, aggregate,"
                    " received, chunks_received, done, touched_at"
                    " FROM sessions WHERE session_id = ?",
                    (session_id,),
                ).fetchone()
        except sqlite3.Error as exc:
            raise StoreError("session journal read failed: %s" % exc) from exc
        if row is None:
            self._count("repro_store_journal_misses_total")
            return None
        self._count("repro_store_journal_hits_total")
        return SessionRecord(
            session_id=session_id,
            key_bits=int(row[0]),
            chunk_size=int(row[1]),
            public_n=decode_int(row[2]),
            aggregate=decode_int(row[3]),
            received=int(row[4]),
            chunks_received=int(row[5]),
            done=bool(row[6]),
            touched_at=float(row[7]),
        )

    def delete_session(self, session_id: bytes) -> None:
        """Drop a journal entry (eviction, discard, or completion)."""
        try:
            with self._lock:
                conn = self._require_conn()
                with conn:
                    cursor = conn.execute(
                        "DELETE FROM sessions WHERE session_id = ?", (session_id,)
                    )
        except sqlite3.Error as exc:
            raise StoreError("session journal delete failed: %s" % exc) from exc
        if cursor.rowcount:
            self._count("repro_store_journal_deletes_total")

    def session_count(self) -> int:
        """Number of journalled sessions."""
        with self._lock:
            conn = self._require_conn()
            row = conn.execute("SELECT COUNT(*) FROM sessions").fetchone()
        return int(row[0])

    # -- fixed-base tables ------------------------------------------------

    def save_fixed_base_table(
        self, fingerprint: str, table: FixedBaseTable, label: str = ""
    ) -> None:
        """Persist one table's full precomputation under a key fingerprint.

        ``label`` distinguishes multiple tables for one key (e.g. an
        obfuscator table over ``n^2`` next to a plaintext-space table).
        """
        rows = table.export_rows()
        entry_width = bytes_for_bits(max(1, table.modulus.bit_length()))
        flat = tuple(entry for row in rows for entry in row)
        try:
            with self._lock:
                conn = self._require_conn()
                with conn:
                    conn.execute(
                        "INSERT OR REPLACE INTO fixed_base_tables"
                        " (fingerprint, label, base, modulus, exponent_bits,"
                        " window, entry_width, rows_blob)"
                        " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                        (
                            fingerprint,
                            label,
                            _int_blob(table.base),
                            _int_blob(table.modulus),
                            table.exponent_bits,
                            table.window,
                            entry_width,
                            encode_int_seq(flat, entry_width),
                        ),
                    )
        except sqlite3.Error as exc:
            raise StoreError("fixed-base table write failed: %s" % exc) from exc

    def load_fixed_base_table(
        self, fingerprint: str, label: str = ""
    ) -> Optional[FixedBaseTable]:
        """Rebuild a persisted table without recomputing any entry."""
        try:
            with self._lock:
                conn = self._require_conn()
                row = conn.execute(
                    "SELECT base, modulus, exponent_bits, window, entry_width,"
                    " rows_blob FROM fixed_base_tables"
                    " WHERE fingerprint = ? AND label = ?",
                    (fingerprint, label),
                ).fetchone()
        except sqlite3.Error as exc:
            raise StoreError("fixed-base table read failed: %s" % exc) from exc
        if row is None:
            self._count("repro_store_table_misses_total")
            return None
        base = decode_int(row[0])
        modulus = decode_int(row[1])
        exponent_bits, window, entry_width = int(row[2]), int(row[3]), int(row[4])
        flat = decode_int_seq(row[5], entry_width)
        slots = 1 << window
        if len(flat) % slots:
            raise StoreError(
                "corrupt fixed-base table for %s: %d entries not divisible"
                " by %d slots" % (fingerprint, len(flat), slots)
            )
        rows = [
            list(flat[start : start + slots])
            for start in range(0, len(flat), slots)
        ]
        table = FixedBaseTable.from_rows(base, modulus, exponent_bits, window, rows)
        self._count("repro_store_table_hits_total")
        return table

    # -- obfuscator pools (encryptions of zero) ---------------------------

    def save_pool(
        self, public: PaillierPublicKey, obfuscators: Sequence[int]
    ) -> None:
        """Persist leftover precomputed obfuscators for a key.

        Replaces any previous pool row for the fingerprint: pooled
        encryptions are single-use, so the store must only ever hold
        obfuscators that have *not* been handed out.
        """
        entry_width = bytes_for_bits(max(1, public.nsquare.bit_length()))
        fingerprint = key_fingerprint(public.n)
        try:
            with self._lock:
                conn = self._require_conn()
                with conn:
                    conn.execute(
                        "INSERT OR REPLACE INTO zero_pools"
                        " (fingerprint, public_n, entry_width, count, pool_blob)"
                        " VALUES (?, ?, ?, ?, ?)",
                        (
                            fingerprint,
                            _int_blob(public.n),
                            entry_width,
                            len(obfuscators),
                            encode_int_seq(tuple(obfuscators), entry_width),
                        ),
                    )
        except sqlite3.Error as exc:
            raise StoreError("pool write failed: %s" % exc) from exc

    def load_pool_obfuscators(self, public: PaillierPublicKey) -> List[int]:
        """Restore (and *consume*) the persisted pool for a key.

        The row is deleted in the same transaction that reads it, so
        two processes warm-starting from one store can never both hand
        out the same single-use obfuscator.
        """
        fingerprint = key_fingerprint(public.n)
        try:
            with self._lock:
                conn = self._require_conn()
                with conn:
                    row = conn.execute(
                        "SELECT entry_width, pool_blob FROM zero_pools"
                        " WHERE fingerprint = ?",
                        (fingerprint,),
                    ).fetchone()
                    if row is not None:
                        conn.execute(
                            "DELETE FROM zero_pools WHERE fingerprint = ?",
                            (fingerprint,),
                        )
        except sqlite3.Error as exc:
            raise StoreError("pool read failed: %s" % exc) from exc
        if row is None:
            self._count("repro_store_pool_misses_total")
            return []
        values = list(decode_int_seq(row[1], int(row[0])))
        self._count("repro_store_pool_hits_total")
        self._count("repro_store_pool_obfuscators_restored_total", len(values))
        return values

    # -- composed warm-start helpers --------------------------------------

    def load_randomness_pool(
        self,
        public: PaillierPublicKey,
        rng: Union[RandomSource, bytes, str, int, None] = None,
        fixed_base: bool = True,
        window: Optional[int] = None,
    ) -> RandomnessPool:
        """A :class:`~repro.crypto.paillier.RandomnessPool` warm-started
        from the store: persisted fixed-base table plus any leftover
        pooled obfuscators.  Misses degrade to a cold pool — the store
        is an optimisation, never a correctness requirement.
        """
        fingerprint = key_fingerprint(public.n)
        table = (
            self.load_fixed_base_table(fingerprint, label="obfuscator")
            if fixed_base
            else None
        )
        pool = RandomnessPool(
            public, rng=rng, fixed_base=fixed_base, window=window, table=table
        )
        restored = self.load_pool_obfuscators(public)
        if restored:
            pool.restore(restored)
        return pool

    def save_randomness_pool(self, pool: RandomnessPool) -> None:
        """Persist a pool's table and *remaining* obfuscators."""
        fingerprint = key_fingerprint(pool.public_key.n)
        table = pool.export_table()
        if table is not None:
            self.save_fixed_base_table(fingerprint, table, label="obfuscator")
        self.save_pool(pool.public_key, pool.export_obfuscators())

    # -- calibration profiles ---------------------------------------------

    def save_calibration(self, kind: str, profile_json: str) -> None:
        """Persist a calibration profile document under ``kind`` (upsert).

        The document is the JSON emitted by
        :meth:`repro.crypto.calibration.CalibrationProfile.to_json`;
        ``repro calibrate`` writes it once and every later
        ``serve``/``sum`` run routes engine batches through it.
        """
        if not kind:
            raise StoreError("calibration kind must be non-empty")
        try:
            with self._lock:
                conn = self._require_conn()
                with conn:
                    conn.execute(
                        "INSERT OR REPLACE INTO calibration"
                        " (kind, profile, updated_at) VALUES (?, ?, ?)",
                        (kind, profile_json, time.time()),
                    )
        except sqlite3.Error as exc:
            raise StoreError("calibration write failed: %s" % exc) from exc
        self._count("repro_store_calibration_writes_total")

    def load_calibration(self, kind: str) -> Optional[str]:
        """The persisted profile document for ``kind``, or None."""
        try:
            with self._lock:
                conn = self._require_conn()
                row = conn.execute(
                    "SELECT profile FROM calibration WHERE kind = ?",
                    (kind,),
                ).fetchone()
        except sqlite3.Error as exc:
            raise StoreError("calibration read failed: %s" % exc) from exc
        if row is None:
            self._count("repro_store_calibration_misses_total")
            return None
        self._count("repro_store_calibration_hits_total")
        return str(row[0])

    # -- named databases --------------------------------------------------

    def save_database(self, name: str, database: ServerDatabase) -> None:
        """Persist a server database under ``name`` (upsert)."""
        if not name:
            raise StoreError("database name must be non-empty")
        entry_width = bytes_for_bits(database.value_bits)
        try:
            with self._lock:
                conn = self._require_conn()
                with conn:
                    conn.execute(
                        "INSERT OR REPLACE INTO databases"
                        " (name, value_bits, length, entry_width, values_blob)"
                        " VALUES (?, ?, ?, ?, ?)",
                        (
                            name,
                            database.value_bits,
                            len(database),
                            entry_width,
                            encode_int_seq(database.values, entry_width),
                        ),
                    )
        except sqlite3.Error as exc:
            raise StoreError("database write failed: %s" % exc) from exc

    def load_database(self, name: str) -> ServerDatabase:
        """Load a named database; :class:`StoreError` when unknown."""
        try:
            with self._lock:
                conn = self._require_conn()
                row = conn.execute(
                    "SELECT value_bits, length, entry_width, values_blob"
                    " FROM databases WHERE name = ?",
                    (name,),
                ).fetchone()
        except sqlite3.Error as exc:
            raise StoreError("database read failed: %s" % exc) from exc
        if row is None:
            raise StoreError(
                "no database named %r in the store (try 'repro store ls')" % name
            )
        values = decode_int_seq(row[3], int(row[2]))
        if len(values) != int(row[1]):
            raise StoreError(
                "corrupt database %r: %d values, header says %d"
                % (name, len(values), int(row[1]))
            )
        self._count("repro_store_db_loads_total")
        return ServerDatabase(values, value_bits=int(row[0]))

    def list_databases(self) -> List[Tuple[str, int, int]]:
        """All stored databases as ``(name, length, value_bits)`` rows."""
        with self._lock:
            conn = self._require_conn()
            rows = conn.execute(
                "SELECT name, length, value_bits FROM databases ORDER BY name"
            ).fetchall()
        return [(str(r[0]), int(r[1]), int(r[2])) for r in rows]

    def __repr__(self) -> str:
        return "StateStore(path=%r)" % self.path
