"""``seclint`` — static secret-hygiene and lock-discipline analysis.

The privacy guarantee of the selected-sum protocol rests on invariants
the type system cannot see: the client's 0/1 index vector and the
Paillier factors ``p``/``q`` must never reach exception text, reprs, or
the wire; all randomness in :mod:`repro.crypto` and :mod:`repro.spfe`
must come from :class:`~repro.crypto.rng.SecureRandom` or
:class:`~repro.crypto.rng.DeterministicRandom`; and the shared mutable
state of the concurrent runtime (:class:`~repro.spfe.session.SessionRegistry`,
:class:`~repro.net.server.ServerStats`,
:class:`~repro.crypto.paillier.RandomnessPool`,
:class:`~repro.crypto.engine.CryptoEngine`) must only be touched under
its lock.  This package checks those invariants mechanically, over the
:mod:`ast` of every source file, on every PR.

Architecture (see ``docs/static-analysis.md`` for the rule catalogue):

* :mod:`repro.analysis.findings` — the :class:`Finding` record and its
  stable ``file:line:col: RULE message`` rendering.
* :mod:`repro.analysis.config` — :class:`AnalysisConfig`, the secret
  registry and lock-guard declarations tuned to this codebase.
* :mod:`repro.analysis.registry` — the rule registry; rules register
  themselves with :func:`register` and are discovered by id.
* :mod:`repro.analysis.rules` — the shipped rules SEC001–SEC005.
* :mod:`repro.analysis.suppressions` — ``# seclint: disable=SEC0xx --
  justification`` inline suppressions (justification required).
* :mod:`repro.analysis.baseline` — the committed baseline file of
  grandfathered findings.
* :mod:`repro.analysis.engine` — file walking, rule execution,
  suppression and baseline filtering, deterministic ordering.
* :mod:`repro.analysis.cli` — ``python -m repro.analysis`` (exits
  non-zero on any new finding; CI runs it as a hard gate).
"""

from repro.analysis.baseline import fingerprint, load_baseline, write_baseline
from repro.analysis.cli import main
from repro.analysis.config import AnalysisConfig, LockGuard
from repro.analysis.engine import AnalysisReport, analyze_paths
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, all_rules, register, rule_ids

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "Finding",
    "LockGuard",
    "Rule",
    "all_rules",
    "analyze_paths",
    "fingerprint",
    "load_baseline",
    "main",
    "register",
    "rule_ids",
    "write_baseline",
]
