"""Analyzer configuration: the secret registry and lock-guard declarations.

The defaults are tuned to *this* codebase — the names below are the
values the paper's privacy argument actually depends on:

* ``p``/``q`` — the Paillier/RSA prime factors (the private key).
* ``_key``/``_value`` — the HMAC-DRBG internal state of
  :class:`~repro.crypto.rng.DeterministicRandom`; leaking either makes
  every past and future draw predictable.
* ``selections`` — the client's 0/1 index vector, the very thing the
  selected-sum protocol hides from the server.
* ``weights`` — the client's private weight vector.
* ``r``/``r_to_n`` — encryption obfuscators; an obfuscator plus its
  ciphertext reveals the plaintext.
* ``seed`` — DRBG seed material.

Tests build custom configs (``AnalysisConfig(secret_names=...)``) so
rules stay unit-testable against synthetic fixtures without touching
the shipped defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

__all__ = ["AnalysisConfig", "LockGuard", "default_config"]


@dataclass(frozen=True)
class LockGuard:
    """Declares that writes to ``guarded_attrs`` of ``class_name``
    require holding ``with self.<lock_attr>:`` in the same function.

    ``__init__`` is exempt by default (construction happens-before any
    sharing), as is any method whose name ends in ``_locked`` — the
    codebase convention for "caller holds the lock"
    (:meth:`repro.crypto.paillier.RandomnessPool._obfuscator_locked`).
    """

    class_name: str
    lock_attr: str
    guarded_attrs: FrozenSet[str]
    exempt_methods: FrozenSet[str] = frozenset({"__init__"})


@dataclass(frozen=True)
class AnalysisConfig:
    """Everything the rules need to know about the codebase under test."""

    #: names whose values are secret wherever they appear (SEC001)
    secret_names: FrozenSet[str] = frozenset(
        {"p", "q", "_key", "_value", "selections", "weights", "r", "r_to_n", "seed"}
    )
    #: bytes-valued secrets that must be compared constant-time (SEC003)
    secret_bytes_names: FrozenSet[str] = frozenset(
        {"_key", "_value", "seed", "digest", "mac", "tag"}
    )
    #: calls that launder a secret into a non-secret (length, type, ...)
    sanitizer_calls: FrozenSet[str] = frozenset({"len", "type", "bool", "id"})
    #: explicit exception constructor names (suffix match adds the rest)
    exception_names: FrozenSet[str] = frozenset(
        {"PolicyViolation", "ServerBusy", "TransportTimeout", "RetryExhausted"}
    )
    #: callables named ``*<suffix>`` are treated as exception constructors
    exception_name_suffixes: Tuple[str, ...] = ("Error", "Exception", "Warning")
    #: functions allowed to call ``to_bytes`` on secret material
    serializer_functions: FrozenSet[str] = frozenset(
        {"to_bytes", "randbytes", "_seed_to_bytes", "encode_int", "ciphertext_to_bytes"}
    )
    #: modules (path segment tuples) allowed to serialize secrets freely
    serializer_modules: Tuple[Tuple[str, ...], ...] = (
        ("repro", "crypto", "serialization.py"),
    )
    #: path segments under which ``random`` is forbidden (SEC002)
    rng_restricted_parts: Tuple[Tuple[str, ...], ...] = (
        ("repro", "crypto"),
        ("repro", "spfe"),
    )
    #: path segments where broad swallowing excepts are forbidden (SEC005)
    except_restricted_parts: Tuple[Tuple[str, ...], ...] = (
        ("repro", "crypto"),
        ("repro", "net"),
    )
    #: method names that mutate their receiver (SEC004 treats
    #: ``self.<guarded>.append(...)`` as a write)
    mutating_methods: FrozenSet[str] = frozenset(
        {
            "append",
            "extend",
            "insert",
            "remove",
            "pop",
            "popitem",
            "clear",
            "update",
            "setdefault",
            "add",
            "discard",
            "move_to_end",
        }
    )
    #: the lock-guarded shared state added by the concurrent runtime
    lock_guards: Tuple[LockGuard, ...] = (
        LockGuard(
            "SessionRegistry",
            "_lock",
            frozenset({"_states", "resident_bytes", "evictions"}),
        ),
        # the observability instruments every subsystem now shares
        LockGuard("Counter", "_lock", frozenset({"_value"})),
        LockGuard("Gauge", "_lock", frozenset({"_value"})),
        LockGuard(
            "Histogram",
            "_lock",
            frozenset({"_bucket_counts", "_sum_value", "_count"}),
        ),
        LockGuard("MetricsRegistry", "_lock", frozenset({"_metrics", "_kinds"})),
        LockGuard(
            "Tracer", "_lock", frozenset({"_spans", "_totals", "_counts"})
        ),
        LockGuard(
            "RandomnessPool",
            "_lock",
            frozenset({"_pool", "_table", "generated", "misses"}),
        ),
        LockGuard(
            "CryptoEngine",
            "_lock",
            frozenset(
                {
                    "parallel_batches",
                    "serial_batches",
                    "_fixed_base_h",
                    "_closed",
                }
            ),
        ),
        # the v2 engine's warm-pool lifecycle and per-process key cache
        LockGuard(
            "WarmWorkerPool",
            "_lock",
            frozenset({"_executor", "_broken", "_closed", "_primed_key"}),
        ),
        LockGuard("KeyContextCache", "_lock", frozenset({"_contexts"})),
        LockGuard("SpfeServer", "_active_lock", frozenset({"_active"})),
        # the backend-neutral accounting core shared by both server
        # front-ends (threads and asyncio)
        LockGuard("ServerAccounting", "_budget_lock", frozenset({"_in_flight"})),
        LockGuard("ServerAccounting", "_peak_lock", frozenset({"_active_peak"})),
        # the durable-state tier: one SQLite connection behind one lock,
        # and the supervisor's child handle + restart accounting
        LockGuard("StateStore", "_lock", frozenset({"_conn"})),
        LockGuard(
            "ServerSupervisor",
            "_lock",
            frozenset(
                {"_child", "_monitor", "_stopping", "_gave_up", "_restarts"}
            ),
        ),
    )

    def is_exception_name(self, name: str) -> bool:
        """True when ``name`` looks like an exception constructor."""
        return name in self.exception_names or name.endswith(
            self.exception_name_suffixes
        )


def default_config() -> AnalysisConfig:
    """The shipped configuration, tuned to this repository."""
    return AnalysisConfig()
