"""The :class:`Finding` record emitted by every rule.

Findings are value objects with total ordering so analyzer output is
deterministic: sorted by path, then line, then column, then rule id.
The rendered form ``file:line:col: RULE message`` matches what editors
and CI log scrapers expect from a linter.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding", "BAD_SUPPRESSION_RULE_ID"]

#: Analyzer-integrity findings: malformed suppressions, unknown rule ids
#: in a suppression, unparseable files.  SEC000 findings can never be
#: suppressed or baselined — they mean the gate itself is being misused.
BAD_SUPPRESSION_RULE_ID = "SEC000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    The field order *is* the sort order (path, line, col, rule_id,
    message), which makes ``sorted(findings)`` the canonical output
    ordering everywhere.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """``file:line:col: RULE message`` — one line per finding."""
        return "%s:%d:%d: %s %s" % (
            self.path,
            self.line,
            self.col,
            self.rule_id,
            self.message,
        )
