"""Rule registry: rules declare themselves, the engine discovers them.

Adding a rule is three steps (see ``docs/static-analysis.md``):
subclass :class:`Rule`, set ``rule_id``/``name``/``rationale``,
decorate with :func:`register`.  Ids must be unique and match
``SEC\\d{3}``; the engine runs rules sorted by id so output order never
depends on import order.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Iterable, List, Type, TypeVar

from repro.analysis.findings import Finding
from repro.analysis.context import FileContext

__all__ = ["Rule", "register", "all_rules", "rule_ids"]

_RULE_ID_RE = re.compile(r"^SEC\d{3}$")

_REGISTRY: Dict[str, Type["Rule"]] = {}

R = TypeVar("R", bound=Type["Rule"])


class Rule:
    """One check over one file's AST.

    Subclasses override :meth:`check` and yield
    :class:`~repro.analysis.findings.Finding` objects; the engine
    handles suppressions, the baseline, and ordering.
    """

    rule_id: str = ""
    name: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield findings for ``ctx``; the base rule finds nothing."""
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, line: int, col: int, message: str
    ) -> Finding:
        """Convenience constructor stamping this rule's id."""
        return Finding(ctx.relpath, line, col, self.rule_id, message)


def register(cls: R) -> R:
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    if not _RULE_ID_RE.match(cls.rule_id):
        raise ValueError("rule id %r must match SEC\\d{3}" % (cls.rule_id,))
    if cls.rule_id in _REGISTRY:
        raise ValueError("duplicate rule id %s" % cls.rule_id)
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    # importing the rules package populates the registry exactly once
    import repro.analysis.rules  # noqa: F401

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_ids() -> FrozenSet[str]:
    """The registered ids (suppressions are validated against these)."""
    import repro.analysis.rules  # noqa: F401

    return frozenset(_REGISTRY)
