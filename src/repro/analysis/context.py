"""Per-file analysis context and shared AST helpers.

A :class:`FileContext` bundles what every rule needs — the parsed tree,
the raw source lines, the path (for the path-scoped rules), and the
:class:`~repro.analysis.config.AnalysisConfig`.  The module also holds
the small AST predicates shared by several rules, most importantly
:func:`secret_names_in`, the taint test of SEC001/SEC003.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.config import AnalysisConfig

__all__ = [
    "FileContext",
    "secret_names_in",
    "self_attribute",
    "simple_name",
]


@dataclass
class FileContext:
    """Everything one rule invocation sees about one source file."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    config: AnalysisConfig

    def __post_init__(self) -> None:
        self._lines: List[str] = self.source.splitlines()

    @classmethod
    def from_source(
        cls,
        source: str,
        config: AnalysisConfig,
        relpath: str = "<memory>",
        path: Optional[Path] = None,
    ) -> "FileContext":
        """Build a context from an in-memory source string (tests)."""
        tree = ast.parse(source, filename=relpath)
        return cls(path or Path(relpath), relpath, source, tree, config)

    def line_text(self, line: int) -> str:
        """The 1-indexed source line, or '' past the end."""
        if 1 <= line <= len(self._lines):
            return self._lines[line - 1]
        return ""

    def in_parts(self, parts_list: Sequence[Tuple[str, ...]]) -> bool:
        """True when the file's path contains one of the segment runs.

        ``("repro", "crypto")`` matches ``src/repro/crypto/x.py`` and
        ``tests/analysis/fixtures/sec002/repro/crypto/x.py`` but not
        ``myrepro/crypto/x.py`` — matching is per whole path segment.
        """
        segments = PurePosixPath(self.relpath).parts
        for parts in parts_list:
            width = len(parts)
            for start in range(len(segments) - width + 1):
                if segments[start : start + width] == tuple(parts):
                    return True
        return False


def simple_name(node: ast.AST) -> Optional[str]:
    """The bare name of a ``Name`` or the attribute of an ``Attribute``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def self_attribute(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` is exactly ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _iter_unsanitized(
    node: ast.AST, sanitizers: FrozenSet[str]
) -> Iterator[ast.AST]:
    """Walk ``node`` skipping subtrees laundered by a sanitizer call."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in sanitizers
    ):
        return
    yield node
    for child in ast.iter_child_nodes(node):
        yield from _iter_unsanitized(child, sanitizers)


def secret_names_in(
    node: ast.AST,
    config: AnalysisConfig,
    names: Optional[FrozenSet[str]] = None,
) -> List[str]:
    """Sorted secret names referenced anywhere under ``node``.

    A reference is a ``Name`` load or an ``Attribute`` access whose
    terminal name is in the registry.  Subtrees under a sanitizer call
    (``len(secret)``, ``type(secret)``) are skipped — those reveal
    metadata, not the value.
    """
    registry = config.secret_names if names is None else names
    hits: Set[str] = set()
    for sub in _iter_unsanitized(node, config.sanitizer_calls):
        if isinstance(sub, ast.Name) and sub.id in registry:
            hits.add(sub.id)
        elif isinstance(sub, ast.Attribute) and sub.attr in registry:
            hits.add(sub.attr)
    return sorted(hits)
