"""``python -m repro.analysis`` — the seclint command line.

Usage::

    python -m repro.analysis src                   # gate: exit 1 on findings
    python -m repro.analysis src --update-baseline # grandfather current tree
    python -m repro.analysis --list-rules          # rule catalogue
    python -m repro.analysis src --json            # machine-readable output

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.  CI runs
the first form as a hard gate; the committed baseline (default
``.seclint-baseline.json``, used only when present) grandfathers
historical findings without weakening the gate for new code.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, TextIO

from repro.analysis.baseline import BaselineError, load_baseline, write_baseline
from repro.analysis.engine import analyze_paths
from repro.analysis.findings import BAD_SUPPRESSION_RULE_ID
from repro.analysis.registry import all_rules

__all__ = ["main", "build_parser"]

DEFAULT_BASELINE = ".seclint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    """The seclint argument parser (exposed for doc/tooling use)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="seclint: secret-hygiene and lock-discipline analysis",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyze (e.g. src)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="baseline file of grandfathered findings "
             "(default: %s when it exists)" % DEFAULT_BASELINE,
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as JSON instead of text",
    )
    return parser


def _list_rules(out: TextIO) -> None:
    out.write(
        "%s analyzer-integrity (malformed suppression, unparseable file); "
        "never suppressible\n" % BAD_SUPPRESSION_RULE_ID
    )
    for rule in all_rules():
        out.write("%s %s: %s\n" % (rule.rule_id, rule.name, rule.rationale))


def main(
    argv: Optional[List[str]] = None,
    out: Optional[TextIO] = None,
    err: Optional[TextIO] = None,
) -> int:
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        _list_rules(out)
        return 0
    if not options.paths:
        err.write("error: no paths given (try: python -m repro.analysis src)\n")
        return 2
    missing = [str(p) for p in options.paths if not p.exists()]
    if missing:
        err.write("error: no such path: %s\n" % ", ".join(missing))
        return 2

    baseline_path = options.baseline
    if baseline_path is None:
        default = Path(DEFAULT_BASELINE)
        baseline_path = default if default.exists() else None
    if options.no_baseline:
        baseline_path = None

    baseline = None
    if baseline_path is not None and not options.update_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            err.write("error: %s\n" % exc)
            return 2

    report = analyze_paths(options.paths, baseline=baseline)

    if options.update_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE)
        hard = [
            f for f in report.findings
            if f.rule_id == BAD_SUPPRESSION_RULE_ID
        ]
        if hard:
            for finding in hard:
                err.write(finding.render() + "\n")
            err.write(
                "error: fix analyzer-integrity findings before recording "
                "a baseline\n"
            )
            return 2
        count = write_baseline(
            target,
            [(f, report.line_text_for(f)) for f in report.findings],
        )
        out.write(
            "seclint: baseline %s updated with %d finding(s)\n"
            % (target, count)
        )
        return 0

    if options.as_json:
        payload = {
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "rule": f.rule_id,
                    "message": f.message,
                }
                for f in report.findings
            ],
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
            "files_scanned": report.files_scanned,
        }
        out.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    else:
        for finding in report.findings:
            out.write(finding.render() + "\n")
        out.write(
            "seclint: %d finding(s), %d suppressed, %d baselined, "
            "%d file(s) scanned\n"
            % (
                len(report.findings),
                len(report.suppressed),
                len(report.baselined),
                report.files_scanned,
            )
        )
    return 1 if report.findings else 0
