"""Analysis driver: walk files, run rules, filter, order.

The pipeline per file is parse → run every registered rule → drop
findings covered by a valid inline suppression → drop findings whose
fingerprint is in the committed baseline → report the rest, globally
sorted.  Malformed suppressions and unparseable files surface as
SEC000 findings which no suppression or baseline can hide.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.baseline import fingerprint
from repro.analysis.config import AnalysisConfig, default_config
from repro.analysis.context import FileContext
from repro.analysis.findings import BAD_SUPPRESSION_RULE_ID, Finding
from repro.analysis.registry import Rule, all_rules, rule_ids
from repro.analysis.suppressions import collect_suppressions

__all__ = ["AnalysisReport", "analyze_paths", "iter_python_files"]


@dataclass
class AnalysisReport:
    """Outcome of one analyzer run."""

    #: findings that should fail the gate, globally sorted
    findings: List[Finding] = field(default_factory=list)
    #: (finding, justification) pairs silenced by inline suppressions
    suppressed: List[Tuple[Finding, str]] = field(default_factory=list)
    #: findings grandfathered by the baseline
    baselined: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing new was found."""
        return not self.findings

    def line_text_for(self, finding: Finding) -> str:
        """The flagged source line (for baseline fingerprinting)."""
        return self._line_texts.get((finding.path, finding.line), "")

    _line_texts: Dict[Tuple[str, int], str] = field(default_factory=dict)


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """All ``.py`` files under ``paths``, sorted, ``__pycache__`` skipped."""
    found = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            found.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if "__pycache__" not in candidate.parts:
                    found.add(candidate)
    return sorted(found)


def _relpath(path: Path) -> str:
    """Posix path relative to the CWD when possible (stable baselines)."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def analyze_paths(
    paths: Sequence[Path],
    config: Optional[AnalysisConfig] = None,
    baseline: Optional["Counter[str]"] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> AnalysisReport:
    """Run every rule over every Python file under ``paths``."""
    config = config or default_config()
    active_rules = list(rules) if rules is not None else all_rules()
    known = rule_ids()
    remaining: "Counter[str]" = Counter(baseline or ())
    report = AnalysisReport()
    for path in iter_python_files(paths):
        report.files_scanned += 1
        relpath = _relpath(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            report.findings.append(
                Finding(
                    relpath, 1, 0, BAD_SUPPRESSION_RULE_ID,
                    "unreadable file: %s" % exc,
                )
            )
            continue
        try:
            ctx = FileContext.from_source(source, config, relpath, path)
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    relpath, exc.lineno or 1, 0, BAD_SUPPRESSION_RULE_ID,
                    "could not parse: %s" % exc.msg,
                )
            )
            continue
        suppressions, problems = collect_suppressions(source, known)
        for line, reason in problems:
            report.findings.append(
                Finding(relpath, line, 0, BAD_SUPPRESSION_RULE_ID, reason)
            )
        raw: List[Finding] = []
        for rule in active_rules:
            raw.extend(rule.check(ctx))
        for finding in sorted(set(raw)):
            report._line_texts[(finding.path, finding.line)] = ctx.line_text(
                finding.line
            )
            suppression = suppressions.get(finding.line)
            if (
                suppression is not None
                and finding.rule_id in suppression.rule_ids
                and finding.rule_id != BAD_SUPPRESSION_RULE_ID
            ):
                report.suppressed.append((finding, suppression.justification))
                continue
            if finding.rule_id != BAD_SUPPRESSION_RULE_ID:
                print_key = fingerprint(finding, ctx.line_text(finding.line))
                if remaining[print_key] > 0:
                    remaining[print_key] -= 1
                    report.baselined.append(finding)
                    continue
            report.findings.append(finding)
    report.findings.sort()
    report.suppressed.sort(key=lambda pair: pair[0])
    report.baselined.sort()
    return report
