"""The committed baseline of grandfathered findings.

A baseline lets the CI gate go hard *today* without first fixing every
historical finding: ``--update-baseline`` records the current findings
as fingerprints, the committed file grandfathers exactly those, and any
*new* finding still fails the build.  Shrinking the baseline over time
is the workflow; growing it requires a deliberate re-record in review.

Fingerprints hash the file path, the rule id, and the *text* of the
flagged line — not the line number — so unrelated edits above a
grandfathered finding do not churn the file.  Identical flagged lines
are disambiguated by multiplicity: a baseline with one entry masks one
occurrence, not every copy.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.findings import Finding

__all__ = ["fingerprint", "load_baseline", "write_baseline", "BaselineError"]

_VERSION = 1


class BaselineError(ValueError):
    """Raised when a baseline file cannot be parsed."""


def fingerprint(finding: Finding, line_text: str) -> str:
    """Stable id for one finding: path + rule + normalized line text."""
    material = "%s::%s::%s" % (
        finding.path,
        finding.rule_id,
        " ".join(line_text.split()),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:20]


def load_baseline(path: Path) -> "Counter[str]":
    """Fingerprint multiset from a baseline file (empty if absent)."""
    if not path.exists():
        return Counter()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise BaselineError("cannot read baseline %s: %s" % (path, exc)) from exc
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise BaselineError(
            "baseline %s has unsupported format (want version %d)"
            % (path, _VERSION)
        )
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise BaselineError("baseline %s: 'entries' must be a list" % path)
    counts: "Counter[str]" = Counter()
    for entry in entries:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise BaselineError(
                "baseline %s: every entry needs a 'fingerprint'" % path
            )
        counts[str(entry["fingerprint"])] += 1
    return counts


def write_baseline(
    path: Path, findings: Iterable[Tuple[Finding, str]]
) -> int:
    """Record ``(finding, line_text)`` pairs; returns the entry count.

    Entries keep the rule id, path, and flagged text alongside the
    fingerprint so reviewers can audit what exactly was grandfathered.
    """
    entries: List[Dict[str, str]] = []
    for finding, line_text in findings:
        entries.append(
            {
                "fingerprint": fingerprint(finding, line_text),
                "rule": finding.rule_id,
                "path": finding.path,
                "text": " ".join(line_text.split()),
            }
        )
    entries.sort(key=lambda e: (e["path"], e["rule"], e["fingerprint"]))
    payload = {"version": _VERSION, "entries": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)
