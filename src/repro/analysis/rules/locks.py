"""SEC004: writes to lock-guarded shared state outside its lock.

PRs 2–3 made the server runtime concurrent, and the correctness of the
shared pieces — :class:`~repro.spfe.session.SessionRegistry`'s LRU map
and byte accounting, :class:`~repro.net.server.ServerStats` counters,
:class:`~repro.crypto.paillier.RandomnessPool`'s pool and RNG,
:class:`~repro.crypto.engine.CryptoEngine`'s process-pool state —
rests on every *write* happening under the object's lock.  A single
unlocked ``self._states.pop(...)`` is a data race that no test reliably
catches; this rule makes the discipline mechanical.

The guarded classes and attributes are declared in
:class:`~repro.analysis.config.AnalysisConfig.lock_guards`.  Within a
declared class, every method is scanned for

* assignments/augmented assignments to ``self.<guarded>`` (including
  subscript writes ``self._counts[k] += 1``), and
* mutating method calls ``self.<guarded>.append/pop/update/...``

that are not lexically inside ``with self.<lock>:``.  Exemptions:
``__init__`` (construction happens-before sharing) and methods whose
name ends in ``_locked`` — the codebase convention for "caller already
holds the lock".
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.config import LockGuard
from repro.analysis.context import FileContext, self_attribute
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["LockDisciplineRule"]


@register
class LockDisciplineRule(Rule):
    """SEC004: a declared lock-guarded attribute is written outside
    ``with self.<lock>:``."""

    rule_id = "SEC004"
    name = "lock-discipline"
    rationale = (
        "Shared mutable runtime state (session registry, server stats, "
        "randomness pools, engine pool state) is only consistent under "
        "its declared lock; unlocked writes are silent data races."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Find writes to lock-guarded attributes outside the lock."""
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            guards = [
                g for g in ctx.config.lock_guards if g.class_name == node.name
            ]
            if not guards:
                continue
            attr_to_lock: Dict[str, str] = {}
            exempt: Set[str] = set()
            lock_names: Set[str] = set()
            for guard in guards:
                for attr in guard.guarded_attrs:
                    attr_to_lock[attr] = guard.lock_attr
                exempt.update(guard.exempt_methods)
                lock_names.add(guard.lock_attr)
            for method in node.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name in exempt or method.name.endswith("_locked"):
                    continue
                self._scan_block(
                    ctx, method.body, frozenset(), attr_to_lock,
                    lock_names, method.name, findings,
                )
        return findings

    # -- statement walker -------------------------------------------------

    def _scan_block(
        self,
        ctx: FileContext,
        stmts: Sequence[ast.stmt],
        held: "frozenset[str]",
        attr_to_lock: Dict[str, str],
        lock_names: Set[str],
        method: str,
        findings: List[Finding],
    ) -> None:
        for stmt in stmts:
            self._scan_stmt(
                ctx, stmt, held, attr_to_lock, lock_names, method, findings
            )

    def _scan_stmt(
        self,
        ctx: FileContext,
        stmt: ast.stmt,
        held: "frozenset[str]",
        attr_to_lock: Dict[str, str],
        lock_names: Set[str],
        method: str,
        findings: List[Finding],
    ) -> None:
        scan_block = self._scan_block
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired = {
                name
                for item in stmt.items
                for name in [self_attribute(item.context_expr)]
                if name is not None and name in lock_names
            }
            scan_block(
                ctx, stmt.body, held | acquired, attr_to_lock,
                lock_names, method, findings,
            )
        elif isinstance(stmt, (ast.If, ast.While)):
            self._check_expr(ctx, stmt.test, held, attr_to_lock, method, findings)
            scan_block(ctx, stmt.body, held, attr_to_lock, lock_names, method, findings)
            scan_block(ctx, stmt.orelse, held, attr_to_lock, lock_names, method, findings)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_expr(ctx, stmt.iter, held, attr_to_lock, method, findings)
            self._check_write_target(
                ctx, stmt.target, stmt, held, attr_to_lock, method, findings
            )
            scan_block(ctx, stmt.body, held, attr_to_lock, lock_names, method, findings)
            scan_block(ctx, stmt.orelse, held, attr_to_lock, lock_names, method, findings)
        elif isinstance(stmt, ast.Try):
            scan_block(ctx, stmt.body, held, attr_to_lock, lock_names, method, findings)
            for handler in stmt.handlers:
                scan_block(
                    ctx, handler.body, held, attr_to_lock,
                    lock_names, method, findings,
                )
            scan_block(ctx, stmt.orelse, held, attr_to_lock, lock_names, method, findings)
            scan_block(ctx, stmt.finalbody, held, attr_to_lock, lock_names, method, findings)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # nested scopes escape lexical lock analysis; skip conservatively
            return
        elif isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                self._check_write_target(
                    ctx, target, stmt, held, attr_to_lock, method, findings
                )
            value = stmt.value
            if value is not None:
                self._check_expr(ctx, value, held, attr_to_lock, method, findings)
        else:
            self._check_expr(ctx, stmt, held, attr_to_lock, method, findings)

    # -- write detection --------------------------------------------------

    @staticmethod
    def _written_attr(target: ast.AST) -> Optional[Tuple[str, ast.AST]]:
        """``(attr, node)`` when ``target`` writes ``self.<attr>`` or
        ``self.<attr>[...]``."""
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        attr = self_attribute(node)
        if attr is not None:
            return attr, target
        return None

    def _check_write_target(
        self,
        ctx: FileContext,
        target: ast.AST,
        site: ast.stmt,
        held: "frozenset[str]",
        attr_to_lock: Dict[str, str],
        method: str,
        findings: List[Finding],
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_write_target(
                    ctx, element, site, held, attr_to_lock, method, findings
                )
            return
        written = self._written_attr(target)
        if written is None:
            return
        attr, _ = written
        lock = attr_to_lock.get(attr)
        if lock is not None and lock not in held:
            findings.append(
                self.finding(
                    ctx, site.lineno, site.col_offset,
                    "write to lock-guarded self.%s outside 'with "
                    "self.%s:' in %s()" % (attr, lock, method),
                )
            )

    def _check_expr(
        self,
        ctx: FileContext,
        node: ast.AST,
        held: "frozenset[str]",
        attr_to_lock: Dict[str, str],
        method: str,
        findings: List[Finding],
    ) -> None:
        """Flag mutating method calls on guarded attrs inside ``node``."""
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in ctx.config.mutating_methods:
                continue
            receiver = func.value
            if isinstance(receiver, ast.Subscript):
                receiver = receiver.value
            attr = self_attribute(receiver)
            if attr is None:
                continue
            lock = attr_to_lock.get(attr)
            if lock is not None and lock not in held:
                findings.append(
                    self.finding(
                        ctx, sub.lineno, sub.col_offset,
                        "mutating call self.%s.%s() outside 'with "
                        "self.%s:' in %s()" % (attr, func.attr, lock, method),
                    )
                )
