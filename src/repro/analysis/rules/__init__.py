"""The shipped rules.  Importing this package registers SEC001–SEC005.

Each module groups the rules for one invariant family:

* :mod:`repro.analysis.rules.secrets` — SEC001 secret taint into
  formatting/exception/repr/serialization sinks; SEC003 non-constant-
  time comparison of secret bytes.
* :mod:`repro.analysis.rules.rng` — SEC002 stdlib ``random`` inside the
  crypto and protocol packages.
* :mod:`repro.analysis.rules.locks` — SEC004 writes to lock-guarded
  shared state outside its lock.
* :mod:`repro.analysis.rules.excepts` — SEC005 broad exception
  swallowing in the crypto and network packages.
"""

from repro.analysis.rules import excepts, locks, rng, secrets

__all__ = ["excepts", "locks", "rng", "secrets"]
