"""SEC002: stdlib ``random`` is forbidden in the crypto/protocol core.

Every random value in :mod:`repro.crypto` and :mod:`repro.spfe` is
security- or reproducibility-relevant: obfuscators, prime candidates,
DRBG seeds, index blinding.  The Mersenne Twister behind the stdlib
``random`` module is neither cryptographically secure (624 outputs
reconstruct the state) nor part of the repo's seeded-reproducibility
story (the HMAC-DRBG is).  The only sanctioned sources are
:class:`~repro.crypto.rng.SecureRandom` and
:class:`~repro.crypto.rng.DeterministicRandom`.

The rule flags, inside the restricted packages only:

* ``import random`` / ``import random as r`` / ``from random import x``
* any attribute access through a module named ``random``
  (``random.random()``, ``numpy.random.default_rng()``).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["RngDisciplineRule"]


@register
class RngDisciplineRule(Rule):
    """SEC002: ``random`` used where only SecureRandom/DeterministicRandom
    are sanctioned."""

    rule_id = "SEC002"
    name = "rng-discipline"
    rationale = (
        "Mersenne Twister output is predictable from 624 samples and is "
        "outside the repo's seeded-DRBG reproducibility story; crypto "
        "and protocol code must draw from repro.crypto.rng only."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Find stdlib ``random`` usage in the restricted packages."""
        if not ctx.in_parts(ctx.config.rng_restricted_parts):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "random":
                        findings.append(
                            self.finding(
                                ctx, node.lineno, node.col_offset,
                                "import of stdlib 'random' in RNG-restricted "
                                "code; use repro.crypto.rng",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module is not None and (
                    node.module == "random"
                    or node.module.startswith("random.")
                ):
                    findings.append(
                        self.finding(
                            ctx, node.lineno, node.col_offset,
                            "from-import of stdlib 'random' in RNG-"
                            "restricted code; use repro.crypto.rng",
                        )
                    )
            elif isinstance(node, ast.Attribute):
                base = node.value
                if isinstance(base, ast.Name) and base.id == "random":
                    findings.append(
                        self.finding(
                            ctx, node.lineno, node.col_offset,
                            "call through module 'random' (random.%s) in "
                            "RNG-restricted code; use repro.crypto.rng"
                            % node.attr,
                        )
                    )
                elif (
                    isinstance(base, ast.Attribute)
                    and base.attr == "random"
                    and isinstance(base.value, ast.Name)
                ):
                    findings.append(
                        self.finding(
                            ctx, node.lineno, node.col_offset,
                            "call through %s.random.%s in RNG-restricted "
                            "code; use repro.crypto.rng"
                            % (base.value.id, node.attr),
                        )
                    )
        return findings
