"""SEC001 secret taint and SEC003 non-constant-time comparison.

SEC001 is the analyzer's reason to exist: the protocol's privacy claim
is "the server learns nothing beyond the aggregate, the client nothing
beyond the answer", and the fastest way to break it in practice is not
cryptanalysis but an f-string — a prime factor in a
``KeyGenerationError`` message, an index vector in a debug repr, an
obfuscator serialized into a log.  The rule flags any expression that
carries a registered secret name into one of the classic exfiltration
sinks:

* f-strings (``JoinedStr``),
* ``%`` formatting with a string literal on the left,
* ``str.format(...)`` on a string literal,
* exception constructor arguments (``DecryptionError(p)``),
* return values of ``__repr__``/``__str__``,
* ``.to_bytes(...)`` on a secret outside whitelisted serializers.

Metadata-only uses are laundered: ``len(weights)`` or
``type(seed).__name__`` reveal size and type, not the value, and are
not flagged.

SEC003 covers the remaining leak channel of equality tests: comparing
secret byte strings with ``==``/``!=`` short-circuits on the first
differing byte, so a remote caller can binary-search a MAC or DRBG
state one byte at a time.  Secret bytes must be compared with
``hmac.compare_digest``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional

from repro.analysis.context import (
    FileContext,
    secret_names_in,
    simple_name,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["SecretTaintRule", "ConstantTimeRule"]


def _is_str_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


@register
class SecretTaintRule(Rule):
    """SEC001: a registered secret flows into a formatting/exception/
    repr/serialization sink."""

    rule_id = "SEC001"
    name = "secret-taint"
    rationale = (
        "Secrets (key factors, index vectors, DRBG state, obfuscators) "
        "in exception text, format strings, reprs, or ad-hoc "
        "serialization leak through logs and wire errors, voiding the "
        "protocol's privacy claim."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Find secret names flowing into string/exception sinks."""
        findings: List[Finding] = []
        in_serializer_module = ctx.in_parts(ctx.config.serializer_modules)
        self._scan(ctx, ctx.tree, findings, in_serializer_module, False)
        return findings

    # -- traversal --------------------------------------------------------

    def _scan(
        self,
        ctx: FileContext,
        node: ast.AST,
        findings: List[Finding],
        in_serializer: bool,
        in_repr: bool,
    ) -> None:
        for child in ast.iter_child_nodes(node):
            serializer = in_serializer
            repr_fn = in_repr
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                serializer = in_serializer or (
                    child.name in ctx.config.serializer_functions
                )
                repr_fn = child.name in ("__repr__", "__str__")
            self._inspect(ctx, child, findings, serializer, repr_fn)
            self._scan(ctx, child, findings, serializer, repr_fn)

    def _inspect(
        self,
        ctx: FileContext,
        node: ast.AST,
        findings: List[Finding],
        in_serializer: bool,
        in_repr: bool,
    ) -> None:
        config = ctx.config
        if isinstance(node, ast.JoinedStr):
            self._flag(ctx, node, node, findings, "interpolated into an f-string")
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
            if _is_str_constant(node.left):
                self._flag(
                    ctx, node, node.right, findings,
                    "interpolated via %-formatting",
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "format":
                if _is_str_constant(func.value):
                    for arg in self._call_arguments(node):
                        self._flag(
                            ctx, node, arg, findings,
                            "interpolated via str.format",
                        )
            elif isinstance(func, ast.Attribute) and func.attr == "to_bytes":
                if not in_serializer:
                    self._flag(
                        ctx, node, func.value, findings,
                        "serialized with to_bytes outside a whitelisted "
                        "serializer",
                    )
            else:
                callee = simple_name(func)
                if callee is not None and config.is_exception_name(callee):
                    for arg in self._call_arguments(node):
                        self._flag(
                            ctx, node, arg, findings,
                            "passed to exception constructor %s" % callee,
                        )
        elif in_repr and isinstance(node, ast.Return) and node.value is not None:
            self._flag(
                ctx, node, node.value, findings,
                "returned from __repr__/__str__",
            )

    @staticmethod
    def _call_arguments(call: ast.Call) -> Iterator[ast.AST]:
        for arg in call.args:
            yield arg
        for keyword in call.keywords:
            yield keyword.value

    def _flag(
        self,
        ctx: FileContext,
        site: ast.AST,
        expr: ast.AST,
        findings: List[Finding],
        how: str,
    ) -> None:
        names = secret_names_in(expr, ctx.config)
        if not names:
            return
        line = getattr(site, "lineno", 1)
        col = getattr(site, "col_offset", 0)
        findings.append(
            self.finding(
                ctx, line, col,
                "secret %s %s" % ("/".join(names), how),
            )
        )


@register
class ConstantTimeRule(Rule):
    """SEC003: ``==``/``!=`` on secret bytes instead of
    ``hmac.compare_digest``."""

    rule_id = "SEC003"
    name = "non-constant-time-comparison"
    rationale = (
        "Equality on bytes short-circuits at the first mismatch; timing "
        "reveals how much of a secret matched.  Secret byte strings "
        "(DRBG state, MACs, seeds) must use hmac.compare_digest."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Find ``==``/``!=`` comparisons on secret byte strings."""
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for operand in [node.left, *node.comparators]:
                name = self._direct_secret(operand, ctx)
                if name is not None:
                    findings.append(
                        self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            "secret bytes %r compared with ==/!=; use "
                            "hmac.compare_digest" % name,
                        )
                    )
                    break
        return findings

    @staticmethod
    def _direct_secret(node: ast.AST, ctx: FileContext) -> Optional[str]:
        name = simple_name(node)
        if name is not None and name in ctx.config.secret_bytes_names:
            return name
        return None
