"""SEC005: broad exception swallowing in the crypto and network core.

A ``try: ... except Exception: pass`` in :mod:`repro.crypto` or
:mod:`repro.net` converts an invariant violation into silence.  In this
codebase that is doubly dangerous: a swallowed
:class:`~repro.exceptions.ValidationError` means a trust-boundary check
ran and was ignored, and a swallowed crypto failure can turn a refused
decryption into an attacker-observable behavioural difference.  Broad
handlers must either re-raise (possibly as one of the typed
:mod:`repro.exceptions` errors, which the wire layer converts into
typed ERROR frames) or carry an inline suppression with a written
justification — the two sanctioned swallow-alls (the server worker
loop, the engine's degrade-to-serial fallback) do exactly that.

Narrow handlers (``except OSError: pass`` around a best-effort socket
close) are fine and not this rule's business.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

__all__ = ["ExceptionHygieneRule"]

_BROAD = ("Exception", "BaseException")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    if kind is None:
        return True
    if isinstance(kind, ast.Name) and kind.id in _BROAD:
        return True
    if isinstance(kind, ast.Tuple):
        return any(
            isinstance(element, ast.Name) and element.id in _BROAD
            for element in kind.elts
        )
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@register
class ExceptionHygieneRule(Rule):
    """SEC005: ``except``/``except Exception`` that swallows without
    re-raising in repro.crypto / repro.net."""

    rule_id = "SEC005"
    name = "exception-hygiene"
    rationale = (
        "Broad handlers that swallow hide trust-boundary failures and "
        "crypto errors; they must re-raise, convert to a typed "
        "repro.exceptions error, or justify themselves inline."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Find broad handlers that swallow without re-raising."""
        if not ctx.in_parts(ctx.config.except_restricted_parts):
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if _is_broad(handler) and not _reraises(handler):
                    what = (
                        "bare except"
                        if handler.type is None
                        else "broad except"
                    )
                    findings.append(
                        self.finding(
                            ctx, handler.lineno, handler.col_offset,
                            "%s swallows without re-raise or typed-error "
                            "conversion" % what,
                        )
                    )
        return findings
