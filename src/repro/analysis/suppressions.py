"""Inline suppressions: ``# seclint: disable=SEC001 -- justification``.

A suppression silences named rules on one line, and the justification
is *mandatory* — the analyzer exists because "trust me" is not an
argument, so every override must say why.  Two placements work:

* trailing — on the same line as the flagged code::

      except Exception:  # seclint: disable=SEC005 -- worker must survive

* standalone — alone on the line *above* the flagged code (useful when
  the line is already long)::

      # seclint: disable=SEC004 -- rebalance runs before the pool is shared
      self._pool = rebuilt

Malformed suppressions (no ``--`` separator, empty justification,
unknown rule id) are themselves findings — SEC000, which can never be
suppressed or baselined.
"""

from __future__ import annotations

import re
import tokenize
from dataclasses import dataclass
from io import StringIO
from typing import Dict, FrozenSet, List, Tuple

__all__ = ["Suppression", "collect_suppressions"]

_DIRECTIVE_RE = re.compile(r"#\s*seclint:\s*(?P<body>.*)$")
_DISABLE_RE = re.compile(
    r"^disable=(?P<ids>[A-Z0-9,\s]+?)(?:\s+--\s*(?P<why>.*))?$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed directive: which rules it silences, on which line."""

    line: int
    rule_ids: FrozenSet[str]
    justification: str


def collect_suppressions(
    source: str, known_ids: FrozenSet[str]
) -> Tuple[Dict[int, Suppression], List[Tuple[int, str]]]:
    """Parse all directives out of ``source``.

    Returns ``(by_line, problems)`` where ``by_line`` maps the line a
    suppression *applies to* (the comment's own line for trailing
    comments, the following line for standalone ones) to the parsed
    :class:`Suppression`, and ``problems`` lists ``(line, reason)``
    pairs for malformed directives.
    """
    by_line: Dict[int, Suppression] = {}
    problems: List[Tuple[int, str]] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # the engine reports unparseable files separately
        return by_line, problems
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE_RE.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        body = match.group("body").strip()
        parsed = _DISABLE_RE.match(body)
        if parsed is None:
            problems.append(
                (line, "malformed seclint directive %r (expected "
                       "'disable=SEC0xx -- justification')" % body)
            )
            continue
        ids = frozenset(
            part.strip() for part in parsed.group("ids").split(",") if part.strip()
        )
        why = (parsed.group("why") or "").strip()
        if not ids:
            problems.append((line, "suppression names no rule ids"))
            continue
        unknown = sorted(ids - known_ids)
        if unknown:
            problems.append(
                (line, "suppression names unknown rule id(s): %s"
                       % ", ".join(unknown))
            )
            continue
        if not why:
            problems.append(
                (line, "suppression for %s is missing its justification "
                       "('-- why this is safe')" % ", ".join(sorted(ids)))
            )
            continue
        before = lines[line - 1][: token.start[1]] if line <= len(lines) else ""
        target = line + 1 if not before.strip() else line
        by_line[target] = Suppression(target, ids, why)
    return by_line, problems
