"""repro — privacy-preserving statistics computation over remote databases.

A complete reproduction of Subramaniam, Wright & Yang, *Experimental
Analysis of Privacy-Preserving Statistics Computation* (Secure Data
Management workshop @ VLDB, 2004): the private selected-sum protocol
built on the Paillier cryptosystem, its practical optimizations
(batching, preprocessing, multi-client secret sharing), the statistics
layer it enables (means, variances, weighted averages), the generic-SMC
baseline (Yao garbled circuits over our own OT and circuit substrate),
and a deterministic performance model that regenerates every figure of
the paper's evaluation.

Quickstart::

    import repro

    db = repro.ServerDatabase([17, 4, 23, 8, 15])
    result = repro.private_selected_sum(db, [1, 0, 1, 0, 1])
    assert result.value == 17 + 23 + 15

See ``examples/quickstart.py`` for the tour, ``DESIGN.md`` for the
architecture, and ``EXPERIMENTS.md`` for paper-vs-measured numbers.
"""

from repro._version import __version__
from repro.crypto import (
    EncryptedNumber,
    PaillierPrivateKey,
    PaillierPublicKey,
    PaillierScheme,
    RandomnessPool,
    SimulatedPaillier,
    generate_keypair,
)
from repro.datastore import ServerDatabase, WorkloadGenerator
from repro.net import LinkModel, links
from repro.spfe import (
    BatchedSelectedSumProtocol,
    CombinedSelectedSumProtocol,
    ExecutionContext,
    MultiClientSelectedSumProtocol,
    PreprocessedSelectedSumProtocol,
    PrivateStatisticsClient,
    SelectedSumProtocol,
    SumRunResult,
    private_selected_sum,
)
from repro.timing import HardwareProfile, profiles

__all__ = [
    "BatchedSelectedSumProtocol",
    "CombinedSelectedSumProtocol",
    "EncryptedNumber",
    "ExecutionContext",
    "HardwareProfile",
    "LinkModel",
    "MultiClientSelectedSumProtocol",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "PaillierScheme",
    "PreprocessedSelectedSumProtocol",
    "PrivateStatisticsClient",
    "RandomnessPool",
    "SelectedSumProtocol",
    "ServerDatabase",
    "SimulatedPaillier",
    "SumRunResult",
    "WorkloadGenerator",
    "__version__",
    "generate_keypair",
    "links",
    "private_selected_sum",
    "profiles",
]
