"""The paper's two measurement environments, as presets.

§3 of the paper: experiments ran (a) inside the Stevens HPC cluster —
client and server both 2 GHz Pentium-III, gigabit/64 Gbps switching —
and (b) between Chicago (500 MHz UltraSparc client) and Hoboken (1 GHz
Pentium server) over a 56 Kbps dial-up modem.  An :class:`Environment`
bundles the link model and the two hardware profiles and builds ready
:class:`~repro.spfe.context.ExecutionContext` objects, optionally with
the Java ~5x language factor (§3 / Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.link import LinkModel, links
from repro.spfe.context import ExecutionContext
from repro.timing.costmodel import HardwareProfile, profiles

__all__ = ["Environment", "short_distance", "long_distance", "wireless"]


@dataclass(frozen=True)
class Environment:
    """A complete measurement environment from the paper."""

    name: str
    link: LinkModel
    client_profile: HardwareProfile
    server_profile: HardwareProfile
    description: str = ""

    def context(
        self,
        java: bool = False,
        key_bits: int = 512,
        seed: Optional[str] = None,
        scheme=None,
        mode: str = "modelled",
        tracer=None,
    ) -> ExecutionContext:
        """Build an execution context for this environment.

        Args:
            java: apply the paper's measured ~5x Java factor to both
                parties (Figure 9's configuration).
            key_bits: key size (paper: 512).
            seed: deterministic randomness seed (None = secure random).
            scheme: override the homomorphic scheme.
            mode: "modelled" (paper-scale) or "measured" (live crypto).
            tracer: optional :class:`~repro.obs.tracing.Tracer` that
                receives every compute block's duration as a phase span.
        """
        client = self.client_profile.java() if java else self.client_profile
        server = self.server_profile.java() if java else self.server_profile
        return ExecutionContext(
            scheme=scheme,
            link=self.link,
            client_profile=client,
            server_profile=server,
            key_bits=key_bits,
            mode=mode,
            rng=seed,
            tracer=tracer,
        )


#: Figures 2, 4, 5, 7, 9: both parties on the HPC cluster.
short_distance = Environment(
    name="short-distance",
    link=links.cluster,
    client_profile=profiles.pentium3_2ghz,
    server_profile=profiles.pentium3_2ghz,
    description=(
        "Stevens HPC cluster: 2 GHz Pentium-III client and server, "
        "gigabit NICs behind a 64 Gbps switch"
    ),
)

#: Figures 3 and 6: Chicago client, Hoboken server, 56 Kbps dial-up.
long_distance = Environment(
    name="long-distance",
    link=links.modem,
    client_profile=profiles.ultrasparc_500mhz,
    server_profile=profiles.pentium_1ghz,
    description=(
        "500 MHz UltraSparc client in Chicago, 1 GHz Pentium server in "
        "Hoboken, 56 Kbps dial-up modem"
    ),
)

#: The decelerated medium the abstract motivates (not separately
#: measured in the paper; used by the link ablation).
wireless = Environment(
    name="wireless-multihop",
    link=links.wireless_multihop,
    client_profile=profiles.pentium3_2ghz,
    server_profile=profiles.pentium3_2ghz,
    description="wireless multihop worst-case medium (~500 Kbps, 40 ms hops)",
)
