"""Rendering experiment series as fixed-width tables and ASCII charts.

The benches print these (and tee them into ``results/``); the tables are
the textual equivalent of the paper's figures, one row per database
size, one column per plotted series.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.experiments.series import ExperimentSeries

__all__ = ["render_table", "render_chart", "write_result_file"]


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return "%.0f" % value
    if abs(value) >= 1:
        return "%.2f" % value
    return "%.4f" % value


def render_table(series: ExperimentSeries, x_format: str = "%d") -> str:
    """A fixed-width table: header, rule, one row per point."""
    headers = [series.x_label] + ["%s (%s)" % (c, series.unit) for c in series.columns]
    rows: List[List[str]] = []
    for point in series.points:
        row = [x_format % point.x]
        row.extend(_format_value(point.get(c)) for c in series.columns)
        rows.append(row)
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "%s — %s" % (series.experiment_id, series.title),
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    if series.notes:
        lines.append("note: %s" % series.notes)
    return "\n".join(lines)


def render_chart(
    series: ExperimentSeries, column: str, width: int = 60, symbol: str = "#"
) -> str:
    """A horizontal ASCII bar chart of one column."""
    values = series.column(column)
    peak = max(values) if values else 0.0
    lines = ["%s — %s [%s, %s]" % (series.experiment_id, series.title, column, series.unit)]
    for point, value in zip(series.points, values):
        bar = symbol * (int(round(width * value / peak)) if peak > 0 else 0)
        lines.append("%10d | %-*s %s" % (point.x, width, bar, _format_value(value)))
    return "\n".join(lines)


def write_result_file(
    text: str, name: str, directory: Optional[str] = None
) -> str:
    """Persist rendered output under ``results/`` (created on demand)."""
    directory = directory or os.path.join(os.getcwd(), "results")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name)
    with open(path, "w") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")
    return path
