"""Experiment runners: one per figure of the paper's evaluation.

Figures 2–9 of the paper (Figure 1 is the protocol diagram, Figure 8
the multi-client diagram) plus the two in-text experiments (the Java/C++
factor and the Fairplay comparison) and the ablations DESIGN.md §4 calls
out.  Each runner executes the *real protocol logic* in a modelled
context (see DESIGN.md §3) and returns an
:class:`~repro.experiments.series.ExperimentSeries`.

Database sizes default to the paper's sweep (10,000..100,000).  Set the
environment variable ``REPRO_QUICK=1`` to run a 4-point subsample —
useful while iterating; the benches honour it too.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Sequence, Tuple

from repro.datastore.database import ServerDatabase
from repro.datastore.workload import PAPER_DATABASE_SIZES, WorkloadGenerator
from repro.experiments.environments import Environment, long_distance, short_distance
from repro.experiments.series import ExperimentSeries
from repro.spfe.base import SelectedSumBase
from repro.spfe.batching import PAPER_BATCH_SIZE, BatchedSelectedSumProtocol
from repro.spfe.combined import CombinedSelectedSumProtocol
from repro.spfe.context import ExecutionContext
from repro.spfe.multiclient import PAPER_CLIENT_COUNT, MultiClientSelectedSumProtocol
from repro.spfe.preprocessing import PreprocessedSelectedSumProtocol
from repro.spfe.selected_sum import SelectedSumProtocol
from repro.spfe.tradeoff import PartialPrivacySumProtocol
from repro.timing.report import seconds_to_minutes

__all__ = [
    "default_sizes",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure9",
    "text_language_factor",
    "text_yao_baseline",
    "ablation_batch_size",
    "ablation_key_size",
    "ablation_clients",
    "ablation_link",
    "ablation_tradeoff",
    "run_paper_figures",
]

QUICK_SIZES: Tuple[int, ...] = (10_000, 40_000, 70_000, 100_000)
SELECT_FRACTION = 0.01  # m = n / 100 (cost is m-independent; see §2)
COMPONENT_COLUMNS = [
    "client_encrypt",
    "server_compute",
    "communication",
    "client_decrypt",
]


def default_sizes() -> Tuple[int, ...]:
    """The paper's sweep, or a quick subsample if REPRO_QUICK is set."""
    if os.environ.get("REPRO_QUICK"):
        return QUICK_SIZES
    return PAPER_DATABASE_SIZES


def _workload(seed: str, n: int) -> Tuple[ServerDatabase, list]:
    generator = WorkloadGenerator(seed)
    database = generator.database(n)
    selection = generator.random_selection(n, max(1, int(n * SELECT_FRACTION)))
    return database, selection


def _verified_run(
    protocol: SelectedSumBase, database: ServerDatabase, selection: list
):
    return protocol.run(database, selection).verify(database.select_sum(selection))


def _component_sweep(
    experiment_id: str,
    title: str,
    environment: Environment,
    protocol_factory: Callable[[ExecutionContext], SelectedSumBase],
    sizes: Sequence[int],
    seed: str,
    notes: str = "",
) -> ExperimentSeries:
    series = ExperimentSeries(
        experiment_id=experiment_id,
        title=title,
        x_label="database size",
        unit="min",
        columns=list(COMPONENT_COLUMNS),
        notes=notes,
    )
    for n in sizes:
        database, selection = _workload(seed, n)
        context = environment.context(seed=seed)
        result = _verified_run(protocol_factory(context), database, selection)
        components = result.breakdown
        series.add(
            n,
            client_encrypt=seconds_to_minutes(components.client_encrypt_s),
            server_compute=seconds_to_minutes(components.server_compute_s),
            communication=seconds_to_minutes(components.communication_s),
            client_decrypt=seconds_to_minutes(components.client_decrypt_s),
        )
    return series


# ---------------------------------------------------------------------------
# The paper's figures
# ---------------------------------------------------------------------------


def figure2(
    sizes: Optional[Sequence[int]] = None, seed: str = "fig2"
) -> ExperimentSeries:
    """Fig. 2 — runtime components, no optimizations, short distance.

    Expected shape: every component linear in n; client encryption
    dominant; ~20 minutes total at n = 100,000; decryption constant.
    """
    return _component_sweep(
        "figure2",
        "Components of overall runtime, no optimizations, short distance",
        short_distance,
        lambda ctx: SelectedSumProtocol(ctx),
        sizes or default_sizes(),
        seed,
        notes="paper: ~20 min total at n=100,000, encryption dominant",
    )


def figure3(
    sizes: Optional[Sequence[int]] = None, seed: str = "fig3"
) -> ExperimentSeries:
    """Fig. 3 — components, no optimizations, long distance (56K modem).

    Expected shape: communication becomes substantial but computation
    still dominates.
    """
    return _component_sweep(
        "figure3",
        "Components of overall runtime, no optimizations, long distance",
        long_distance,
        lambda ctx: SelectedSumProtocol(ctx),
        sizes or default_sizes(),
        seed,
        notes="paper: computation still prevails over the 56Kbps link",
    )


def figure4(
    sizes: Optional[Sequence[int]] = None,
    batch_size: int = PAPER_BATCH_SIZE,
    seed: str = "fig4",
) -> ExperimentSeries:
    """Fig. 4 — overall runtime with vs without batching, short distance.

    Expected shape: batching (batch = 100) cuts ~10 % of the runtime.
    """
    series = ExperimentSeries(
        experiment_id="figure4",
        title="Overall runtime with and without batching (batch=%d)" % batch_size,
        x_label="database size",
        unit="min",
        columns=["without_batching", "with_batching", "reduction_pct"],
        notes="paper: ~10%% reduction with batch size 100",
    )
    for n in sizes or default_sizes():
        database, selection = _workload(seed, n)
        plain = _verified_run(
            SelectedSumProtocol(short_distance.context(seed=seed)),
            database,
            selection,
        )
        batched = _verified_run(
            BatchedSelectedSumProtocol(
                short_distance.context(seed=seed), batch_size=batch_size
            ),
            database,
            selection,
        )
        reduction = 100.0 * (1.0 - batched.makespan_s / plain.makespan_s)
        series.add(
            n,
            without_batching=plain.online_minutes(),
            with_batching=batched.online_minutes(),
            reduction_pct=reduction,
        )
    return series


def figure5(
    sizes: Optional[Sequence[int]] = None, seed: str = "fig5"
) -> ExperimentSeries:
    """Fig. 5 — components after index preprocessing, short distance.

    Expected shape: client online time collapses (pool fetches only);
    server computation becomes the dominant component; online total cut
    ~82 % versus Figure 2.
    """
    return _component_sweep(
        "figure5",
        "Components after preprocessing the index vector, short distance",
        short_distance,
        lambda ctx: PreprocessedSelectedSumProtocol(ctx),
        sizes or default_sizes(),
        seed,
        notes="client_encrypt column = online pool fetching (paper's labelling)",
    )


def figure6(
    sizes: Optional[Sequence[int]] = None, seed: str = "fig6"
) -> ExperimentSeries:
    """Fig. 6 — components after preprocessing, long distance.

    Expected shape: with client encryption removed from the online path,
    the 56 Kbps communication becomes the dominant factor.
    """
    return _component_sweep(
        "figure6",
        "Components after preprocessing the index vector, long distance",
        long_distance,
        lambda ctx: PreprocessedSelectedSumProtocol(ctx),
        sizes or default_sizes(),
        seed,
        notes="paper: communication delay becomes the significant factor",
    )


def figure7(
    sizes: Optional[Sequence[int]] = None,
    batch_size: int = PAPER_BATCH_SIZE,
    seed: str = "fig7",
) -> ExperimentSeries:
    """Fig. 7 — combined optimizations vs none, short distance.

    Expected shape: preprocessing + batching cut the online runtime
    ~94 %.
    """
    series = ExperimentSeries(
        experiment_id="figure7",
        title="Combined preprocessing + batching vs no optimizations",
        x_label="database size",
        unit="min",
        columns=["without_optimizations", "combined", "reduction_pct"],
        notes="paper: ~94%% online-runtime reduction",
    )
    for n in sizes or default_sizes():
        database, selection = _workload(seed, n)
        plain = _verified_run(
            SelectedSumProtocol(short_distance.context(seed=seed)),
            database,
            selection,
        )
        combined = _verified_run(
            CombinedSelectedSumProtocol(
                short_distance.context(seed=seed), batch_size=batch_size
            ),
            database,
            selection,
        )
        reduction = 100.0 * (1.0 - combined.makespan_s / plain.makespan_s)
        series.add(
            n,
            without_optimizations=plain.online_minutes(),
            combined=combined.online_minutes(),
            reduction_pct=reduction,
        )
    return series


def figure9(
    sizes: Optional[Sequence[int]] = None,
    num_clients: int = PAPER_CLIENT_COUNT,
    seed: str = "fig9",
) -> ExperimentSeries:
    """Fig. 9 — multi-client secret sharing (k = 3), Java implementation.

    Expected shape: ~k-fold improvement minus a small combining
    overhead (paper: factor ~2.99 at k = 3); absolute numbers ~5x the
    C++ ones because the paper measured this optimization in Java only.
    """
    series = ExperimentSeries(
        experiment_id="figure9",
        title="Multi-client secret sharing, k=%d (Java implementation)" % num_clients,
        x_label="database size",
        unit="min",
        columns=["without_secret_sharing", "with_secret_sharing", "speedup"],
        notes="paper: ~2.99x improvement at k=3",
    )
    for n in sizes or default_sizes():
        database, selection = _workload(seed, n)
        single = _verified_run(
            SelectedSumProtocol(short_distance.context(java=True, seed=seed)),
            database,
            selection,
        )
        multi = _verified_run(
            MultiClientSelectedSumProtocol(
                short_distance.context(java=True, seed=seed),
                num_clients=num_clients,
            ),
            database,
            selection,
        )
        series.add(
            n,
            without_secret_sharing=single.online_minutes(),
            with_secret_sharing=multi.online_minutes(),
            speedup=single.makespan_s / multi.makespan_s,
        )
    return series


# ---------------------------------------------------------------------------
# In-text experiments
# ---------------------------------------------------------------------------


def text_language_factor(
    sizes: Optional[Sequence[int]] = None, seed: str = "textA"
) -> ExperimentSeries:
    """§3 ¶1 — "performance results from our Java experiments were around
    five times slower than those of similar C++ experiments"."""
    series = ExperimentSeries(
        experiment_id="text-language-factor",
        title="Java vs C++ implementation of the plain protocol",
        x_label="database size",
        unit="min",
        columns=["cpp", "java", "compute_ratio"],
        notes="paper: Java ~5x slower (compute components scale; wire time does not)",
    )
    for n in sizes or default_sizes():
        database, selection = _workload(seed, n)
        cpp = _verified_run(
            SelectedSumProtocol(short_distance.context(seed=seed)),
            database,
            selection,
        )
        java = _verified_run(
            SelectedSumProtocol(short_distance.context(java=True, seed=seed)),
            database,
            selection,
        )
        cpp_compute = cpp.makespan_s - cpp.breakdown.communication_s
        java_compute = java.makespan_s - java.breakdown.communication_s
        series.add(
            n,
            cpp=cpp.online_minutes(),
            java=java.online_minutes(),
            compute_ratio=java_compute / cpp_compute,
        )
    return series


def text_yao_baseline(
    sizes: Sequence[int] = (10, 25, 50, 100),
    value_bits: int = 16,
    seed: str = "textB",
) -> ExperimentSeries:
    """§2 ¶4 — generic SMC (Fairplay/Yao) vs the homomorphic protocol.

    Runs our real garbled-circuit implementation (measured seconds on
    this machine), the paper's quoted Fairplay model (>= 15 min at
    n = 100), and the homomorphic protocol's modelled 2004 runtime for
    the same n.  Expected shape: the homomorphic protocol wins by orders
    of magnitude at database scale and the gap grows with n.
    """
    from repro.spfe.baselines import YaoBaselineProtocol

    series = ExperimentSeries(
        experiment_id="text-yao-baseline",
        title="Generic SMC baseline vs the homomorphic protocol",
        x_label="database size",
        unit="min",
        columns=[
            "fairplay_model",
            "homomorphic_model",
            "our_yao_measured",
            "yao_megabytes",
        ],
        notes="fairplay_model from the paper's quote [16]: >=15 min at n=100",
    )
    generator = WorkloadGenerator(seed)
    for n in sizes:
        database = generator.database(n, value_bits=value_bits)
        selection = generator.random_selection(n, max(1, n // 4))
        yao = YaoBaselineProtocol(
            short_distance.context(seed=seed, key_bits=512)
        ).run(database, selection)
        yao.verify(database.select_sum(selection))
        homomorphic = _verified_run(
            SelectedSumProtocol(short_distance.context(seed=seed)),
            database,
            selection,
        )
        series.add(
            n,
            fairplay_model=yao.metadata["fairplay_model_minutes"],
            homomorphic_model=homomorphic.online_minutes(),
            our_yao_measured=seconds_to_minutes(yao.makespan_s),
            yao_megabytes=yao.total_bytes / 1e6,
        )
    return series


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md §4)
# ---------------------------------------------------------------------------


def ablation_batch_size(
    batch_sizes: Sequence[int] = (1, 10, 100, 1_000, 10_000),
    n: int = 100_000,
    seed: str = "ab-batch",
) -> ExperimentSeries:
    """Batch-size sweep for the §3.2 pipeline ("the optimal chunk size
    will depend on the relative communication and computation speeds")."""
    series = ExperimentSeries(
        experiment_id="ablation-batch-size",
        title="Batched protocol makespan vs batch size (n=%d)" % n,
        x_label="batch size",
        unit="min",
        columns=["makespan", "reduction_pct"],
    )
    database, selection = _workload(seed, n)
    plain = _verified_run(
        SelectedSumProtocol(short_distance.context(seed=seed)), database, selection
    )
    for batch in batch_sizes:
        result = _verified_run(
            BatchedSelectedSumProtocol(
                short_distance.context(seed=seed), batch_size=batch
            ),
            database,
            selection,
        )
        series.add(
            batch,
            makespan=result.online_minutes(),
            reduction_pct=100.0 * (1.0 - result.makespan_s / plain.makespan_s),
        )
    return series


def ablation_key_size(
    key_sizes: Sequence[int] = (256, 512, 1024, 2048),
    n: int = 100_000,
    seed: str = "ab-key",
) -> ExperimentSeries:
    """Key-size sweep: encryption is Θ(bits³), the server step Θ(bits²),
    ciphertexts Θ(bits) — the paper's 512 bits sits where 2004 hardware
    could still finish."""
    series = ExperimentSeries(
        experiment_id="ablation-key-size",
        title="Plain protocol vs key size (n=%d)" % n,
        x_label="key bits",
        unit="min",
        columns=["client_encrypt", "server_compute", "communication", "total"],
    )
    database, selection = _workload(seed, n)
    for bits in key_sizes:
        context = short_distance.context(seed=seed, key_bits=bits)
        result = _verified_run(
            SelectedSumProtocol(context), database, selection
        )
        series.add(
            bits,
            client_encrypt=seconds_to_minutes(result.breakdown.client_encrypt_s),
            server_compute=seconds_to_minutes(result.breakdown.server_compute_s),
            communication=seconds_to_minutes(result.breakdown.communication_s),
            total=result.online_minutes(),
        )
    return series


def ablation_clients(
    client_counts: Sequence[int] = (2, 3, 4, 6, 8),
    n: int = 100_000,
    seed: str = "ab-k",
) -> ExperimentSeries:
    """k sweep of the §3.5 protocol: ~k-fold speedup with a combining
    overhead that grows linearly in k (the ring)."""
    series = ExperimentSeries(
        experiment_id="ablation-clients",
        title="Multi-client protocol vs k (n=%d, Java profile)" % n,
        x_label="clients",
        unit="min",
        columns=["makespan", "speedup", "combine_overhead"],
    )
    database, selection = _workload(seed, n)
    single = _verified_run(
        SelectedSumProtocol(short_distance.context(java=True, seed=seed)),
        database,
        selection,
    )
    for k in client_counts:
        result = _verified_run(
            MultiClientSelectedSumProtocol(
                short_distance.context(java=True, seed=seed), num_clients=k
            ),
            database,
            selection,
        )
        series.add(
            k,
            makespan=result.online_minutes(),
            speedup=single.makespan_s / result.makespan_s,
            combine_overhead=seconds_to_minutes(result.breakdown.combine_s),
        )
    return series


def ablation_link(
    n: int = 100_000, seed: str = "ab-link"
) -> ExperimentSeries:
    """The same protocol across the three media the paper discusses."""
    from repro.experiments.environments import wireless

    series = ExperimentSeries(
        experiment_id="ablation-link",
        title="Plain protocol across communication media (n=%d)" % n,
        x_label="medium index",
        unit="min",
        columns=["communication", "total"],
    )
    database, selection = _workload(seed, n)
    for i, environment in enumerate((short_distance, wireless, long_distance)):
        context = ExecutionContext(
            link=environment.link,
            client_profile=short_distance.client_profile,
            server_profile=short_distance.server_profile,
            rng=seed,
        )
        result = _verified_run(SelectedSumProtocol(context), database, selection)
        series.add(
            i,
            communication=seconds_to_minutes(result.breakdown.communication_s),
            total=result.online_minutes(),
        )
    series.notes = "x: 0=cluster-gigabit, 1=wireless-multihop, 2=modem-56k"
    return series


def ablation_tradeoff(
    superset_factors: Sequence[float] = (1.0, 2.0, 4.0, 10.0, 100.0),
    n: int = 100_000,
    seed: str = "ab-tradeoff",
) -> ExperimentSeries:
    """The §4 future-work curve: runtime vs quantified privacy."""
    series = ExperimentSeries(
        experiment_id="ablation-tradeoff",
        title="Privacy/performance tradeoff via decoy supersets (n=%d)" % n,
        x_label="superset factor",
        unit="min",
        columns=["makespan", "anonymity_ratio", "candidate_fraction"],
    )
    database, selection = _workload(seed, n)
    full = _verified_run(
        SelectedSumProtocol(short_distance.context(seed=seed)), database, selection
    )
    for factor in superset_factors:
        result = _verified_run(
            PartialPrivacySumProtocol(
                short_distance.context(seed=seed), superset_factor=factor
            ),
            database,
            selection,
        )
        series.add(
            factor,
            makespan=result.online_minutes(),
            anonymity_ratio=result.metadata["anonymity_ratio"],
            candidate_fraction=result.metadata["candidate_fraction"],
        )
    series.notes = "full privacy reference: %.2f min" % full.online_minutes()
    return series


def run_paper_figures(sizes: Optional[Sequence[int]] = None) -> dict:
    """Run every paper figure; returns {experiment_id: series}."""
    runners = (figure2, figure3, figure4, figure5, figure6, figure7, figure9)
    results = {}
    for runner in runners:
        series = runner(sizes)
        results[series.experiment_id] = series
    return results
