"""Structured experiment output: series of points, figure-shaped.

Every experiment runner in :mod:`repro.experiments.figures` returns an
:class:`ExperimentSeries` — an ordered list of x-points (database size,
batch size, k, ...) each carrying named y-values (minutes per component,
ratios, bytes).  The table renderer and the benches consume this shape,
and ``EXPERIMENTS.md`` quotes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import ParameterError

__all__ = ["SeriesPoint", "ExperimentSeries"]


@dataclass(frozen=True)
class SeriesPoint:
    """One x-position of a figure: ``x`` plus named series values."""

    x: float
    values: Dict[str, float]

    def get(self, column: str) -> float:
        """Value of one named column at this point."""
        if column not in self.values:
            raise ParameterError(
                "point x=%s has no column %r (has %s)"
                % (self.x, column, sorted(self.values))
            )
        return self.values[column]


@dataclass
class ExperimentSeries:
    """A reproduced figure (or table): metadata plus the data points."""

    experiment_id: str
    title: str
    x_label: str
    unit: str
    columns: List[str]
    points: List[SeriesPoint] = field(default_factory=list)
    notes: str = ""

    def add(self, x: float, **values: float) -> None:
        """Append a point; every declared column must be supplied."""
        missing = [c for c in self.columns if c not in values]
        extra = [c for c in values if c not in self.columns]
        if missing or extra:
            raise ParameterError(
                "point columns mismatch: missing %s, extra %s" % (missing, extra)
            )
        self.points.append(SeriesPoint(x, dict(values)))

    def column(self, name: str) -> List[float]:
        """One column's values across all points, in x order."""
        return [p.get(name) for p in self.points]

    def xs(self) -> List[float]:
        """The x positions of all points."""
        return [p.x for p in self.points]

    def at(self, x: float) -> SeriesPoint:
        """The point at an exact x position."""
        for p in self.points:
            if p.x == x:
                return p
        raise ParameterError("no point at x=%s" % x)

    def final(self) -> SeriesPoint:
        """The last (largest-x) point."""
        if not self.points:
            raise ParameterError("series %r is empty" % self.experiment_id)
        return self.points[-1]
