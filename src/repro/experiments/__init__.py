"""Experiment harness: environments, figure runners, table rendering."""

from repro.experiments.environments import (
    Environment,
    long_distance,
    short_distance,
    wireless,
)
from repro.experiments.figures import (
    ablation_batch_size,
    ablation_clients,
    ablation_key_size,
    ablation_link,
    ablation_tradeoff,
    default_sizes,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure9,
    run_paper_figures,
    text_language_factor,
    text_yao_baseline,
)
from repro.experiments.series import ExperimentSeries, SeriesPoint
from repro.experiments.tables import render_chart, render_table, write_result_file

__all__ = [
    "Environment",
    "ExperimentSeries",
    "SeriesPoint",
    "ablation_batch_size",
    "ablation_clients",
    "ablation_key_size",
    "ablation_link",
    "ablation_tradeoff",
    "default_sizes",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure9",
    "long_distance",
    "render_chart",
    "render_table",
    "run_paper_figures",
    "short_distance",
    "text_language_factor",
    "text_yao_baseline",
    "wireless",
    "write_result_file",
]
