"""Two-party private selected sum via garbled circuits — the generic-SMC
baseline the paper compares against (§2).

The paper: "initial results of the Fairplay system [14] suggest that
straightforward implementation of Yao's solution would require an
execution time of at least 15 minutes for a database of only 100
elements [16]".  This module is that comparator, built for real:

* the **server** (data holder) garbles the selected-sum circuit and
  sends it together with the active labels of its own data bits;
* the **client** obtains the labels of its selection bits via 1-out-of-2
  oblivious transfer (one per database element — batched under a single
  RSA key, as any practical implementation would);
* the client evaluates the garbled circuit and decodes only the sum.

Client privacy: OT hides the selection bits.  Database privacy: the
client sees only unlinkable labels and learns only the decoded output.

The run is *measured* (real wall clock) — this baseline exists to show
the asymmetric cost profile against the homomorphic protocol, so it runs
the real cryptography at small n and reports real seconds, plus the
modelled Fairplay scaling for paper-scale databases.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.builder import EVALUATOR, GARBLER, build_selected_sum_circuit
from repro.crypto.rng import RandomSource, as_random_source
from repro.crypto.rsa import generate_rsa_keypair
from repro.exceptions import OTError, ParameterError
from repro.yao.garbling import (
    LABEL_BYTES,
    GarbledCircuit,
    WireLabel,
    evaluate_garbled,
    garble,
)

__all__ = ["YaoRunResult", "YaoSelectedSum", "BatchOT", "fairplay_model_minutes"]

#: The paper's quoted Fairplay figure: >= 15 minutes at n = 100 [16].
FAIRPLAY_MINUTES_AT_100 = 15.0


def fairplay_model_minutes(n: int) -> float:
    """Modelled 2004 Fairplay runtime for a selected sum of n elements.

    Linear extrapolation of the paper's quoted data point — conservative,
    since generic-SMC memory pressure grows superlinearly in practice.
    """
    if n < 1:
        raise ParameterError("n must be positive")
    return FAIRPLAY_MINUTES_AT_100 * n / 100.0


class BatchOT:
    """n parallel EGL oblivious transfers under one RSA key.

    Key generation is the expensive part of EGL, so a batch shares it;
    every transfer still uses fresh blinding elements, preserving the
    per-transfer security argument.
    """

    def __init__(
        self,
        pairs: Sequence[Tuple[int, int]],
        key_bits: int = 512,
        rng: Optional[RandomSource] = None,
    ) -> None:
        self._rng = as_random_source(rng)
        keypair = generate_rsa_keypair(key_bits, self._rng)
        self._public = keypair.public
        self._private = keypair.private
        for m0, m1 in pairs:
            if not (0 <= m0 < self._public.n and 0 <= m1 < self._public.n):
                raise OTError("messages must lie in [0, N)")
        self._pairs = list(pairs)

    def transfer(self, choices: Sequence[int]) -> List[int]:
        """Run all transfers; returns ``m_{b_i}`` for each choice bit."""
        if len(choices) != len(self._pairs):
            raise OTError("choice count != pair count")
        n = self._public.n
        results: List[int] = []
        for (m0, m1), choice in zip(self._pairs, choices):
            if choice not in (0, 1):
                raise OTError("choices must be bits")
            x0 = self._public.random_element(self._rng)
            x1 = self._public.random_element(self._rng)
            # receiver side
            k = self._public.random_element(self._rng)
            v = ((x1 if choice else x0) + self._public.apply(k)) % n
            # sender side
            k0 = self._private.invert((v - x0) % n)
            k1 = self._private.invert((v - x1) % n)
            reply0, reply1 = (m0 + k0) % n, (m1 + k1) % n
            # receiver side
            results.append(((reply1 if choice else reply0) - k) % n)
        return results

    def bytes_moved(self) -> int:
        """Wire bytes of the whole batch (key + per-OT messages)."""
        modulus_bytes = (self._public.n.bit_length() + 7) // 8
        per_transfer = 5 * modulus_bytes  # x0, x1, v, reply0, reply1
        return modulus_bytes + len(self._pairs) * per_transfer


def _label_to_int(label: WireLabel) -> int:
    return (int.from_bytes(label.key, "big") << 1) | label.permute


def _int_to_label(value: int) -> WireLabel:
    return WireLabel((value >> 1).to_bytes(LABEL_BYTES, "big"), value & 1)


@dataclass
class YaoRunResult:
    """Measured outcome of one garbled-circuit selected sum."""

    value: int
    n: int
    gate_count: int
    garbled_bytes: int
    ot_bytes: int
    garble_s: float
    ot_s: float
    evaluate_s: float

    @property
    def total_s(self) -> float:
        return self.garble_s + self.ot_s + self.evaluate_s

    @property
    def total_bytes(self) -> int:
        return self.garbled_bytes + self.ot_bytes

    def verify(self, expected: int) -> "YaoRunResult":
        """Assert the computed sum against ground truth (returns self)."""
        if self.value != expected:
            raise AssertionError(
                "Yao protocol returned %d, expected %d" % (self.value, expected)
            )
        return self


class YaoSelectedSum:
    """The full two-party garbled-circuit protocol, run in-process."""

    def __init__(
        self,
        value_bits: int = 32,
        ot_key_bits: int = 512,
        rng: Optional[RandomSource] = None,
        free_xor: bool = False,
    ) -> None:
        if value_bits < 1:
            raise ParameterError("value width must be positive")
        # Wire labels are 129-bit integers (128-bit key + permute bit);
        # the OT modulus must fit them with margin.
        if ot_key_bits < LABEL_BYTES * 8 + 32:
            raise ParameterError(
                "ot_key_bits must be at least %d to carry wire labels"
                % (LABEL_BYTES * 8 + 32)
            )
        self.value_bits = value_bits
        self.ot_key_bits = ot_key_bits
        self.free_xor = free_xor
        self._rng = as_random_source(rng)

    def run(
        self, values: Sequence[int], selection: Sequence[int]
    ) -> YaoRunResult:
        """Compute ``sum_i selection_i * values_i`` privately.

        Args:
            values: the server's data (each < 2**value_bits).
            selection: the client's 0/1 vector, same length.
        """
        n = len(values)
        if len(selection) != n:
            raise ParameterError("selection length != data length")
        if any(bit not in (0, 1) for bit in selection):
            raise ParameterError("selection must be 0/1")
        limit = 1 << self.value_bits
        if any(not 0 <= v < limit for v in values):
            raise ParameterError("value outside %d-bit range" % self.value_bits)

        circuit = build_selected_sum_circuit(n, self.value_bits)

        # --- server: garble ------------------------------------------------
        t0 = time.perf_counter()
        garbled = garble(circuit, self._rng, free_xor=self.free_xor)
        garble_s = time.perf_counter() - t0

        # Server's own input labels (its data bits) travel in the clear
        # as labels — unlinkable to bits by construction.
        garbler_labels: Dict[int, WireLabel] = {}
        garbler_wires = circuit.inputs_of(GARBLER)
        bit_cursor = 0
        for value in values:
            for b in range(self.value_bits):
                wire = garbler_wires[bit_cursor]
                garbler_labels[wire] = garbled.active_label(
                    wire, (value >> b) & 1
                )
                bit_cursor += 1

        # --- OT: client obtains labels for its selection bits ---------------
        evaluator_wires = circuit.inputs_of(EVALUATOR)
        t0 = time.perf_counter()
        pairs = [
            (
                _label_to_int(garbled.active_label(wire, 0)),
                _label_to_int(garbled.active_label(wire, 1)),
            )
            for wire in evaluator_wires
        ]
        batch = BatchOT(pairs, self.ot_key_bits, self._rng)
        received = batch.transfer(list(selection))
        ot_s = time.perf_counter() - t0
        evaluator_labels = {
            wire: _int_to_label(value)
            for wire, value in zip(evaluator_wires, received)
        }

        # --- client: evaluate ------------------------------------------------
        all_labels = {**garbler_labels, **evaluator_labels}
        t0 = time.perf_counter()
        bits = evaluate_garbled(garbled, all_labels)
        evaluate_s = time.perf_counter() - t0
        value = sum(bit << i for i, bit in enumerate(bits))

        garbler_label_bytes = len(garbler_labels) * (LABEL_BYTES + 1)
        return YaoRunResult(
            value=value,
            n=n,
            gate_count=circuit.gate_count,
            garbled_bytes=garbled.size_bytes() + garbler_label_bytes,
            ot_bytes=batch.bytes_moved(),
            garble_s=garble_s,
            ot_s=ot_s,
            evaluate_s=evaluate_s,
        )
