"""Yao garbled circuits: the generic secure-two-party-computation baseline."""

from repro.yao.garbling import (
    GarbledCircuit,
    GarbledGate,
    WireLabel,
    evaluate_garbled,
    garble,
)
from repro.yao.protocol import (
    BatchOT,
    YaoRunResult,
    YaoSelectedSum,
    fairplay_model_minutes,
)

__all__ = [
    "BatchOT",
    "GarbledCircuit",
    "GarbledGate",
    "WireLabel",
    "YaoRunResult",
    "YaoSelectedSum",
    "evaluate_garbled",
    "fairplay_model_minutes",
    "garble",
]
