"""Classic Yao garbling with point-and-permute.

Each wire gets two random 128-bit labels (for bit 0 and bit 1), the
bit-1 label carrying the complement *permute bit* of the bit-0 label.
Each binary gate becomes a table of 4 encrypted rows ordered by the
input permute bits, so the evaluator decrypts exactly one row — the one
its labels point at — and learns nothing else.  Row encryption is
``H(label_a, label_b, gate_id) XOR (output_label || permute_padding)``
with SHA-256 as the hash (the standard random-oracle instantiation).

NOT gates are free (the garbler swaps labels; no table).  Constant
wires are garbler-known: the garbled circuit carries the active label.

The default is deliberately the *textbook* scheme — no row reduction,
no half gates — because the baseline's role is to reproduce the cost
profile of 2004-era generic SMC (Fairplay), not to win a benchmark.
``garble(..., free_xor=True)`` additionally enables the free-XOR
optimization (Kolesnikov–Schneider 2008): all wire-label pairs share a
global offset Δ, XOR gates become a local label-XOR with *no table*,
and only AND/OR gates are garbled — the post-2004 improvement the
ablation bench quantifies against the classic scheme.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import Circuit, Gate, GateOp
from repro.crypto.rng import RandomSource, as_random_source
from repro.exceptions import GarblingError

__all__ = ["WireLabel", "GarbledGate", "GarbledCircuit", "garble", "evaluate_garbled"]

LABEL_BITS = 128
LABEL_BYTES = LABEL_BITS // 8


@dataclass(frozen=True)
class WireLabel:
    """A wire label: the key material plus its public permute bit."""

    key: bytes
    permute: int

    def __post_init__(self) -> None:
        if len(self.key) != LABEL_BYTES:
            raise GarblingError("labels must be %d bytes" % LABEL_BYTES)
        if self.permute not in (0, 1):
            raise GarblingError("permute must be a bit")


def _hash_row(a: WireLabel, b: WireLabel, gate_id: int) -> bytes:
    data = a.key + b.key + gate_id.to_bytes(4, "big")
    return hashlib.sha256(b"repro-garble" + data).digest()


def _encrypt_row(a: WireLabel, b: WireLabel, gate_id: int, out: WireLabel) -> bytes:
    pad = _hash_row(a, b, gate_id)
    plaintext = out.key + bytes([out.permute]) + b"\x00" * 15
    return bytes(x ^ y for x, y in zip(plaintext, pad))


def _decrypt_row(a: WireLabel, b: WireLabel, gate_id: int, row: bytes) -> WireLabel:
    pad = _hash_row(a, b, gate_id)
    plaintext = bytes(x ^ y for x, y in zip(row, pad))
    if any(plaintext[LABEL_BYTES + 1 :]):
        raise GarblingError("row authentication failed (wrong labels?)")
    return WireLabel(plaintext[:LABEL_BYTES], plaintext[LABEL_BYTES])


@dataclass(frozen=True)
class GarbledGate:
    """Four ciphertext rows indexed by the input permute bits."""

    gate_id: int
    output_wire: int
    input_wires: Tuple[int, int]
    rows: Tuple[bytes, bytes, bytes, bytes]


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


@dataclass
class GarbledCircuit:
    """Everything the evaluator receives (plus the garbler's secrets).

    Evaluator-visible: ``gates``, ``not_gates``, ``constant_labels``,
    ``output_decode``.  Garbler-secret: ``wire_labels`` (both labels per
    wire) — kept here because tests and the in-process protocol need
    them; a two-party deployment would transfer only the visible parts
    plus the active input labels.
    """

    circuit: Circuit
    gates: List[GarbledGate]
    not_gates: Dict[int, int]  # output wire -> input wire (free)
    constant_labels: Dict[int, WireLabel]  # active labels of const wires
    output_decode: Dict[int, Dict[int, int]]  # wire -> permute bit -> value
    wire_labels: Dict[int, Tuple[WireLabel, WireLabel]]
    free_xor: bool = False  # XOR gates are table-free (global offset)

    def active_label(self, wire: int, bit: int) -> WireLabel:
        """Garbler-side lookup of the label encoding ``bit`` on ``wire``."""
        if bit not in (0, 1):
            raise GarblingError("bit must be 0 or 1")
        return self.wire_labels[wire][bit]

    def size_bytes(self) -> int:
        """Wire size of the evaluator-visible garbled circuit."""
        table_bytes = sum(len(row) for g in self.gates for row in g.rows)
        const_bytes = len(self.constant_labels) * (LABEL_BYTES + 1)
        decode_bytes = len(self.output_decode) * 2
        return table_bytes + const_bytes + decode_bytes


def _fresh_label(rng: RandomSource, permute: int) -> WireLabel:
    return WireLabel(rng.randbytes(LABEL_BYTES), permute)


def garble(
    circuit: Circuit,
    rng: Optional[RandomSource] = None,
    free_xor: bool = False,
) -> GarbledCircuit:
    """Garble ``circuit``; returns the full garbled structure.

    With ``free_xor=True``, every wire's two labels differ by one global
    secret offset Δ, so XOR outputs are computed locally from the input
    labels and need no ciphertext rows.
    """
    source = as_random_source(rng)
    labels: Dict[int, Tuple[WireLabel, WireLabel]] = {}
    delta = source.randbytes(LABEL_BYTES) if free_xor else b""

    def make_labels(wire: int) -> None:
        p = source.randbits(1)
        zero = _fresh_label(source, p)
        if free_xor:
            one = WireLabel(_xor_bytes(zero.key, delta), 1 - p)
        else:
            one = _fresh_label(source, 1 - p)
        labels[wire] = (zero, one)

    for const_wire in (Circuit.CONST_ZERO, Circuit.CONST_ONE):
        make_labels(const_wire)
    for wire in circuit.input_wires:
        make_labels(wire)

    garbled_gates: List[GarbledGate] = []
    not_gates: Dict[int, int] = {}

    for gate_id, gate in enumerate(circuit.gates):
        if gate.op is GateOp.NOT:
            src = gate.inputs[0]
            zero, one = labels[src]
            labels[gate.output] = (one, zero)  # swap: free NOT
            not_gates[gate.output] = src
            continue
        if free_xor and gate.op is GateOp.XOR:
            a0 = labels[gate.inputs[0]][0]
            b0 = labels[gate.inputs[1]][0]
            out_zero = WireLabel(
                _xor_bytes(a0.key, b0.key), a0.permute ^ b0.permute
            )
            out_one = WireLabel(
                _xor_bytes(out_zero.key, delta), 1 - out_zero.permute
            )
            labels[gate.output] = (out_zero, out_one)
            continue
        make_labels(gate.output)
        wire_a, wire_b = gate.inputs
        rows: List[bytes] = [b""] * 4
        for bit_a in (0, 1):
            for bit_b in (0, 1):
                label_a = labels[wire_a][bit_a]
                label_b = labels[wire_b][bit_b]
                out_bit = gate.op.evaluate(bit_a, bit_b)
                row = _encrypt_row(
                    label_a, label_b, gate_id, labels[gate.output][out_bit]
                )
                rows[label_a.permute * 2 + label_b.permute] = row
        garbled_gates.append(
            GarbledGate(gate_id, gate.output, (wire_a, wire_b), tuple(rows))
        )

    constant_labels = {
        Circuit.CONST_ZERO: labels[Circuit.CONST_ZERO][0],
        Circuit.CONST_ONE: labels[Circuit.CONST_ONE][1],
    }
    output_decode = {
        wire: {
            labels[wire][0].permute: 0,
            labels[wire][1].permute: 1,
        }
        for wire in circuit.output_wires
    }
    return GarbledCircuit(
        circuit=circuit,
        gates=garbled_gates,
        not_gates=not_gates,
        constant_labels=constant_labels,
        output_decode=output_decode,
        wire_labels=labels,
        free_xor=free_xor,
    )


def evaluate_garbled(
    garbled: GarbledCircuit, input_labels: Dict[int, WireLabel]
) -> List[int]:
    """Evaluate with *labels only* — the evaluator's view.

    ``input_labels`` maps every input wire to its active label (the
    garbler sends its own, the evaluator got its own via OT).  Returns
    the decoded output bits.
    """
    circuit = garbled.circuit
    active: Dict[int, WireLabel] = dict(garbled.constant_labels)
    for wire in circuit.input_wires:
        if wire not in input_labels:
            raise GarblingError("missing active label for input wire %d" % wire)
        active[wire] = input_labels[wire]

    gate_iter = iter(garbled.gates)
    for gate in circuit.gates:
        if gate.op is GateOp.NOT:
            active[gate.output] = active[gate.inputs[0]]
            continue
        if garbled.free_xor and gate.op is GateOp.XOR:
            label_a = active[gate.inputs[0]]
            label_b = active[gate.inputs[1]]
            active[gate.output] = WireLabel(
                _xor_bytes(label_a.key, label_b.key),
                label_a.permute ^ label_b.permute,
            )
            continue
        garbled_gate = next(gate_iter)
        label_a = active[gate.inputs[0]]
        label_b = active[gate.inputs[1]]
        row = garbled_gate.rows[label_a.permute * 2 + label_b.permute]
        active[gate.output] = _decrypt_row(
            label_a, label_b, garbled_gate.gate_id, row
        )

    bits: List[int] = []
    for wire in circuit.output_wires:
        label = active[wire]
        decode = garbled.output_decode[wire]
        if label.permute not in decode:
            raise GarblingError("output label has unknown permute bit")
        bits.append(decode[label.permute])
    return bits
