"""Named-column tables: the relational face of the server database.

The paper's setting is a single numeric column, but its motivating
applications (cohort statistics, data mining inputs) are tabular.  A
:class:`Table` holds named, equal-length :class:`~repro.datastore.
database.ServerDatabase` columns and hands the statistics layer
server-side derived views (squared columns, product columns) by name —
so a client can ask for ``mean("blood_pressure")`` or
``covariance("age", "blood_pressure")`` over a private row selection
without touching column internals.

The derived views are the *server's own* computation (its data), so no
privacy surface is added; what crosses the wire is still only the
selected-sum protocol.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.datastore.database import ServerDatabase
from repro.exceptions import DatabaseError
from repro.datastore.database import elementwise_product

__all__ = ["Table"]


class Table:
    """Equal-length named numeric columns, with derived views.

    Args:
        columns: mapping of column name -> values (iterables of ints) or
            ready :class:`ServerDatabase` objects.
        value_bits: bound applied to plain iterables (default 32).
    """

    def __init__(
        self,
        columns: Mapping[str, object],
        value_bits: int = 32,
    ) -> None:
        if not columns:
            raise DatabaseError("a table needs at least one column")
        self._columns: Dict[str, ServerDatabase] = {}
        for name, values in columns.items():
            if not name or not isinstance(name, str):
                raise DatabaseError("column names must be non-empty strings")
            if isinstance(values, ServerDatabase):
                self._columns[name] = values
            else:
                self._columns[name] = ServerDatabase(values, value_bits=value_bits)
        lengths = {len(column) for column in self._columns.values()}
        if len(lengths) != 1:
            raise DatabaseError(
                "columns have unequal lengths: %s"
                % {name: len(col) for name, col in self._columns.items()}
            )
        self._rows = lengths.pop()

    # -- shape -------------------------------------------------------------

    def __len__(self) -> int:
        return self._rows

    @property
    def column_names(self) -> List[str]:
        return sorted(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __repr__(self) -> str:
        return "Table(rows=%d, columns=%s)" % (self._rows, self.column_names)

    # -- access -------------------------------------------------------------

    def column(self, name: str) -> ServerDatabase:
        """Look up a column by name (DatabaseError if absent)."""
        if name not in self._columns:
            raise DatabaseError(
                "no column %r (have %s)" % (name, self.column_names)
            )
        return self._columns[name]

    def squared_column(self, name: str) -> ServerDatabase:
        """Server-side x² view (for variances)."""
        return self.column(name).squared()

    def product_column(self, left: str, right: str) -> ServerDatabase:
        """Server-side x·y view (for covariances)."""
        return elementwise_product(self.column(left), self.column(right))

    def row(self, index: int) -> Dict[str, int]:
        """One row as a dict (server-side convenience; not a protocol)."""
        if not 0 <= index < self._rows:
            raise DatabaseError("row %d out of range" % index)
        return {name: col[index] for name, col in self._columns.items()}

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        names: Sequence[str],
        rows: Iterable[Sequence[int]],
        value_bits: int = 32,
    ) -> "Table":
        """Build from row tuples (e.g. parsed CSV)."""
        materialized: List[Tuple[int, ...]] = [tuple(row) for row in rows]
        for i, row in enumerate(materialized):
            if len(row) != len(names):
                raise DatabaseError(
                    "row %d has %d fields, expected %d" % (i, len(row), len(names))
                )
        columns = {
            name: [row[j] for row in materialized] for j, name in enumerate(names)
        }
        return cls(columns, value_bits=value_bits)
