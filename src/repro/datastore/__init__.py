"""Data substrate: the server database and reproducible workloads."""

from repro.datastore.database import MAX_VALUE, VALUE_BITS, ServerDatabase
from repro.datastore.table import Table
from repro.datastore.workload import (
    PAPER_DATABASE_SIZES,
    WorkloadGenerator,
    indices_to_bits,
)

__all__ = [
    "MAX_VALUE",
    "PAPER_DATABASE_SIZES",
    "ServerDatabase",
    "Table",
    "VALUE_BITS",
    "WorkloadGenerator",
    "indices_to_bits",
]
