"""Reproducible workload generation for experiments.

The paper's databases are synthetic: n uniform 32-bit numbers, with n
swept from 10,000 to 100,000, and a client selection of m indices.
:class:`WorkloadGenerator` regenerates those — deterministically, from a
seed — plus the selection *patterns* the motivating applications imply
(random cohort, contiguous range, clustered hot-spots), so experiments
and property tests can exercise selection shapes beyond uniform.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.rng import DeterministicRandom, RandomSource, as_random_source
from repro.datastore.database import ServerDatabase, VALUE_BITS
from repro.exceptions import ParameterError

__all__ = ["WorkloadGenerator", "PAPER_DATABASE_SIZES", "indices_to_bits"]

#: The x-axis of every figure in the paper: 10k..100k elements.
PAPER_DATABASE_SIZES = tuple(range(10_000, 100_001, 10_000))


def indices_to_bits(n: int, selected: Sequence[int]) -> List[int]:
    """Convert a set of selected positions into the paper's 0/1 vector."""
    if len(set(selected)) != len(selected):
        raise ParameterError("selected indices contain duplicates")
    bits = [0] * n
    for i in selected:
        if not 0 <= i < n:
            raise ParameterError("selected index %d outside [0, %d)" % (i, n))
        bits[i] = 1
    return bits


class WorkloadGenerator:
    """Deterministic generator of databases and selection vectors.

    Every method is a pure function of ``(seed, arguments)``, so a bench
    rerun regenerates byte-identical workloads.
    """

    def __init__(self, seed: str = "paper-workload") -> None:
        self.seed = seed

    def _rng(self, *scope: object) -> RandomSource:
        return DeterministicRandom(
            # a workload seed is a public benchmark label ("paper-workload"),
            # not key material; deriving scoped DRBG seeds from it is its job
            "%s/%s" % (self.seed, "/".join(str(s) for s in scope))  # seclint: disable=SEC001 -- workload seeds are public benchmark labels
        )

    # -- databases --------------------------------------------------------

    def database(self, n: int, value_bits: int = VALUE_BITS) -> ServerDatabase:
        """A database of ``n`` uniform ``value_bits``-bit values."""
        if n < 1:
            raise ParameterError("database size must be positive")
        rng = self._rng("db", n, value_bits)
        return ServerDatabase(
            [rng.randbits(value_bits) for _ in range(n)], value_bits=value_bits
        )

    # -- selections --------------------------------------------------------

    def random_selection(self, n: int, m: int) -> List[int]:
        """The paper's workload: a uniform 0/1 vector with m ones."""
        self._check_m(n, m)
        rng = self._rng("sel-random", n, m)
        chosen = set()
        while len(chosen) < m:
            chosen.add(rng.randbelow(n))
        return indices_to_bits(n, sorted(chosen))

    def range_selection(self, n: int, m: int) -> List[int]:
        """A contiguous range of m indices at a random offset.

        Models range predicates ("patients aged 40-49") — the selection
        shape behind means/variances over cohorts.
        """
        self._check_m(n, m)
        rng = self._rng("sel-range", n, m)
        start = rng.randbelow(n - m + 1) if m < n else 0
        return indices_to_bits(n, list(range(start, start + m)))

    def clustered_selection(self, n: int, m: int, clusters: int = 4) -> List[int]:
        """m indices grouped into a few hot-spots (skewed access)."""
        self._check_m(n, m)
        if clusters < 1:
            raise ParameterError("cluster count must be positive")
        clusters = min(clusters, m) if m else clusters
        rng = self._rng("sel-clustered", n, m, clusters)
        chosen: set = set()
        per_cluster = max(1, m // clusters)
        while len(chosen) < m:
            center = rng.randbelow(n)
            for offset in range(per_cluster * 3):
                if len(chosen) >= m:
                    break
                candidate = (center + offset) % n
                chosen.add(candidate)
        return indices_to_bits(n, sorted(list(chosen)[:m]))

    def weights(self, n: int, max_weight: int = 100) -> List[int]:
        """Integer weights for weighted-sum / weighted-average protocols.

        The paper (§2) notes "integer weights in some larger range could
        be used to produce a weighted sum".
        """
        if max_weight < 1:
            raise ParameterError("max weight must be positive")
        rng = self._rng("weights", n, max_weight)
        return [rng.randbelow(max_weight + 1) for _ in range(n)]

    @staticmethod
    def _check_m(n: int, m: int) -> None:
        if n < 1:
            raise ParameterError("database size must be positive")
        if not 0 <= m <= n:
            raise ParameterError("selection size %d outside [0, %d]" % (m, n))
