"""The server-side database of the selected-sum setting.

Paper §2: "The server holds a database of n numbers x_1, ..., x_n" —
32-bit values in all experiments.  :class:`ServerDatabase` enforces the
value bound (so protocol sums stay within the homomorphic plaintext
range by a documented margin), serves chunk iteration for the batching
protocol, and exposes a squared view so the statistics layer can compute
Σx² for variances with the *same* private-sum machinery.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.exceptions import DatabaseError

__all__ = ["ServerDatabase", "VALUE_BITS", "MAX_VALUE", "elementwise_product"]

VALUE_BITS = 32  # the paper's element size
MAX_VALUE = 2**VALUE_BITS - 1


class ServerDatabase:
    """An immutable sequence of bounded non-negative integers.

    Args:
        values: the database contents.
        value_bits: per-element bit bound (default: the paper's 32).

    Raises:
        DatabaseError: on empty input or out-of-range values.
    """

    def __init__(self, values: Iterable[int], value_bits: int = VALUE_BITS) -> None:
        if value_bits < 1:
            raise DatabaseError("value_bits must be positive")
        self._values: Tuple[int, ...] = tuple(values)
        self.value_bits = value_bits
        limit = 2**value_bits - 1
        if not self._values:
            raise DatabaseError("database cannot be empty")
        for i, v in enumerate(self._values):
            if not isinstance(v, int) or isinstance(v, bool):
                raise DatabaseError("element %d is not an integer: %r" % (i, v))
            if not 0 <= v <= limit:
                raise DatabaseError(
                    "element %d (= %d) outside [0, 2^%d)" % (i, v, value_bits)
                )

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index: int) -> int:
        return self._values[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ServerDatabase)
            and self._values == other._values
            and self.value_bits == other.value_bits
        )

    def __repr__(self) -> str:
        return "ServerDatabase(n=%d, value_bits=%d)" % (
            len(self._values),
            self.value_bits,
        )

    # -- views -----------------------------------------------------------------

    @property
    def values(self) -> Tuple[int, ...]:
        return self._values

    def chunks(self, size: int) -> Iterator[Tuple[int, Sequence[int]]]:
        """Yield ``(offset, values)`` chunks for the batching protocol."""
        if size < 1:
            raise DatabaseError("chunk size must be positive")
        for start in range(0, len(self._values), size):
            yield start, self._values[start : start + size]

    def squared(self) -> "ServerDatabase":
        """The element-wise squared database (for Σx² / variance).

        Squared 32-bit values need 64 bits, so the bound doubles.
        """
        return ServerDatabase(
            [v * v for v in self._values], value_bits=2 * self.value_bits
        )

    def max_selected_sum(self, m: int) -> int:
        """Upper bound on any sum of ``m`` selected elements.

        Protocols check this against the scheme's plaintext modulus so a
        sum can never wrap around undetected.
        """
        if not 0 <= m <= len(self._values):
            raise DatabaseError("selection size %d outside [0, %d]" % (m, len(self)))
        return m * (2**self.value_bits - 1)

    def select_sum(self, indices: Sequence[int]) -> int:
        """Ground-truth selected sum (for verification in tests/benches).

        ``indices`` is the paper's 0/1 vector — weight ``I_i`` applied to
        ``x_i`` — so weighted sums verify through the same code path.
        """
        if len(indices) != len(self._values):
            raise DatabaseError(
                "index vector length %d != database size %d"
                % (len(indices), len(self._values))
            )
        return sum(i * x for i, x in zip(indices, self._values))


def elementwise_product(x: "ServerDatabase", y: "ServerDatabase") -> "ServerDatabase":
    """The server-side product column x_i * y_i (for covariances).

    Both inputs are the server's own data, so this is local server
    computation, not a protocol step.  The value bound doubles.
    """
    if len(x) != len(y):
        raise DatabaseError("databases must have equal length")
    return ServerDatabase(
        [a * b for a, b in zip(x.values, y.values)],
        value_bits=x.value_bits + y.value_bits,
    )


def _as_list(values: Iterable[int]) -> List[int]:
    return list(values)
