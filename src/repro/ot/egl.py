"""Even–Goldreich–Lempel 1-out-of-2 oblivious transfer (from RSA).

The evaluator of a garbled circuit must obtain the wire label matching
each of its input bits without revealing the bit (client privacy) and
without learning the other label (which would let it evaluate the
circuit on other inputs — database privacy).  OT is exactly that
primitive, and EGL is its classic trapdoor-permutation instantiation:

1. The sender publishes an RSA key and two random group elements
   ``x_0, x_1``.
2. The receiver blinds the one it wants: ``v = x_b + k^e mod N`` for a
   random ``k``.
3. The sender, who cannot tell which ``x`` was used, unblinds both ways
   (``k_i = (v - x_i)^d``) and replies ``m_i + k_i`` for both messages.
4. The receiver knows only ``k_b``, so it recovers exactly ``m_b``.

Semi-honest security — the standard assumption for this protocol
family (and for the paper's setting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.rng import RandomSource, as_random_source
from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey, generate_rsa_keypair
from repro.exceptions import OTError

__all__ = ["OTSender", "OTReceiver", "oblivious_transfer"]

DEFAULT_OT_BITS = 512


class OTSender:
    """The message holder (the garbler, in Yao's protocol)."""

    def __init__(
        self,
        m0: int,
        m1: int,
        key_bits: int = DEFAULT_OT_BITS,
        rng: Optional[RandomSource] = None,
    ) -> None:
        self._rng = as_random_source(rng)
        keypair = generate_rsa_keypair(key_bits, self._rng)
        self._public: RSAPublicKey = keypair.public
        self._private: RSAPrivateKey = keypair.private
        if not (0 <= m0 < self._public.n and 0 <= m1 < self._public.n):
            raise OTError("messages must lie in [0, N)")
        self._m0 = m0
        self._m1 = m1
        self._x: Optional[Tuple[int, int]] = None

    def round1(self) -> Tuple[RSAPublicKey, int, int]:
        """Publish the key and the two random elements x_0, x_1."""
        x0 = self._public.random_element(self._rng)
        x1 = self._public.random_element(self._rng)
        while x1 == x0:
            x1 = self._public.random_element(self._rng)
        self._x = (x0, x1)
        return self._public, x0, x1

    def round2(self, v: int) -> Tuple[int, int]:
        """Blindly answer both messages; only one is recoverable."""
        if self._x is None:
            raise OTError("round1 must run before round2")
        n = self._public.n
        k0 = self._private.invert((v - self._x[0]) % n)
        k1 = self._private.invert((v - self._x[1]) % n)
        return (self._m0 + k0) % n, (self._m1 + k1) % n


class OTReceiver:
    """The chooser (the circuit evaluator)."""

    def __init__(self, choice: int, rng: Optional[RandomSource] = None) -> None:
        if choice not in (0, 1):
            raise OTError("choice must be a bit")
        self.choice = choice
        self._rng = as_random_source(rng)
        self._k: Optional[int] = None
        self._public: Optional[RSAPublicKey] = None

    def round1(self, public: RSAPublicKey, x0: int, x1: int) -> int:
        """Blind the chosen element with a random k."""
        self._public = public
        self._k = public.random_element(self._rng)
        chosen_x = x1 if self.choice else x0
        return (chosen_x + public.apply(self._k)) % public.n

    def round2(self, reply0: int, reply1: int) -> int:
        """Unblind the chosen message."""
        if self._k is None or self._public is None:
            raise OTError("round1 must run before round2")
        chosen = reply1 if self.choice else reply0
        return (chosen - self._k) % self._public.n


def oblivious_transfer(
    m0: int,
    m1: int,
    choice: int,
    key_bits: int = DEFAULT_OT_BITS,
    rng: Optional[RandomSource] = None,
) -> int:
    """One complete EGL exchange (both roles in-process, for tests/Yao).

    Returns ``m_choice``; the transcript structure is identical to the
    two-party message flow above.
    """
    source = as_random_source(rng)
    sender = OTSender(m0, m1, key_bits, source)
    receiver = OTReceiver(choice, source)
    public, x0, x1 = sender.round1()
    v = receiver.round1(public, x0, x1)
    reply0, reply1 = sender.round2(v)
    return receiver.round2(reply0, reply1)
