"""Oblivious transfer: the input-delivery primitive of the Yao baseline."""

from repro.ot.dh import DHOTReceiver, DHOTSender, dh_oblivious_transfer
from repro.ot.egl import OTReceiver, OTSender, oblivious_transfer

__all__ = [
    "DHOTReceiver",
    "DHOTSender",
    "OTReceiver",
    "OTSender",
    "dh_oblivious_transfer",
    "oblivious_transfer",
]
