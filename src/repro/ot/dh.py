"""Bellare–Micali style 1-out-of-2 oblivious transfer from DDH.

A second OT instantiation over the Schnorr groups of
:mod:`repro.crypto.elgamal`, so the Yao baseline is not tied to one
hardness assumption (and so the OT abstraction in the tests has two
independent implementations to cross-check).

Protocol (semi-honest):

1. The sender publishes a random group element ``c`` whose discrete log
   nobody knows.
2. The receiver with choice bit ``b`` picks ``x``, sets
   ``pk_b = g^x`` and ``pk_{1-b} = c / g^x``, and sends ``pk_0``.
   (The sender derives ``pk_1 = c / pk_0``; the receiver can know the
   discrete log of at most one of the two.)
3. The sender hashed-ElGamal-encrypts ``m_i`` under ``pk_i`` and sends
   both ciphertexts.
4. The receiver decrypts only the one it holds ``x`` for.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

from repro.crypto.elgamal import SchnorrGroup, _PRECOMPUTED_SAFE_PRIMES
from repro.crypto.ntheory import modinv
from repro.crypto.rng import RandomSource, as_random_source
from repro.exceptions import OTError

__all__ = ["DHOTSender", "DHOTReceiver", "dh_oblivious_transfer", "default_group"]


def default_group() -> SchnorrGroup:
    """The precomputed 256-bit safe-prime group."""
    return SchnorrGroup(_PRECOMPUTED_SAFE_PRIMES[256])


def _kdf(shared: int, tag: int, length: int) -> int:
    """Hash a group element into a ``length``-byte one-time pad."""
    out = b""
    counter = 0
    payload = shared.to_bytes((shared.bit_length() + 7) // 8 or 1, "big")
    while len(out) < length:
        out += hashlib.sha256(
            b"repro-dh-ot" + bytes([tag, counter]) + payload
        ).digest()
        counter += 1
    return int.from_bytes(out[:length], "big")


class DHOTSender:
    """The message holder."""

    def __init__(
        self,
        m0: int,
        m1: int,
        group: Optional[SchnorrGroup] = None,
        rng: Optional[RandomSource] = None,
    ) -> None:
        if m0 < 0 or m1 < 0:
            raise OTError("messages must be non-negative integers")
        self.group = group or default_group()
        self._rng = as_random_source(rng)
        self._m = (m0, m1)
        self._pad_bytes = max(
            (m0.bit_length() + 7) // 8, (m1.bit_length() + 7) // 8, 16
        )
        self._c: Optional[int] = None

    def round1(self) -> int:
        """Publish c = g^s for a throwaway s (no one keeps its dlog)."""
        s = self.group.random_exponent(self._rng)
        self._c = pow(self.group.g, s, self.group.p)
        return self._c

    def round2(self, pk0: int) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """Encrypt each message under the corresponding derived key."""
        if self._c is None:
            raise OTError("round1 must run before round2")
        if not self.group.contains(pk0):
            raise OTError("receiver key is not a group element")
        p = self.group.p
        pk1 = self._c * modinv(pk0, p) % p
        ciphertexts = []
        for tag, (pk, m) in enumerate(((pk0, self._m[0]), (pk1, self._m[1]))):
            r = self.group.random_exponent(self._rng)
            shared = pow(pk, r, p)
            pad = _kdf(shared, tag, self._pad_bytes)
            ciphertexts.append((pow(self.group.g, r, p), m ^ pad))
        return ciphertexts[0], ciphertexts[1]

    @property
    def pad_bytes(self) -> int:
        return self._pad_bytes


class DHOTReceiver:
    """The chooser."""

    def __init__(
        self,
        choice: int,
        group: Optional[SchnorrGroup] = None,
        rng: Optional[RandomSource] = None,
    ) -> None:
        if choice not in (0, 1):
            raise OTError("choice must be a bit")
        self.choice = choice
        self.group = group or default_group()
        self._rng = as_random_source(rng)
        self._x: Optional[int] = None

    def round1(self, c: int) -> int:
        """Send pk_0; the receiver holds the dlog of pk_choice only."""
        if not self.group.contains(c):
            raise OTError("sender element is not in the group")
        p = self.group.p
        self._x = self.group.random_exponent(self._rng)
        my_pk = pow(self.group.g, self._x, p)
        if self.choice == 0:
            return my_pk
        return c * modinv(my_pk, p) % p

    def round2(
        self,
        ct0: Tuple[int, int],
        ct1: Tuple[int, int],
        pad_bytes: int,
    ) -> int:
        """Decrypt the chosen ciphertext with x."""
        if self._x is None:
            raise OTError("round1 must run before round2")
        c1, masked = ct1 if self.choice else ct0
        shared = pow(c1, self._x, self.group.p)
        return masked ^ _kdf(shared, self.choice, pad_bytes)


def dh_oblivious_transfer(
    m0: int,
    m1: int,
    choice: int,
    group: Optional[SchnorrGroup] = None,
    rng: Optional[RandomSource] = None,
) -> int:
    """One complete DDH-based exchange (both roles in-process)."""
    source = as_random_source(rng)
    group = group or default_group()
    sender = DHOTSender(m0, m1, group, source)
    receiver = DHOTReceiver(choice, group, source)
    c = sender.round1()
    pk0 = receiver.round1(c)
    ct0, ct1 = sender.round2(pk0)
    return receiver.round2(ct0, ct1, sender.pad_bytes)
