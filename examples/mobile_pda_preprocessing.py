#!/usr/bin/env python3
"""Preprocessing for weak devices — the paper's PDA scenario (§3.3).

"The optimization is useful for mobile devices, e.g. PDAs, that have
limited computing power but reasonable amounts of storage."

A 2004 PDA queries a remote database over a slow wireless link.  Online
public-key encryption at query time would take hours on its CPU, but
the device can precompute encryptions overnight while docked: the index
bits aren't known in advance, so it simply encrypts a pool of 0s and 1s
and spends them at query time.

This example models a PDA (~10x slower than the paper's Pentium-III)
on the wireless-multihop link and compares query latency with and
without the preprocessing pool, then shows the pool bookkeeping
(single-use ciphertexts, miss accounting) with real cryptography.

Run:  python examples/mobile_pda_preprocessing.py
"""

from repro.crypto.paillier import PaillierScheme, generate_keypair
from repro.datastore import WorkloadGenerator
from repro.net import links
from repro.spfe import (
    ExecutionContext,
    EncryptionPool,
    PreprocessedSelectedSumProtocol,
    SelectedSumProtocol,
)
from repro.timing import profiles, seconds_to_minutes


def modelled_comparison():
    print("=" * 72)
    print("A 2004 PDA querying a 20,000-element database (modelled)")
    print("=" * 72)

    pda = profiles.pentium3_2ghz.scaled(10.0, "pda-200mhz")
    generator = WorkloadGenerator("pda")
    n = 20_000
    database = generator.database(n)
    selection = generator.random_selection(n, 200)
    expected = database.select_sum(selection)

    def make_context(seed):
        return ExecutionContext(
            link=links.wireless_multihop,
            client_profile=pda,
            server_profile=profiles.pentium3_2ghz,
            rng=seed,
        )

    online = SelectedSumProtocol(make_context("a")).run(database, selection)
    online.verify(expected)
    pooled = PreprocessedSelectedSumProtocol(make_context("b")).run(
        database, selection
    )
    pooled.verify(expected)

    print("\nwithout preprocessing:")
    print("  query latency: %.1f minutes" % online.online_minutes())
    print("  of which PDA encryption: %.1f minutes"
          % seconds_to_minutes(online.breakdown.client_encrypt_s))

    print("\nwith an overnight preprocessing pool:")
    print("  offline (docked, off the critical path): %.1f minutes"
          % seconds_to_minutes(pooled.breakdown.offline_precompute_s))
    print("  query latency: %.1f minutes (%.0f%% faster)"
          % (
              pooled.online_minutes(),
              100 * (1 - pooled.makespan_s / online.makespan_s),
          ))
    print("  pool storage needed: %.1f MB (2n ciphertexts of 128 B)"
          % (2 * n * 128 / 1e6))


def pool_mechanics():
    print("\n" + "=" * 72)
    print("Pool mechanics with real cryptography")
    print("=" * 72)

    scheme = PaillierScheme()
    keypair = generate_keypair(256, "pda-keys")
    pool = EncryptionPool(scheme, keypair.public, "pda-pool")

    print("\nfilling pool: 6 zeros + 4 ones (the overnight phase)...")
    pool.fill(zeros=6, ones=4)
    print("available: %d zeros, %d ones" % (pool.available(0), pool.available(1)))

    query_bits = [1, 0, 0, 1, 0, 1]
    ciphertexts = [pool.take(bit) for bit in query_bits]
    print("query of %d bits served from the pool" % len(query_bits))
    print("remaining: %d zeros, %d ones, misses so far: %d"
          % (pool.available(0), pool.available(1), pool.misses))

    decrypted = [scheme.decrypt(keypair.private, ct) for ct in ciphertexts]
    assert decrypted == query_bits
    print("ciphertexts decrypt to the intended bits:", decrypted)

    # Exhaust the ones: the pool falls back to (slow) online encryption
    # and counts the miss honestly.
    for _ in range(3):
        pool.take(1)
    print("after an oversized query: misses = %d "
          "(charged at full encryption cost by the protocols)" % pool.misses)


if __name__ == "__main__":
    modelled_comparison()
    pool_mechanics()
    print("\ndone.")
