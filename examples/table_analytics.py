#!/usr/bin/env python3
"""Tabular private analytics: named columns, a planner, and one query.

The full top-of-stack workflow a data analyst would use:

1. the server publishes a table *schema* (column names and row count —
   no values);
2. the analyst asks the planner which protocol variant fits the
   deployment constraints;
3. the analyst runs column statistics over a private row selection via
   :class:`repro.spfe.PrivateTableClient`.

Run:  python examples/table_analytics.py
"""

from repro.crypto.rng import DeterministicRandom
from repro.datastore import Table, indices_to_bits
from repro.experiments.environments import short_distance
from repro.spfe import (
    CombinedSelectedSumProtocol,
    PrivateTableClient,
    ProtocolPlanner,
)


def build_census_table(rows=5_000, seed="census-2004"):
    """Synthetic census micro-data: age, income (kUSD), household size."""
    rng = DeterministicRandom(seed)
    ages = [18 + rng.randbelow(70) for _ in range(rows)]
    incomes = [15 + rng.randbelow(200) for _ in range(rows)]
    households = [1 + rng.randbelow(6) for _ in range(rows)]
    return Table(
        {"age": ages, "income": incomes, "household": households},
        value_bits=16,
    )


def main():
    table = build_census_table()
    print("server table: %d rows, columns %s" % (len(table), table.column_names))

    # --- step 1: plan the query -------------------------------------------
    print("\nplanning a query over this deployment (cluster, 512-bit keys,")
    print("client has 100 MB of storage and an hour of offline time):")
    planner = ProtocolPlanner(short_distance.context())
    plan = planner.plan(
        len(table),
        max_client_storage_mb=100,
        max_offline_minutes=60,
    )
    print(plan.explain())
    chosen = plan.best.protocol
    print("-> running with %r" % chosen)

    # --- step 2: the analyst's private cohort ---------------------------------
    rng = DeterministicRandom("cohort")
    cohort = sorted(
        {rng.randbelow(len(table)) for _ in range(900)}
    )
    selection = indices_to_bits(len(table), cohort)
    print("\ncohort: %d rows (indices never leave the analyst)" % sum(selection))

    # --- step 3: column statistics over the private selection -----------------
    client = PrivateTableClient(
        table,
        short_distance.context(seed="analytics"),
        protocol_factory=lambda ctx: CombinedSelectedSumProtocol(ctx),
    )

    print("\nprivate column statistics:")
    for column in table.column_names:
        summary = client.describe(column, selection)
        print(
            "  %-10s mean=%8.2f  std=%7.2f  (over %d selected rows)"
            % (column, summary["mean"], summary["std"], summary["count"])
        )

    correlation = client.correlation("age", "income", selection)
    print("\nage/income correlation over the cohort: %.4f" % correlation.value)

    total_runs = correlation.runs
    print(
        "protocol cost of the correlation: %d selected-sum runs, "
        "%.2f modelled minutes online"
        % (len(total_runs), sum(r.makespan_s for r in total_runs) / 60)
    )
    print("done.")


if __name__ == "__main__":
    main()
