#!/usr/bin/env python3
"""One-pass private group-by: cohort comparisons in a single query.

A researcher splits a secret cohort into treatment arms (the arms are
as sensitive as the cohort itself) and wants each arm's total and mean.
Running a private sum per arm costs one full protocol pass each; the
packed group-by (`repro.spfe.GroupedSumProtocol`) gets every arm's sum
from the base-B digits of a *single* decryption.

Run:  python examples/grouped_cohorts.py
"""

from repro.crypto.paillier import PaillierScheme
from repro.crypto.rng import DeterministicRandom
from repro.datastore import ServerDatabase, WorkloadGenerator
from repro.experiments.environments import short_distance
from repro.spfe import ExecutionContext, GroupedSumProtocol, SelectedSumProtocol
from repro.spfe.grouped import group_means

ARMS = ("control", "low-dose", "high-dose")


def assign_arms(n, cohort_size=600, seed="trial-arms"):
    """Secret assignment: most rows unselected (None), cohort split 3 ways."""
    rng = DeterministicRandom(seed)
    chosen = set()
    while len(chosen) < cohort_size:
        chosen.add(rng.randbelow(n))
    groups = [None] * n
    for rank, index in enumerate(sorted(chosen)):
        groups[index] = rank % len(ARMS)
    return groups


def modelled_comparison():
    print("=" * 72)
    print("Trial outcomes over a 50,000-row database (modelled, 2004 cluster)")
    print("=" * 72)

    generator = WorkloadGenerator("trial")
    n = 50_000
    database = generator.database(n, value_bits=16)
    groups = assign_arms(n)

    grouped = GroupedSumProtocol(
        short_distance.context(seed="packed")
    ).run_grouped(database, groups, num_groups=len(ARMS))

    naive_seconds = 0.0
    for j in range(len(ARMS)):
        selection = [1 if g == j else 0 for g in groups]
        run = SelectedSumProtocol(
            short_distance.context(seed="naive%d" % j)
        ).run(database, selection)
        assert run.value == grouped[j]
        naive_seconds += run.makespan_s

    sizes = [sum(1 for g in groups if g == j) for j in range(len(ARMS))]
    means = group_means(grouped, sizes)
    print("\n%-10s %8s %12s %10s" % ("arm", "rows", "sum", "mean"))
    for j, arm in enumerate(ARMS):
        print("%-10s %8d %12d %10.2f" % (arm, sizes[j], grouped[j], means[j]))

    print("\none packed pass:   %.2f modelled minutes" % (grouped.run.makespan_s / 60))
    print("three naive passes: %.2f modelled minutes" % (naive_seconds / 60))
    print("packing radix: %d bits per group digit" % grouped.run.metadata["radix_bits"])


def real_crypto_demo():
    print("\n" + "=" * 72)
    print("The same packing with real Paillier")
    print("=" * 72)

    database = ServerDatabase([12, 7, 30, 5, 18, 22], value_bits=8)
    groups = [0, 1, 0, None, 2, 1]
    ctx = ExecutionContext(
        scheme=PaillierScheme(), key_bits=256, mode="measured", rng="real-grp"
    )
    result = GroupedSumProtocol(ctx).run_grouped(database, groups, num_groups=3)
    print("\ndatabase:", list(database))
    print("secret arms:", groups)
    print("per-arm sums from ONE decryption:", result.group_sums)
    assert result.group_sums == [42, 29, 18]
    print("(server saw %d ciphertexts and returned one)" % len(database))


if __name__ == "__main__":
    modelled_comparison()
    real_crypto_demo()
    print("\ndone.")
