#!/usr/bin/env python3
"""Private sums over multiple distributed databases.

The paper (§1): "This protocol ... can easily be extended to work for
multiple distributed databases."  Scenario: three hospitals each hold a
partition of patient records; a researcher wants one aggregate across
all of them without any hospital learning the cohort and — in blinded
mode — without the researcher learning any single hospital's subtotal.

Run:  python examples/distributed_databases.py
"""

from repro.crypto.paillier import PaillierScheme
from repro.datastore import ServerDatabase, WorkloadGenerator
from repro.experiments.environments import short_distance
from repro.spfe import DistributedSelectedSumProtocol, ExecutionContext


def modelled_fan_out():
    print("=" * 72)
    print("Three hospitals, one query (modelled at paper scale)")
    print("=" * 72)

    generator = WorkloadGenerator("hospitals")
    partitions = [
        generator.database(40_000),  # hospital A
        generator.database(35_000),  # hospital B
        generator.database(25_000),  # hospital C
    ]
    total_n = sum(len(p) for p in partitions)
    selection = generator.random_selection(total_n, 1_000)
    combined = [v for p in partitions for v in p.values]
    expected = sum(v * s for v, s in zip(combined, selection))

    result = DistributedSelectedSumProtocol(
        short_distance.context(seed="hospitals"), hide_partials=True
    ).run_distributed(partitions, selection)
    result.verify(expected)

    print("\npartitions: %s rows" % result.metadata["partition_sizes"])
    print("cohort size: %d (hidden from every hospital)" % result.m)
    print("aggregate sum: %d" % result.value)
    print("modelled online runtime: %.1f minutes" % result.online_minutes())
    print("  (client encryption %.1f min — unchanged vs one server;"
          % (result.breakdown.client_encrypt_s / 60))
    print("   the three server passes overlap)")
    print("blind coordination overhead: %d bytes between servers"
          % result.metadata["blind_coordination_bytes"])


def blinded_subtotals_demo():
    print("\n" + "=" * 72)
    print("Subtotal hiding with real cryptography")
    print("=" * 72)

    partitions = [
        ServerDatabase([100, 200], value_bits=16),   # subtotal 300
        ServerDatabase([300, 400], value_bits=16),   # subtotal 700
    ]
    selection = [1, 1, 1, 1]

    for hide in (False, True):
        ctx = ExecutionContext(
            scheme=PaillierScheme(), key_bits=256, mode="measured",
            rng="dist-%s" % hide,
        )
        protocol = DistributedSelectedSumProtocol(ctx, hide_partials=hide)
        result = protocol.run_distributed(partitions, selection)
        print("\nhide_partials=%s -> total %d" % (hide, result.value))
        if hide:
            print("  each hospital's reply was blinded; only the combined")
            print("  ciphertext decrypts to something meaningful")
        else:
            print("  each reply decrypts to that hospital's subtotal")
            print("  (fine when each hospital consents to its own aggregate)")


if __name__ == "__main__":
    modelled_fan_out()
    blinded_subtotals_demo()
    print("\ndone.")
