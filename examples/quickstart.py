#!/usr/bin/env python3
"""Quickstart: the private selected-sum protocol in five minutes.

A client wants the sum of a secret subset of a server's database.  The
server must not learn which elements were selected (client privacy);
the client must learn nothing beyond the sum (database privacy).

This script walks the library's layers:

1. the one-call convenience API;
2. real Paillier cryptography, hands-on;
3. protocol runs with timing breakdowns under the paper's 2004
   performance model;
4. the optimization ladder of the paper's §3.

Run:  python examples/quickstart.py
"""

from repro import (
    EncryptedNumber,
    ExecutionContext,
    ServerDatabase,
    generate_keypair,
    private_selected_sum,
)
from repro.experiments.environments import short_distance
from repro.spfe import (
    BatchedSelectedSumProtocol,
    CombinedSelectedSumProtocol,
    PreprocessedSelectedSumProtocol,
    SelectedSumProtocol,
    audit_result,
)
from repro.datastore import WorkloadGenerator


def section(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def one_call_api():
    section("1. One call: a private sum over five elements")
    database = ServerDatabase([17, 4, 23, 8, 15])
    selection = [1, 0, 1, 0, 1]  # the client's secret 0/1 vector
    result = private_selected_sum(database, selection)
    print("database (server-side):", list(database))
    print("selection (client-side, never revealed):", selection)
    print("private sum:", result.value, "(expected 17 + 23 + 15 = 55)")
    assert result.value == 55


def hands_on_paillier():
    section("2. The cryptography underneath: Paillier, hands on")
    keypair = generate_keypair(bits=512)
    print("generated a 512-bit Paillier key pair (the paper's size)")

    a = EncryptedNumber.encrypt(keypair.public, 20)
    b = EncryptedNumber.encrypt(keypair.public, 22)
    total = a + b  # multiply ciphertexts = add plaintexts
    print("E(20) (*) E(22) decrypts to:", total.decrypt(keypair.private))

    scaled = a * 3  # exponentiate = scalar-multiply
    print("E(20) ^ 3  decrypts to:", scaled.decrypt(keypair.private))

    again = EncryptedNumber.encrypt(keypair.public, 20)
    print(
        "two encryptions of 20 share a ciphertext:",
        a.ciphertext == again.ciphertext,
        "(semantic security: always False)",
    )


def timed_protocol_run():
    section("3. A paper-scale run under the 2004 performance model")
    generator = WorkloadGenerator("quickstart")
    n = 100_000
    database = generator.database(n)  # 100k random 32-bit values
    selection = generator.random_selection(n, 1_000)

    context = short_distance.context(seed="quickstart")
    result = SelectedSumProtocol(context).run(database, selection)
    result.verify(database.select_sum(selection))
    audit_result(result, selection)

    print("environment:", short_distance.description)
    print("n = %d elements, m = %d selected" % (result.n, result.m))
    print("modelled online runtime: %.1f minutes (paper: ~20)" % result.online_minutes())
    for name, minutes in result.component_minutes().items():
        if minutes:
            print("  %-20s %8.3f min" % (name, minutes))
    print("bytes moved: %.1f MB" % (result.total_bytes / 1e6))
    print("privacy audit: passed (ciphertexts only, no reuse)")


def optimization_ladder():
    section("4. The paper's optimization ladder (§3.2-§3.4)")
    generator = WorkloadGenerator("ladder")
    n = 100_000
    database = generator.database(n)
    selection = generator.random_selection(n, 1_000)
    expected = database.select_sum(selection)

    ladder = [
        ("plain (Fig 2)", SelectedSumProtocol),
        ("batched (Fig 4)", BatchedSelectedSumProtocol),
        ("preprocessed (Fig 5)", PreprocessedSelectedSumProtocol),
        ("combined (Fig 7)", CombinedSelectedSumProtocol),
    ]
    baseline_minutes = None
    for label, protocol_cls in ladder:
        context = short_distance.context(seed="ladder")
        result = protocol_cls(context).run(database, selection)
        result.verify(expected)
        minutes = result.online_minutes()
        if baseline_minutes is None:
            baseline_minutes = minutes
            note = "(baseline)"
        else:
            note = "(-%.0f%%)" % (100 * (1 - minutes / baseline_minutes))
        print("  %-22s %7.2f min online %s" % (label, minutes, note))


if __name__ == "__main__":
    one_call_api()
    hands_on_paillier()
    timed_protocol_run()
    optimization_ladder()
    print("\nAll quickstart steps completed.")
