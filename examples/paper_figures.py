#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation as tables + charts.

Runs the seven figure experiments (Figures 2-7 and 9; Figures 1 and 8
are protocol diagrams) plus the two in-text experiments, renders each as
a fixed-width table and an ASCII chart, and writes everything under
``results/``.

Pass ``--quick`` (or set REPRO_QUICK=1) for a 4-point sweep instead of
the paper's 10 database sizes.

Run:  python examples/paper_figures.py [--quick]
"""

import os
import sys
import time

from repro.experiments import (
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure9,
    render_chart,
    render_table,
    text_language_factor,
    text_yao_baseline,
    write_result_file,
)


HEADLINE_COLUMNS = {
    "figure2": "client_encrypt",
    "figure3": "client_encrypt",
    "figure4": "with_batching",
    "figure5": "server_compute",
    "figure6": "communication",
    "figure7": "combined",
    "figure9": "with_secret_sharing",
    "text-language-factor": "java",
    "text-yao-baseline": "fairplay_model",
}


def main():
    if "--quick" in sys.argv:
        os.environ["REPRO_QUICK"] = "1"

    runners = (
        figure2,
        figure3,
        figure4,
        figure5,
        figure6,
        figure7,
        figure9,
        text_language_factor,
        lambda: text_yao_baseline(),
    )
    started = time.perf_counter()
    for runner in runners:
        t0 = time.perf_counter()
        series = runner()
        table = render_table(series)
        chart = render_chart(series, HEADLINE_COLUMNS[series.experiment_id])
        print("\n" + table)
        print("\n" + chart)
        write_result_file(
            table + "\n\n" + chart, series.experiment_id + ".txt"
        )
        print("(%.1fs; written to results/%s.txt)"
              % (time.perf_counter() - t0, series.experiment_id))
    print("\nall figures regenerated in %.1fs" % (time.perf_counter() - started))


if __name__ == "__main__":
    main()
