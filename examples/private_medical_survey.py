#!/usr/bin/env python3
"""Private cohort statistics over a hospital's database.

The motivating scenario of privacy-preserving statistics (paper §1): a
research client wants aggregate statistics — mean, variance, a weighted
average — over a *cohort* of patients in a hospital's database.  The
hospital must not learn which patients are in the cohort (that set may
itself encode the research hypothesis); the researcher must learn only
the agreed statistics, not any patient's value.

This example runs the real cryptographic protocol (512-bit Paillier, as
in the paper) end to end for every statistic, verifies each against a
direct computation, and shows what each party actually saw.

Run:  python examples/private_medical_survey.py
"""

import numpy as np

from repro.crypto.paillier import PaillierScheme
from repro.datastore import ServerDatabase, indices_to_bits
from repro.spfe import (
    ExecutionContext,
    PrivateStatisticsClient,
    audit_client_privacy,
)
from repro.crypto.rng import DeterministicRandom


def build_hospital_database(num_patients=120, seed="hospital-2004"):
    """Synthetic patient records: systolic blood pressure, mmHg."""
    rng = DeterministicRandom(seed)
    readings = [90 + rng.randbelow(90) for _ in range(num_patients)]
    return ServerDatabase(readings, value_bits=16)


def choose_cohort(num_patients, seed="study-cohort"):
    """The researcher's secret cohort: 30 patient indices."""
    rng = DeterministicRandom(seed)
    cohort = set()
    while len(cohort) < 30:
        cohort.add(rng.randbelow(num_patients))
    return sorted(cohort)


def main():
    database = build_hospital_database()
    cohort = choose_cohort(len(database))
    selection = indices_to_bits(len(database), cohort)

    print("hospital database: %d patients (blood-pressure readings)" % len(database))
    print("research cohort: %d patients (indices secret from hospital)" % len(cohort))

    # Real cryptography: 512-bit Paillier, measured mode.
    context = ExecutionContext(
        scheme=PaillierScheme(), key_bits=512, mode="measured", rng="survey"
    )
    stats = PrivateStatisticsClient(context)

    print("\nrunning private statistics (real 512-bit Paillier)...")
    mean = stats.mean(database, selection)
    variance = stats.variance(database, selection, ddof=1)
    std = stats.std(database, selection, ddof=1)

    # Ground truth (what the two parties could compute together only by
    # giving up privacy).
    readings = np.array(database.values, dtype=float)
    mask = np.array(selection, dtype=bool)
    cohort_values = readings[mask]

    print("\n%-22s %12s %12s" % ("statistic", "private", "ground truth"))
    for name, private_value, truth in (
        ("cohort mean", mean.value, cohort_values.mean()),
        ("cohort variance", variance.value, cohort_values.var(ddof=1)),
        ("cohort std dev", std.value, cohort_values.std(ddof=1)),
    ):
        print("%-22s %12.4f %12.4f" % (name, private_value, truth))
        assert abs(private_value - truth) < 1e-6

    # Weighted average: weight recent readings more heavily.
    weights = [0] * len(database)
    for rank, index in enumerate(cohort):
        weights[index] = 1 + rank % 3  # weights 1..3
    weighted = stats.weighted_average(database, weights)
    truth = np.average(readings, weights=weights)
    print("%-22s %12.4f %12.4f" % ("weighted average", weighted.value, truth))
    assert abs(weighted.value - truth) < 1e-6

    # What did the hospital actually see?  Audit the first run's channel.
    channel = mean.runs[0].metadata["channel"]
    audit_client_privacy(channel, selection)
    uplink = channel.server_view
    print("\nhospital's view of the mean query:")
    print("  messages received: %d" % uplink.count())
    print("  encrypted index ciphertexts: %d" % uplink.count("enc-index"))
    print("  plaintext patient indices visible: 0 (audit passed)")

    print("\nresearcher's view: %d message (the encrypted sum) per query"
          % channel.client_view.count())
    total_runs = mean.runs + variance.runs + weighted.runs
    print("\ntotal protocol cost: %d runs, %.1f KB moved"
          % (len(total_runs), sum(r.total_bytes for r in total_runs) / 1e3))
    print("done.")


if __name__ == "__main__":
    main()
