#!/usr/bin/env python3
"""The protocol over a real TCP connection on localhost — resiliently.

Everything else in this repository exchanges Python objects or modelled
bytes; this example deploys the actual wire protocol
(:mod:`repro.net.codec` / :mod:`repro.spfe.session`): a server thread
listens on a TCP port holding the database, a client connects, streams
its encrypted index vector, and decrypts the sum — with real 512-bit
Paillier ciphertexts in real kernel socket buffers.

Unlike the first version of this example, nothing here can hang
forever: every socket read carries a deadline via
:class:`repro.net.transport.SocketTransport`, a dead peer surfaces as a
typed :class:`repro.exceptions.TransportError`, and the client runs
under a bounded :class:`repro.net.transport.RetryPolicy` — if the
connection drops mid-stream it reconnects and *resumes* from the last
chunk the server acknowledged instead of re-encrypting the vector
(encryption is the dominant cost, so that is the expensive part to
protect).

Run:  python examples/tcp_deployment.py
"""

import socket
import threading
import time

from repro.datastore import WorkloadGenerator
from repro.exceptions import ReproError, TransportError
from repro.net.transport import RetryPolicy, SocketTransport
from repro.spfe.session import (
    ClientSession,
    ServerSession,
    SessionRegistry,
    run_resilient,
    serve_over_transport,
)

READ_TIMEOUT_S = 10.0  # no read ever blocks longer than this


def serve(listener, database, ready, served):
    """The database owner's side: accept until one query completes.

    Each read carries a deadline, so a peer that dies mid-protocol
    costs at most ``READ_TIMEOUT_S`` before the connection is dropped
    with a typed failure — the serve loop then simply accepts the next
    connection.  The shared registry is what lets a reconnecting client
    resume instead of restarting.
    """
    registry = SessionRegistry()
    ready.set()
    while True:
        try:
            connection, peer = listener.accept()
        except OSError:
            return  # listener closed; we are done
        session = ServerSession(database, registry=registry)
        with SocketTransport(connection, read_timeout=READ_TIMEOUT_S) as transport:
            try:
                serve_over_transport(session, transport)
            except TransportError as exc:
                print("server: dropped %s (%s)" % (peer, exc))
                continue
        served.append(session)
        if session.finished:
            return


def main():
    generator = WorkloadGenerator("tcp-demo")
    n = 400
    database = generator.database(n, value_bits=16)
    selection = generator.random_selection(n, 60)
    expected = database.select_sum(selection)

    listener = socket.create_server(("127.0.0.1", 0))
    port = listener.getsockname()[1]
    print("server: listening on 127.0.0.1:%d with %d rows" % (port, n))

    ready = threading.Event()
    served = []
    server_thread = threading.Thread(
        target=serve, args=(listener, database, ready, served), daemon=True
    )
    server_thread.start()
    ready.wait()

    print("client: connecting, encrypting %d index bits (512-bit Paillier)..." % n)
    started = time.perf_counter()
    client = ClientSession(selection, key_bits=512, chunk_size=32)
    try:
        run_resilient(
            client,
            lambda: SocketTransport.connect(
                "127.0.0.1", port,
                connect_timeout=READ_TIMEOUT_S, read_timeout=READ_TIMEOUT_S,
            ),
            policy=RetryPolicy(max_attempts=3),
        )
    except ReproError as exc:
        # Typed, bounded failure — the old example would hang instead.
        print("client: giving up: %s" % exc)
        listener.close()
        return
    elapsed = time.perf_counter() - started
    server_thread.join(timeout=2 * READ_TIMEOUT_S)
    listener.close()

    print("client: received and decrypted the sum in %.2f s" % elapsed)
    print("  private sum: %d" % client.result)
    print("  ground truth: %d" % expected)
    assert client.result == expected
    print("  uplink: %.1f KB (%d ciphertexts of 128 B + framing)"
          % (client.bytes_sent / 1e3, n))
    print("  downlink: %d bytes (one ciphertext)" % client.bytes_received)
    print("  encryptions: %d (resume would re-send, never re-encrypt)"
          % client.encryptions)
    print("done — the server never saw a plaintext index.")


if __name__ == "__main__":
    main()
