#!/usr/bin/env python3
"""The protocol over a real TCP connection on localhost.

Everything else in this repository exchanges Python objects or modelled
bytes; this example deploys the actual wire protocol
(:mod:`repro.net.codec` / :mod:`repro.spfe.session`): a server thread
listens on a TCP port holding the database, a client connects, streams
its encrypted index vector, and decrypts the sum — with real 512-bit
Paillier ciphertexts in real kernel socket buffers.

Run:  python examples/tcp_deployment.py
"""

import socket
import threading
import time

from repro.datastore import WorkloadGenerator
from repro.spfe.session import ClientSession, ServerSession


def serve(listener, database, ready):
    """The database owner's side: one connection, one query."""
    ready.set()
    connection, _ = listener.accept()
    session = ServerSession(database)
    with connection:
        while not session.finished:
            data = connection.recv(4096)
            if not data:
                break
            reply = session.receive_bytes(data)
            if reply:
                connection.sendall(reply)
    return session


def main():
    generator = WorkloadGenerator("tcp-demo")
    n = 400
    database = generator.database(n, value_bits=16)
    selection = generator.random_selection(n, 60)
    expected = database.select_sum(selection)

    listener = socket.create_server(("127.0.0.1", 0))
    port = listener.getsockname()[1]
    print("server: listening on 127.0.0.1:%d with %d rows" % (port, n))

    ready = threading.Event()
    server_thread = threading.Thread(
        target=serve, args=(listener, database, ready), daemon=True
    )
    server_thread.start()
    ready.wait()

    print("client: connecting, encrypting %d index bits (512-bit Paillier)..." % n)
    started = time.perf_counter()
    client = ClientSession(selection, key_bits=512, chunk_size=32)
    with socket.create_connection(("127.0.0.1", port)) as connection:
        for outgoing in client.initial_bytes():
            connection.sendall(outgoing)
        while client.result is None:
            client.receive_bytes(connection.recv(4096))
    elapsed = time.perf_counter() - started
    server_thread.join(timeout=5)
    listener.close()

    print("client: received and decrypted the sum in %.2f s" % elapsed)
    print("  private sum: %d" % client.result)
    print("  ground truth: %d" % expected)
    assert client.result == expected
    print("  uplink: %.1f KB (%d ciphertexts of 128 B + framing)"
          % (client.bytes_sent / 1e3, n))
    print("  downlink: %d bytes (one ciphertext)" % client.bytes_received)
    print("done — the server never saw a plaintext index.")


if __name__ == "__main__":
    main()
