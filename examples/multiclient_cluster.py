#!/usr/bin/env python3
"""Multiple clients in parallel — the paper's §3.5 / Figures 8-9.

k cooperating clients split the index vector, each runs the protocol on
its share, and the server blinds each partial sum so that no client
learns more than the final total.  The paper measured k = 3 in Java and
saw a ~2.99x speedup; here we sweep k, show the blinding in action with
real cryptography, and reproduce the Figure 9 comparison.

Run:  python examples/multiclient_cluster.py
"""

from repro.crypto.paillier import PaillierScheme
from repro.datastore import ServerDatabase, WorkloadGenerator
from repro.experiments.environments import short_distance
from repro.spfe import (
    ExecutionContext,
    MultiClientSelectedSumProtocol,
    SelectedSumProtocol,
)


def speedup_sweep():
    print("=" * 72)
    print("Speedup vs number of clients (n = 100,000, Java profile)")
    print("=" * 72)

    generator = WorkloadGenerator("multiclient")
    n = 100_000
    database = generator.database(n)
    selection = generator.random_selection(n, 1_000)
    expected = database.select_sum(selection)

    single = SelectedSumProtocol(
        short_distance.context(java=True, seed="single")
    ).run(database, selection)
    single.verify(expected)
    print("\nsingle client: %.1f minutes (paper: ~100 at n=100k in Java)"
          % single.online_minutes())

    print("\n%4s %12s %9s %18s" % ("k", "minutes", "speedup", "combine overhead"))
    for k in (2, 3, 4, 6, 8):
        result = MultiClientSelectedSumProtocol(
            short_distance.context(java=True, seed="k%d" % k), num_clients=k
        ).run(database, selection)
        result.verify(expected)
        print("%4d %12.1f %8.2fx %15.2f s"
              % (
                  k,
                  result.online_minutes(),
                  single.makespan_s / result.makespan_s,
                  result.breakdown.combine_s,
              ))
    print("\npaper's measured point: k=3 -> ~2.99x")


def blinding_demo():
    print("\n" + "=" * 72)
    print("The blinding, with real cryptography")
    print("=" * 72)

    database = ServerDatabase([100, 200, 300, 400, 500, 600], value_bits=16)
    selection = [1, 1, 1, 1, 1, 1]
    context = ExecutionContext(
        scheme=PaillierScheme(), key_bits=256, mode="measured", rng="blind"
    )
    protocol = MultiClientSelectedSumProtocol(context, num_clients=3)
    result = protocol.run(database, selection)

    print("\ndatabase:", list(database), "-> true total:", sum(database))
    print("3 clients, slices of 2 elements each")
    print("true partial sums: 300, 700, 1100 (must stay hidden!)")

    ring = result.metadata["ring_channels"]
    forwarded = ring[0].server_view.payloads("ring-forward")
    print("what client 2 received from client 1: %d (blinded, not 300)"
          % forwarded[0])
    print("blinding modulus: %d bits (sigma = 40 statistical hiding)"
          % result.metadata["blind_modulus_bits"])
    print("recovered total after the ring: %d" % result.value)
    assert result.value == sum(database)
    assert forwarded[0] != 300


if __name__ == "__main__":
    speedup_sweep()
    blinding_demo()
    print("\ndone.")
