"""Figure 2 — runtime components, no optimizations, short distance.

Paper claim: every component linear in n; client encryption dominates;
~20 minutes total at n = 100,000; decryption constant and negligible.
"""

import pytest

from repro.experiments import figures


def test_fig2_components_short(benchmark, emit):
    series = benchmark.pedantic(figures.figure2, iterations=1, rounds=1)
    emit(series)

    last = series.final()
    total = sum(last.get(c) for c in series.columns)
    assert last.x == 100_000
    assert 18 < total < 23, "paper: ~20 minutes at n=100,000"
    assert last.get("client_encrypt") > 5 * last.get("server_compute")
    assert last.get("server_compute") > last.get("communication")
    assert last.get("client_decrypt") < 0.01

    first = series.points[0]
    scale = last.x / first.x
    assert last.get("client_encrypt") == pytest.approx(
        scale * first.get("client_encrypt"), rel=0.05
    ), "components must be linear in n"
