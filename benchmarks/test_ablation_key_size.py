"""Ablation — key-size sweep.

The paper fixes 512-bit keys.  The model's scaling laws (encryption
Θ(bits³), server step Θ(bits²), wire size Θ(bits)) show what that
choice bought: 1024-bit keys would have made the unoptimized protocol
~8x slower — hours, not minutes, on 2004 hardware.
"""

import pytest

from repro.experiments import figures


def test_ablation_key_size(benchmark, emit):
    series = benchmark.pedantic(
        lambda: figures.ablation_key_size(key_sizes=(256, 512, 1024, 2048)),
        iterations=1,
        rounds=1,
    )
    emit(series)

    enc = {p.x: p.get("client_encrypt") for p in series.points}
    assert enc[1024] == pytest.approx(8 * enc[512], rel=0.02)  # cubic
    assert enc[512] == pytest.approx(8 * enc[256], rel=0.02)

    srv = {p.x: p.get("server_compute") for p in series.points}
    assert srv[1024] == pytest.approx(4 * srv[512], rel=0.02)  # quadratic

    comm = {p.x: p.get("communication") for p in series.points}
    assert comm[1024] > comm[512] > comm[256]  # linear ciphertext growth

    # 2048-bit keys at n=100k: multi-hour territory on the 2004 machine.
    assert series.at(2048).get("total") > 8 * series.at(512).get("total")
