"""In-text experiment B — generic SMC (Yao/Fairplay) vs the homomorphic
protocol.

Paper (§2): "initial results of the Fairplay system [14] suggest that
straightforward implementation of Yao's solution would require an
execution time of at least 15 minutes for a database of only 100
elements [16]" — versus ~20 minutes for the homomorphic protocol at
100,000 elements, a ~1000x gap per element.

This bench runs our *real* garbled-circuit implementation (OT + garbling
+ evaluation) at small n, reports the modelled 2004 Fairplay figures,
and checks the crossover claim: generic SMC loses by orders of
magnitude on this workload, and the gap grows with n.
"""

from repro.experiments import figures


def test_text_yao_baseline(benchmark, emit):
    series = benchmark.pedantic(
        lambda: figures.text_yao_baseline(sizes=(10, 25, 50, 100)),
        iterations=1,
        rounds=1,
    )
    emit(series)

    last = series.final()
    assert last.x == 100
    assert last.get("fairplay_model") == 15.0, "the paper's quoted point"
    # The homomorphic protocol at n=100 is ~1000x faster than Fairplay.
    assert last.get("homomorphic_model") < last.get("fairplay_model") / 100

    # The gap grows with n (both linear here, but Yao moves megabytes).
    first = series.points[0]
    assert last.get("yao_megabytes") > 4 * first.get("yao_megabytes")

    # Our measured Python Yao exists and produced correct sums (verified
    # inside the runner); it should finish in seconds at this scale.
    assert last.get("our_yao_measured") < 5.0, "minutes, on modern hardware"
