"""Modern-hardware comparison: the paper's protocol, measured today.

The paper closes: "It remains open to improve the execution times to
scale efficiently to realistically-sized databases."  Two decades of
hardware later, this bench measures the *real* protocol (pure-Python
Paillier at the paper's 512-bit keys) on the current machine, fits a
per-element cost, and extrapolates to the paper's n = 100,000 — the
"what would it cost today" row of EXPERIMENTS.md.

Even in interpreted Python, a modern core runs the 2004 protocol's
dominant operation several times faster than the fitted Pentium-III
model; a C implementation (like the paper's OpenSSL one) would widen
that by another order of magnitude.
"""

import time

import pytest

from repro.crypto.paillier import PaillierScheme
from repro.datastore.workload import WorkloadGenerator
from repro.experiments.series import ExperimentSeries
from repro.spfe.context import ExecutionContext
from repro.spfe.selected_sum import SelectedSumProtocol
from repro.timing.costmodel import Op, profiles


def run_measured(n, seed="modern"):
    generator = WorkloadGenerator(seed)
    database = generator.database(n)
    selection = generator.random_selection(n, max(1, n // 20))
    ctx = ExecutionContext(
        scheme=PaillierScheme(), key_bits=512, mode="measured", rng=seed
    )
    result = SelectedSumProtocol(ctx).run(database, selection)
    result.verify(database.select_sum(selection))
    return result


def test_modern_hardware_comparison(benchmark, emit):
    def sweep():
        series = ExperimentSeries(
            experiment_id="modern-hardware",
            title="Real 512-bit runs on this machine vs the 2004 model",
            x_label="database size",
            unit="s",
            columns=[
                "measured_encrypt",
                "measured_server",
                "model_2004_encrypt",
                "speedup_vs_2004",
            ],
        )
        for n in (100, 250, 500):
            result = run_measured(n)
            model_encrypt = n * profiles.pentium3_2ghz.cost(Op.ENCRYPT, 512)
            series.add(
                n,
                measured_encrypt=result.breakdown.client_encrypt_s,
                measured_server=result.breakdown.server_compute_s,
                model_2004_encrypt=model_encrypt,
                speedup_vs_2004=model_encrypt
                / max(result.breakdown.client_encrypt_s, 1e-9),
            )
        return series

    series = benchmark.pedantic(sweep, iterations=1, rounds=1)
    emit(series)

    last = series.final()
    # Pure-Python on a modern core still beats the fitted 2004 numbers.
    assert last.get("speedup_vs_2004") > 1.0

    # Extrapolated full paper workload on this machine, today:
    per_element = last.get("measured_encrypt") / last.x
    extrapolated_minutes = per_element * 100_000 / 60
    print(
        "\nextrapolated n=100,000 client encryption on this machine: "
        "%.1f min (paper's 2004 model: 18.0 min)" % extrapolated_minutes
    )
    # Interpreted Python within ~20 min; the paper-era C++ took 18.
    assert extrapolated_minutes < 30
