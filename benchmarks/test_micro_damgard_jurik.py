"""Live microbenchmarks — Damgård–Jurik vs Paillier.

Quantifies the generalization's tradeoff at 512-bit keys: raising ``s``
multiplies the plaintext capacity (s·512 bits instead of 512) at a
ciphertext-size cost of (s+1)/2× and a compute cost that grows with the
modulus n^{s+1}.  Relevant to the protocol when sums (or weighted sums)
outgrow Z_n — the alternative to doubling the key size.
"""

import pytest

from repro.crypto.damgard_jurik import generate_dj_keypair
from repro.crypto.paillier import generate_keypair
from repro.crypto.rng import DeterministicRandom

KEY_BITS = 512


@pytest.fixture(scope="module")
def rng():
    return DeterministicRandom("dj-bench")


@pytest.fixture(scope="module")
def dj2_keypair():
    return generate_dj_keypair(KEY_BITS, 2, "dj-bench-key")


@pytest.fixture(scope="module")
def paillier_keypair():
    return generate_keypair(KEY_BITS, "dj-bench-key")  # same primes (same seed)


def test_micro_dj2_encrypt(benchmark, dj2_keypair, rng):
    result = benchmark(lambda: dj2_keypair.public.encrypt_raw(123456789, rng))
    assert dj2_keypair.private.raw_decrypt(result) == 123456789


def test_micro_dj2_decrypt(benchmark, dj2_keypair, rng):
    big = dj2_keypair.public.n + 987654321  # beyond Paillier's range
    ciphertext = dj2_keypair.public.encrypt_raw(big, rng)
    result = benchmark(lambda: dj2_keypair.private.raw_decrypt(ciphertext))
    assert result == big


def test_dj_capacity_vs_cost_tradeoff(benchmark, dj2_keypair, paillier_keypair, rng):
    """One structured comparison: s=2 doubles plaintext bits for ~2-4x
    compute and 1.5x ciphertext size."""
    import time

    def measure(fn, iterations=10):
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        return (time.perf_counter() - start) / iterations

    def run():
        paillier_enc = measure(lambda: paillier_keypair.public.encrypt_raw(7, rng))
        dj_enc = measure(lambda: dj2_keypair.public.encrypt_raw(7, rng))
        return paillier_enc, dj_enc

    paillier_enc, dj_enc = benchmark.pedantic(run, iterations=1, rounds=1)
    print(
        "\npaillier-512 encrypt: %.2f ms | dj-512 (s=2) encrypt: %.2f ms "
        "(plaintext capacity 512 -> 1024 bits, ciphertext 128 -> 192 B)"
        % (paillier_enc * 1e3, dj_enc * 1e3)
    )
    # More capacity costs more compute, but far less than the ~8x of
    # doubling the key size (the cubic law in the key-size ablation).
    assert 1.2 < dj_enc / paillier_enc < 8
    assert dj2_keypair.public.n_to_s.bit_length() > 2 * KEY_BITS - 4
