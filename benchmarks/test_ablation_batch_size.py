"""Ablation — batch-size sweep for the §3.2 pipeline.

The paper fixes batch = 100 and remarks that "the optimal chunk size
will depend on the relative communication and computation speeds".
This sweep maps that dependence: tiny batches pay per-message overhead,
huge batches lose the overlap; a broad plateau of good sizes sits in
between (which is why the paper's 100 works well without tuning).
"""

from repro.experiments import figures


def test_ablation_batch_size(benchmark, emit):
    series = benchmark.pedantic(
        lambda: figures.ablation_batch_size(
            batch_sizes=(1, 10, 100, 1_000, 10_000, 100_000), n=100_000
        ),
        iterations=1,
        rounds=1,
    )
    emit(series)

    paper_choice = series.at(100)
    whole_db = series.at(100_000)  # one batch = no pipelining
    assert paper_choice.get("makespan") <= whole_db.get("makespan")
    assert paper_choice.get("reduction_pct") > 7

    # The plateau: everything from 10 to 10,000 is within a few percent.
    plateau = [series.at(b).get("makespan") for b in (10, 100, 1_000, 10_000)]
    assert max(plateau) / min(plateau) < 1.05
