"""Figure 9 — multi-client secret sharing with k = 3 (Java).

Paper claim: three cooperating clients, each encrypting a third of the
index vector with server-side blinding of the partial sums, reduce the
overall execution time by a factor of ~2.99 (3-fold minus a small
combining overhead).  The paper implemented this in Java only, so the
absolute numbers carry the ~5x Java factor.
"""

import pytest

from repro.experiments import figures


def test_fig9_multiclient(benchmark, emit):
    series = benchmark.pedantic(figures.figure9, iterations=1, rounds=1)
    emit(series)

    for point in series.points:
        assert 2.8 < point.get("speedup") < 3.05, (
            "paper: a factor of approximately 2.99 at k = 3"
        )

    # Java absolute scale: ~5x the C++ figures of the same workload.
    java_total = series.final().get("without_secret_sharing")
    cpp = figures.figure2(sizes=(series.final().x,))
    cpp_total = sum(cpp.final().get(c) for c in cpp.columns)
    assert java_total == pytest.approx(5 * cpp_total, rel=0.15)
