"""Ablation — free-XOR garbling vs the 2004-era classic scheme.

The paper's Fairplay comparison reflects pre-free-XOR garbled circuits
(every gate gets a 4-row table).  Kolesnikov–Schneider (2008) made XOR
gates free; since the selected-sum circuit is ~40 % XOR (two per full
adder), the improvement is substantial but changes nothing about the
paper's conclusion: even optimized generic SMC is orders of magnitude
behind the homomorphic protocol at database scale.
"""

import pytest

from repro.circuits.builder import build_selected_sum_circuit
from repro.circuits.circuit import GateOp
from repro.crypto.rng import DeterministicRandom
from repro.experiments.series import ExperimentSeries
from repro.yao.protocol import YaoSelectedSum


def run_sweep(sizes=(10, 25, 50), value_bits=16):
    series = ExperimentSeries(
        experiment_id="ablation-free-xor",
        title="Yao baseline: classic vs free-XOR garbling",
        x_label="database size",
        unit="s",
        columns=["classic_garble", "freexor_garble", "bytes_ratio"],
        notes="free-XOR removes every XOR table (~40%% of the circuit)",
    )
    values_rng = DeterministicRandom("fx-bench")
    for n in sizes:
        values = [values_rng.randbits(value_bits) for _ in range(n)]
        bits = [values_rng.randbits(1) for _ in range(n)]
        expected = sum(v * s for v, s in zip(values, bits))

        classic = YaoSelectedSum(
            value_bits=value_bits, rng=DeterministicRandom("c%d" % n)
        ).run(values, bits)
        classic.verify(expected)
        free = YaoSelectedSum(
            value_bits=value_bits, rng=DeterministicRandom("f%d" % n),
            free_xor=True,
        ).run(values, bits)
        free.verify(expected)
        series.add(
            n,
            classic_garble=classic.garble_s,
            freexor_garble=free.garble_s,
            bytes_ratio=free.garbled_bytes / classic.garbled_bytes,
        )
    return series


def test_ablation_free_xor(benchmark, emit):
    series = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    emit(series)

    circuit = build_selected_sum_circuit(50, value_bits=16)
    xor_fraction = circuit.count_gates(GateOp.XOR) / circuit.gate_count
    print("XOR fraction of the selected-sum circuit: %.0f%%" % (100 * xor_fraction))

    for point in series.points:
        # Bytes drop by roughly the XOR fraction of the circuit.
        assert point.get("bytes_ratio") == pytest.approx(
            1 - xor_fraction, abs=0.08
        )
        # Garbling gets faster too (fewer SHA-256 calls).
        assert point.get("freexor_garble") < point.get("classic_garble")
