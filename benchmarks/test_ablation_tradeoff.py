"""Ablation — the §4 future-work privacy/performance tradeoff curve.

Decoy-padded candidate supersets: runtime scales with the revealed
superset size s, privacy (anonymity ratio m/s) degrades inversely.  The
curve interpolates between the non-private baseline (factor 1) and the
fully private protocol (superset = whole database).
"""

import pytest

from repro.experiments import figures


def test_ablation_tradeoff(benchmark, emit):
    series = benchmark.pedantic(
        lambda: figures.ablation_tradeoff(
            superset_factors=(1.0, 2.0, 4.0, 10.0, 100.0), n=100_000
        ),
        iterations=1,
        rounds=1,
    )
    emit(series, x_format="%.0f")

    makespans = series.column("makespan")
    assert makespans == sorted(makespans), "runtime grows with the superset"

    anonymity = series.column("anonymity_ratio")
    assert anonymity == sorted(anonymity, reverse=True), (
        "privacy degrades as the superset shrinks"
    )
    assert series.at(1.0).get("anonymity_ratio") == 1.0  # no privacy
    assert series.at(100.0).get("candidate_fraction") == pytest.approx(1.0), (
        "factor 100 at m=n/100 covers the whole database: full privacy"
    )

    # The payoff: a 10x superset runs ~10x faster than full coverage.
    speedup = series.at(100.0).get("makespan") / series.at(10.0).get("makespan")
    assert 7 < speedup < 13
