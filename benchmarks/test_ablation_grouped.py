"""Ablation — one-pass group-by (plaintext packing) vs g separate runs.

A g-group private group-by costs g full selected-sum passes done
naively; the packed protocol pays exactly one pass regardless of g (up
to the key's plaintext capacity).  This bench maps the win and the
capacity ceiling that ends it.
"""

import pytest

from repro.datastore.workload import WorkloadGenerator
from repro.exceptions import ProtocolError
from repro.experiments.environments import short_distance
from repro.experiments.series import ExperimentSeries
from repro.spfe.grouped import GroupedSumProtocol
from repro.spfe.selected_sum import SelectedSumProtocol


def run_sweep(n=50_000, group_counts=(1, 2, 4, 8)):
    generator = WorkloadGenerator("grouped-bench")
    database = generator.database(n)
    series = ExperimentSeries(
        experiment_id="ablation-grouped",
        title="Private group-by: packed single pass vs g naive passes (n=%d)" % n,
        x_label="groups",
        unit="min",
        columns=["packed_one_pass", "naive_g_passes", "speedup"],
        notes="packing bound: 512-bit keys fit ~9 groups of 32-bit sums here",
    )
    for g in group_counts:
        groups = [i % g if i % 3 else None for i in range(n)]
        packed = GroupedSumProtocol(
            short_distance.context(seed="packed%d" % g)
        ).run_grouped(database, groups, num_groups=g)

        naive_total = 0.0
        for j in range(g):
            selection = [1 if gr == j else 0 for gr in groups]
            naive_total += (
                SelectedSumProtocol(short_distance.context(seed="naive%d.%d" % (g, j)))
                .run(database, selection)
                .makespan_s
            )
        series.add(
            g,
            packed_one_pass=packed.run.makespan_s / 60,
            naive_g_passes=naive_total / 60,
            speedup=naive_total / packed.run.makespan_s,
        )
    return series


def test_ablation_grouped(benchmark, emit):
    series = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    emit(series, x_format="%d")

    for point in series.points:
        g = point.x
        assert point.get("speedup") == pytest.approx(g, rel=0.05), (
            "one pass replaces g passes"
        )
    # Packed cost is flat in g.
    packed = series.column("packed_one_pass")
    assert max(packed) / min(packed) < 1.02


def test_grouped_capacity_ceiling(benchmark):
    """The packing win ends where the key's plaintext space does."""

    def probe():
        generator = WorkloadGenerator("ceiling")
        database = generator.database(1000)
        fits = 0
        for g in range(1, 16):
            groups = [i % g for i in range(1000)]
            try:
                GroupedSumProtocol(
                    short_distance.context(seed="c%d" % g)
                ).run_grouped(database, groups, num_groups=g)
                fits = g
            except ProtocolError:
                break
        return fits

    fits = benchmark.pedantic(probe, iterations=1, rounds=1)
    # 512-bit keys, 32-bit values, 1000-row groups: ~12 groups fit
    # (each digit needs ~42 bits).
    print("\nmax groups packable under a 512-bit key here: %d" % fits)
    assert 8 <= fits <= 13
