"""Live microbenchmarks of the real cryptosystem.

These are genuine pytest-benchmark measurements of the pure-Python
Paillier implementation at the paper's 512-bit key size: the operations
whose 2004 costs the performance model encodes.  Absolute numbers
reflect this machine and CPython, not the paper's Pentium-III — what
must (and does) carry over is the *structure*: encryption and decryption
are the expensive operations, the server's fixed-exponent step is an
order of magnitude cheaper, and a ciphertext multiply is nearly free.
"""

import pytest

from repro.crypto.paillier import generate_keypair
from repro.crypto.rng import DeterministicRandom
from repro.timing.costmodel import Op, calibrate_profile

KEY_BITS = 512


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(KEY_BITS, "micro-bench")


@pytest.fixture(scope="module")
def rng():
    return DeterministicRandom("micro-rng")


def test_micro_encrypt(benchmark, keypair, rng):
    result = benchmark(lambda: keypair.public.encrypt_raw(12345, rng))
    assert keypair.private.raw_decrypt(result) == 12345


def test_micro_obfuscator_precompute(benchmark, keypair, rng):
    """The offline part of an encryption (r^n mod n^2) — §3.3's target."""
    benchmark(lambda: keypair.public.obfuscator(rng))


def test_micro_server_weighted_step(benchmark, keypair, rng):
    """The server's per-element op: a 32-bit exponentiation + multiply."""
    ct = keypair.public.encrypt_raw(1, rng)
    nsquare = keypair.public.nsquare

    def step():
        return pow(ct, 0xDEADBEEF, nsquare) * ct % nsquare

    benchmark(step)


def test_micro_ciphertext_multiply(benchmark, keypair, rng):
    a = keypair.public.encrypt_raw(1, rng)
    b = keypair.public.encrypt_raw(2, rng)
    nsquare = keypair.public.nsquare
    benchmark(lambda: a * b % nsquare)


def test_micro_decrypt(benchmark, keypair, rng):
    ct = keypair.public.encrypt_raw(98765, rng)
    result = benchmark(lambda: keypair.private.raw_decrypt(ct))
    assert result == 98765


def test_micro_keygen(benchmark):
    counter = iter(range(10_000))
    result = benchmark.pedantic(
        lambda: generate_keypair(KEY_BITS, next(counter)),
        iterations=1,
        rounds=3,
    )
    assert result.public.bits in (KEY_BITS - 1, KEY_BITS)


def test_cost_model_structure_matches_measurements(benchmark):
    """Calibrate a profile from live measurements and check that the
    op-cost *ordering* the 2004 model assumes holds on real hardware:
    encrypt ~ decrypt >> server step >> ciphertext multiply."""
    profile = benchmark.pedantic(
        lambda: calibrate_profile(key_bits=KEY_BITS, iterations=10),
        iterations=1,
        rounds=1,
    )
    encrypt = profile.cost(Op.ENCRYPT, KEY_BITS)
    decrypt = profile.cost(Op.DECRYPT, KEY_BITS)
    step = profile.cost(Op.WEIGHTED_STEP, KEY_BITS)
    multiply = profile.cost(Op.CIPHER_ADD, KEY_BITS)
    print(
        "\nlive 512-bit costs: encrypt=%.3fms decrypt=%.3fms "
        "server-step=%.3fms multiply=%.4fms"
        % (encrypt * 1e3, decrypt * 1e3, step * 1e3, multiply * 1e3)
    )
    assert 0.2 < encrypt / decrypt < 5.0
    assert encrypt > 4 * step
    assert step > 4 * multiply
