"""Ablation — number of cooperating clients (k) for §3.5.

The paper measures k = 3 and predicts "approximately a k-fold reduction
in execution time".  This sweep verifies the trend and exposes the
combining overhead that grows with k (the sequential ring of Figure 8).
"""

import pytest

from repro.experiments import figures


def test_ablation_clients(benchmark, emit):
    series = benchmark.pedantic(
        lambda: figures.ablation_clients(client_counts=(2, 3, 4, 6, 8)),
        iterations=1,
        rounds=1,
    )
    emit(series, x_format="%d")

    for point in series.points:
        k = point.x
        assert point.get("speedup") == pytest.approx(k, rel=0.1), (
            "paper: approximately a k-fold reduction"
        )

    # The ring combination cost grows with k.
    assert series.at(8).get("combine_overhead") > series.at(2).get(
        "combine_overhead"
    )
