"""Ablation — cryptosystem choice: Paillier vs exponential ElGamal.

Both schemes satisfy the homomorphic identities the protocol needs, but
exponential ElGamal stores the plaintext in an exponent and must solve a
discrete log to decrypt: O(sqrt(S)) group operations for a sum bounded
by S.  For the paper's 32-bit elements, sums reach ~2^49 at n = 100,000
— hopeless — which is why Paillier's full-range decryption is the
enabling choice.  This bench measures the real decryption-cost blowup
at growing sum bounds.
"""

import time

import pytest

from repro.crypto.elgamal import ExponentialElGamalScheme, generate_elgamal_keypair
from repro.crypto.paillier import generate_keypair
from repro.crypto.rng import DeterministicRandom
from repro.experiments.series import ExperimentSeries


def _measure_elgamal_decrypt(bound: int, keypair, rng) -> float:
    scheme = ExponentialElGamalScheme(max_plaintext=bound)
    ciphertext = scheme.encrypt(keypair.public, bound - 1, rng)
    private = keypair.private
    private._bsgs_table = None  # fresh table per bound: measure full cost
    started = time.perf_counter()
    value = scheme.decrypt(private, ciphertext)
    elapsed = time.perf_counter() - started
    assert value == bound - 1
    return elapsed


def test_ablation_scheme_decryption(benchmark, emit):
    rng = DeterministicRandom("scheme-ablation")
    elgamal_keypair = generate_elgamal_keypair(256, rng)
    paillier_keypair = generate_keypair(512, rng)

    def run():
        series = ExperimentSeries(
            experiment_id="ablation-scheme",
            title="Decryption cost vs sum bound: Paillier vs exp-ElGamal",
            x_label="sum bound (bits)",
            unit="ms",
            columns=["paillier_decrypt", "elgamal_decrypt"],
            notes="exp-ElGamal decryption is O(sqrt(bound)); Paillier is flat",
        )
        for bound_bits in (8, 12, 16, 20, 24, 28):
            bound = 1 << bound_bits
            elgamal_ms = 1e3 * _measure_elgamal_decrypt(
                bound, elgamal_keypair, rng
            )
            ciphertext = paillier_keypair.public.encrypt_raw(bound - 1, rng)
            started = time.perf_counter()
            assert paillier_keypair.private.raw_decrypt(ciphertext) == bound - 1
            paillier_ms = 1e3 * (time.perf_counter() - started)
            series.add(
                bound_bits,
                paillier_decrypt=paillier_ms,
                elgamal_decrypt=elgamal_ms,
            )
        return series

    series = benchmark.pedantic(run, iterations=1, rounds=1)
    emit(series)

    small = series.at(8)
    large = series.at(28)
    # ElGamal blows up with the bound; Paillier stays flat.
    assert large.get("elgamal_decrypt") > 20 * small.get("elgamal_decrypt")
    assert large.get("paillier_decrypt") < 10 * max(
        small.get("paillier_decrypt"), 0.1
    )
    # At a 28-bit bound ElGamal already loses to Paillier outright —
    # and the paper's sums reach ~2^49, another 2^10 of sqrt-cost away.
    assert large.get("elgamal_decrypt") > large.get("paillier_decrypt")
