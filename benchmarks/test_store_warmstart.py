"""Warm-restart benchmark: what does the durable store actually save?

The paper's §3.3 preprocessing (encryptions of zero, fixed-base
tables) is exactly the state a process loses when it dies.  With
``--state-dir`` the precomputation is journalled, so a restarted server
*restores* its pool instead of re-running the modular exponentiation.
This benchmark measures both paths at the paper's 512-bit key size —

* **cold**: build the fixed-base table and precompute the obfuscator
  pool from scratch;
* **warm**: restore the same pool (table rows + single-use encryptions
  of zero) from the SQLite store;

— plus the per-operation cost of the session-journal write that sits
on the server's per-chunk hot path, and writes the numbers to
``BENCH_store_warmstart.json`` at the repo root.

The only hard assertion is ``speedup >= 1``: restoring bytes must beat
re-deriving them cryptographically.  In practice the gap is orders of
magnitude; asserting the loose bound keeps slow CI runners green.
"""

import json
import time
from pathlib import Path

from repro.crypto.paillier import RandomnessPool, generate_keypair
from repro.crypto.rng import DeterministicRandom
from repro.obs.registry import MetricsRegistry
from repro.store.state import SessionRecord, StateStore

KEY_BITS = 512  # the paper's deployment size
POOL_SIZE = 128
JOURNAL_OPS = 500

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_store_warmstart.json"


def test_warm_restart_beats_cold_precomputation(tmp_path):
    keypair = generate_keypair(KEY_BITS, DeterministicRandom("warmstart"))
    public = keypair.public
    metrics = MetricsRegistry()

    with StateStore(str(tmp_path / "bench.sqlite"), metrics=metrics) as store:
        # -- cold: table build + pool precompute, from nothing ----------
        started = time.perf_counter()
        cold = RandomnessPool(
            public, rng=DeterministicRandom("cold"), fixed_base=True
        )
        cold.precompute(POOL_SIZE)
        cold_s = time.perf_counter() - started

        store.save_randomness_pool(cold)

        # -- warm: the same pool, restored from journalled bytes --------
        started = time.perf_counter()
        warm = store.load_randomness_pool(
            public, rng=DeterministicRandom("warm")
        )
        warm_s = time.perf_counter() - started
        assert warm.restored == POOL_SIZE
        assert warm.export_table() is not None

        # restored obfuscators are the real thing: encryptions of zero
        ciphertext = public.raw_encrypt(0, warm.take())
        assert keypair.private.raw_decrypt(ciphertext) == 0

        # -- the per-chunk journal write on the server's hot path -------
        record = SessionRecord(
            session_id=b"\x42" * 16,
            key_bits=KEY_BITS,
            chunk_size=64,
            public_n=public.n,
            aggregate=public.nsquare - 1,
            received=640,
            chunks_received=10,
            done=False,
        )
        started = time.perf_counter()
        for _ in range(JOURNAL_OPS):
            store.save_session(record)
        journal_write_us = (time.perf_counter() - started) * 1e6 / JOURNAL_OPS

        started = time.perf_counter()
        for _ in range(JOURNAL_OPS):
            store.load_session(record.session_id)
        journal_read_us = (time.perf_counter() - started) * 1e6 / JOURNAL_OPS

        counters = {
            snap.name: snap.value
            for snap in metrics.collect()
            if snap.kind == "counter"
        }

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    pool_lookups = counters.get("repro_store_pool_hits_total", 0) + counters.get(
        "repro_store_pool_misses_total", 0
    )
    results = {
        "key_bits": KEY_BITS,
        "pool_size": POOL_SIZE,
        "cold_precompute_s": cold_s,
        "warm_restore_s": warm_s,
        "speedup_warm_vs_cold": speedup,
        "obfuscators_restored": counters.get(
            "repro_store_pool_obfuscators_restored_total", 0
        ),
        "pool_hit_rate": (
            counters.get("repro_store_pool_hits_total", 0) / pool_lookups
            if pool_lookups
            else 0.0
        ),
        "table_hits": counters.get("repro_store_table_hits_total", 0),
        "journal_write_us": journal_write_us,
        "journal_read_us": journal_read_us,
        "journal_ops_per_measurement": JOURNAL_OPS,
    }
    RESULT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(
        "\nwarm restart: %.3fs cold vs %.4fs warm (%.0fx), "
        "journal write %.0f us/op\n"
        % (cold_s, warm_s, speedup, journal_write_us)
    )
    assert speedup >= 1.0, (
        "restoring the pool from the store was slower than re-deriving "
        "it: %r" % results
    )
    assert counters["repro_store_pool_hits_total"] == 1
