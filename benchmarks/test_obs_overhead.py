"""Hot-path cost of the observability instruments, in ns per operation.

The instruments in :mod:`repro.obs.registry` sit on the server's hot
paths — a counter bump per accounting event, a histogram observation
per engine batch and per phase span — so their cost must be known, not
guessed.  This benchmark measures the per-operation overhead of each
instrument (and of :meth:`ServerStats.add`, the server's view over
them) against a bare attribute increment, and writes the numbers to
``BENCH_obs_overhead.json`` at the repo root so future PRs can cite
the price of instrumenting a new path.

The only assertion is a very loose ceiling (each operation under
100 microseconds) — instruments are one lock acquisition plus constant
work, and this bound catches only pathological regressions (an O(n)
scan per bump, a lock convoy) without flaking on slow CI runners.
"""

import json
import time
from pathlib import Path

from repro.net.server import ServerStats
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer

OPS = 20_000
ROUNDS = 3  # best-of-N rejects scheduler noise
CEILING_NS = 100_000  # 100 us: pathology guard, not a performance target

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"


def ns_per_op(fn, ops=OPS, rounds=ROUNDS):
    """Best-of-``rounds`` nanoseconds per call of ``fn``."""
    best = None
    for _ in range(rounds):
        started = time.perf_counter()
        for _ in range(ops):
            fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best * 1e9 / ops


class _Bare:
    """Baseline: an unlocked attribute increment."""

    def __init__(self):
        self.value = 0

    def inc(self):
        self.value += 1


def test_instrument_overhead_is_bounded():
    registry = MetricsRegistry()
    counter = registry.counter("bench_total")
    gauge = registry.gauge("bench_gauge")
    histogram = registry.histogram("bench_seconds")
    labelled = registry.counter("bench_labelled_total", labels={"mode": "x"})
    stats = ServerStats(registry)
    attached = Tracer(registry=registry)
    detached = Tracer()
    bare = _Bare()

    results = {
        "bare_attribute_inc_ns": ns_per_op(bare.inc),
        "counter_inc_ns": ns_per_op(counter.inc),
        "labelled_counter_inc_ns": ns_per_op(labelled.inc),
        "gauge_set_ns": ns_per_op(lambda: gauge.set(7)),
        "histogram_observe_ns": ns_per_op(lambda: histogram.observe(0.02)),
        "server_stats_add_ns": ns_per_op(lambda: stats.add("bytes_in")),
        "tracer_record_detached_ns": ns_per_op(
            lambda: detached.record("fold", 0.01)
        ),
        "tracer_record_attached_ns": ns_per_op(
            lambda: attached.record("fold", 0.01)
        ),
        "ops_per_measurement": OPS,
    }
    RESULT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print("\n" + json.dumps(results, indent=2, sort_keys=True))

    for name, cost_ns in results.items():
        if not name.endswith("_ns"):
            continue
        assert cost_ns < CEILING_NS, (
            "%s costs %.0f ns/op (ceiling %d)" % (name, cost_ns, CEILING_NS)
        )
