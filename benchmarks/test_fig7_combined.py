"""Figure 7 — combined preprocessing + batching vs no optimizations.

Paper claim: combining the two optimizations cuts the overall online
runtime by ~94% (from ~20 minutes to ~a minute at n = 100,000).
"""

from repro.experiments import figures


def test_fig7_combined(benchmark, emit):
    series = benchmark.pedantic(figures.figure7, iterations=1, rounds=1)
    emit(series)

    for point in series.points:
        assert 90 < point.get("reduction_pct") < 96, (
            "paper: ~94%% reduction from the combination"
        )

    last = series.final()
    assert last.get("combined") < 2.0, (
        "paper: 'the running times are only a few minutes'"
    )
