"""In-text experiment A — the Java/C++ factor.

Paper (§3): "On average, the performance results from our Java
experiments were around five times slower than those of similar C++
experiments."
"""

import pytest

from repro.experiments import figures


def test_text_language_factor(benchmark, emit):
    series = benchmark.pedantic(
        figures.text_language_factor, iterations=1, rounds=1
    )
    emit(series)

    for point in series.points:
        assert point.get("compute_ratio") == pytest.approx(5.0, rel=0.02), (
            "paper: Java around five times slower than C++"
        )
        assert point.get("java") > 4 * point.get("cpp")
