"""Ablation — multiple distributed databases (the paper's §1 extension).

"This protocol ... can easily be extended to work for multiple
distributed databases."  We sweep the number of servers holding equal
horizontal partitions: the client's encryption is unchanged (it still
encrypts n index bits once), but the k server passes overlap, so the
server-bound part of the runtime divides by k — the mirror image of the
multi-client optimization, which divides the *client*-bound part.
"""

import pytest

from repro.datastore.database import ServerDatabase
from repro.datastore.workload import WorkloadGenerator
from repro.experiments.environments import short_distance
from repro.experiments.series import ExperimentSeries
from repro.spfe.multidatabase import DistributedSelectedSumProtocol
from repro.spfe.selected_sum import SelectedSumProtocol


def run_sweep(n=100_000, server_counts=(2, 4, 8)):
    generator = WorkloadGenerator("distributed-bench")
    combined = generator.database(n)
    selection = generator.random_selection(n, n // 100)
    expected = combined.select_sum(selection)

    series = ExperimentSeries(
        experiment_id="ablation-distributed",
        title="Distributed databases: k servers, equal partitions (n=%d)" % n,
        x_label="servers",
        unit="min",
        columns=["makespan", "server_compute_per_server", "encrypt"],
        notes="client encryption unchanged; server passes overlap",
    )
    single = SelectedSumProtocol(short_distance.context(seed="dd")).run(
        combined, selection
    )
    single.verify(expected)
    series.add(
        1,
        makespan=single.online_minutes(),
        server_compute_per_server=single.breakdown.server_compute_s / 60,
        encrypt=single.breakdown.client_encrypt_s / 60,
    )
    for k in server_counts:
        size = n // k
        partitions = [
            ServerDatabase(combined.values[i * size : (i + 1) * size])
            for i in range(k)
        ]
        result = DistributedSelectedSumProtocol(
            short_distance.context(seed="dd%d" % k), hide_partials=True
        ).run_distributed(partitions, selection)
        result.verify(expected)
        series.add(
            k,
            makespan=result.online_minutes(),
            server_compute_per_server=result.breakdown.server_compute_s / 60 / k,
            encrypt=result.breakdown.client_encrypt_s / 60,
        )
    return series


def test_ablation_distributed(benchmark, emit):
    series = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    emit(series, x_format="%d")

    base = series.at(1)
    for k in (2, 4, 8):
        point = series.at(k)
        # Client encryption is invariant in the number of servers.
        assert point.get("encrypt") == pytest.approx(base.get("encrypt"), rel=0.01)
        # Each server's share of the pass shrinks with k.
        assert point.get("server_compute_per_server") == pytest.approx(
            base.get("server_compute_per_server") / k, rel=0.05
        )
        # Encryption dominates on the cluster, so the end-to-end win is
        # modest — the point of this ablation is *where* the time goes.
        assert point.get("makespan") <= base.get("makespan")
