"""Figure 6 — components after preprocessing, long distance.

Paper claim: with client encryption off the online path and the 56 Kbps
modem in the loop, the communication delay becomes the significant
factor.
"""

from repro.experiments import figures


def test_fig6_preprocessing_long(benchmark, emit):
    series = benchmark.pedantic(figures.figure6, iterations=1, rounds=1)
    emit(series)

    for point in series.points:
        assert point.get("communication") > point.get("server_compute"), (
            "paper: communication dominates after preprocessing over the modem"
        )
        assert point.get("communication") > point.get("client_encrypt")
