"""Kernel benchmark suite: naive vs multiexp vs parallel aggregation.

Measures the two crypto kernels against the naive loops they replace and
writes the numbers to ``BENCH_kernels.json`` at the repo root:

* the server aggregate ``prod_i c_i^{w_i} mod n^2`` — naive per-element
  ``pow()``, the simultaneous-multiexp kernel, and the kernel fanned out
  through a :class:`~repro.crypto.engine.CryptoEngine` worker pool;
* the encryption obfuscator ``r^n mod n^2`` — full ``pow()`` vs the
  fixed-base windowed table.

The full run uses the paper's 512-bit keys with n=1000 ciphertexts and
asserts the multiexp kernel is at least 2x faster than the naive loop
(it measures ~5-8x).  Set ``REPRO_KERNEL_SMOKE=1`` for the CI smoke
variant: 256-bit keys and n=200, asserting only that multiexp does not
lose to naive.  Speedup assertions run *after* the JSON is written so a
regression still leaves the numbers on disk to inspect.

The parallel row is recorded but never asserted: on a single-core
runner the process pool only adds overhead, and the engine's
correctness (parallel == serial bit for bit) is covered by the unit
suite in ``tests/crypto/test_engine.py``.
"""

import json
import math
import os
import time
from pathlib import Path

from repro.crypto.engine import CryptoEngine
from repro.crypto.multiexp import FixedBaseTable, multi_exponent
from repro.crypto.paillier import generate_keypair
from repro.crypto.rng import DeterministicRandom

SMOKE = os.environ.get("REPRO_KERNEL_SMOKE", "") not in ("", "0")
KEY_BITS = 256 if SMOKE else 512
N = 200 if SMOKE else 1000
WEIGHT_BITS = 32
ROUNDS = 3  # best-of-3: minimum over rounds rejects scheduler noise
MIN_SPEEDUP = 1.0 if SMOKE else 2.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def best_of(fn, rounds=ROUNDS):
    """Minimum wall-clock seconds of ``fn`` over ``rounds`` runs."""
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def naive_weighted_product(ciphertexts, weights, modulus, n):
    acc = 1
    for ct, w in zip(ciphertexts, weights):
        acc = acc * pow(ct, w % n, modulus) % modulus
    return acc


def test_kernel_benchmarks():
    rng = DeterministicRandom("kernel-bench")
    keypair = generate_keypair(KEY_BITS, rng)
    public = keypair.public
    n, nsquare = public.n, public.nsquare

    # Random units of Z*_{n^2} stand in for ciphertexts: the kernels only
    # see opaque group elements, and this skips n full encryptions.
    ciphertexts = []
    while len(ciphertexts) < N:
        c = rng.randrange(1, nsquare)
        if math.gcd(c, n) == 1:
            ciphertexts.append(c)
    weights = [rng.randrange(0, 1 << WEIGHT_BITS) for _ in range(N)]

    # ---- server aggregate ------------------------------------------------
    naive_s, expected = best_of(
        lambda: naive_weighted_product(ciphertexts, weights, nsquare, n)
    )
    multiexp_s, multiexp_result = best_of(
        lambda: multi_exponent(
            ciphertexts, [w % n for w in weights], nsquare
        )
    )
    assert multiexp_result == expected

    with CryptoEngine(workers=2, chunk_size=max(32, N // 4)) as engine:
        parallel_s, parallel_result = best_of(
            lambda: engine.weighted_product(nsquare, n, ciphertexts, weights)
        )
        parallel_used_pool = engine.parallel_batches > 0
    assert parallel_result == expected

    # ---- fixed-base obfuscator -------------------------------------------
    fb_count = max(32, N // 8)
    h = rng.randrange(2, n)
    xs = [rng.randrange(1, 1 << public.bits) for _ in range(fb_count)]

    def pow_obfuscators():
        return [pow(pow(h, x, n), n, nsquare) for x in xs]

    pow_s, pow_result = best_of(pow_obfuscators)
    pow_per_op = pow_s / fb_count

    build_start = time.perf_counter()
    table = FixedBaseTable(pow(h, n, nsquare), nsquare, public.bits)
    table_build_s = time.perf_counter() - build_start

    table_s, table_result = best_of(lambda: [table.pow(x) for x in xs])
    table_per_op = table_s / fb_count
    assert table_result == pow_result  # (h^x mod n)^n == (h^n)^x mod n^2

    report = {
        "suite": "benchmarks/test_kernels.py",
        "smoke": SMOKE,
        "params": {
            "key_bits": KEY_BITS,
            "n": N,
            "weight_bits": WEIGHT_BITS,
            "rounds": ROUNDS,
            "fixed_base_ops": fb_count,
        },
        "weighted_product": {
            "naive_s": naive_s,
            "multiexp_s": multiexp_s,
            "parallel_workers2_s": parallel_s,
            "parallel_used_pool": parallel_used_pool,
            "speedup_multiexp_vs_naive": naive_s / multiexp_s,
            "speedup_parallel_vs_naive": naive_s / parallel_s,
        },
        "fixed_base_obfuscator": {
            "pow_per_op_s": pow_per_op,
            "table_per_op_s": table_per_op,
            "table_build_s": table_build_s,
            "speedup_table_vs_pow": pow_per_op / table_per_op,
            "build_amortised_after_ops": (
                table_build_s / max(pow_per_op - table_per_op, 1e-12)
            ),
        },
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print("\nkernel bench (%d-bit, n=%d): naive=%.3fs multiexp=%.3fs (%.2fx) "
          "parallel=%.3fs; fixed-base %.2fx per op"
          % (KEY_BITS, N, naive_s, multiexp_s, naive_s / multiexp_s,
             parallel_s, pow_per_op / table_per_op))

    assert naive_s / multiexp_s >= MIN_SPEEDUP, (
        "multiexp kernel regressed: %.2fx vs required %.1fx (see %s)"
        % (naive_s / multiexp_s, MIN_SPEEDUP, RESULT_PATH)
    )
    assert pow_per_op / table_per_op >= MIN_SPEEDUP, (
        "fixed-base table regressed: %.2fx vs required %.1fx"
        % (pow_per_op / table_per_op, MIN_SPEEDUP)
    )
