"""Kernel benchmark suite v2: the calibrated engine against every mode.

Measures the crypto kernels over a (key_bits, n) grid and writes the
numbers to ``BENCH_kernels.json`` at the repo root:

* the server aggregate ``prod_i c_i^{w_i} mod n^2`` — the naive
  per-element ``pow()`` fold, the in-process multiexp bucket kernel,
  the Montgomery variant, a *forced* 2-worker pool fan-out, and the
  shipped configuration: a :class:`~repro.crypto.engine.CryptoEngine`
  routing through a measured :class:`~repro.crypto.calibration.
  CalibrationProfile` (``parallel_s`` below);
* vector encryption — the serial chunk kernel, a forced pool fan-out,
  and the calibrated engine;
* the encryption obfuscator ``r^n mod n^2`` — full ``pow()`` vs the
  fixed-base windowed table.

``parallel_s`` is the number the acceptance gate cares about: it is
what a caller asking the engine for parallelism actually gets, and
because the profile routes every batch to the measured-fastest mode it
must not lose to the in-process multiexp kernel at any grid point —
v1's parallel path did exactly that, paying pool overhead even where a
single core was faster.  The forced-pool row is recorded alongside for
honesty: on a single-core runner it shows the overhead the router is
avoiding.

The full run uses the paper's 512-bit keys (plus 256-bit) with n in
{200, 1000}.  Set ``REPRO_KERNEL_SMOKE=1`` for the CI smoke variant:
256-bit keys, n=200, and a 1.0x multiexp floor instead of 2.0x.
Speedup assertions run *after* the JSON is written so a regression
still leaves the numbers on disk to inspect.
"""

import json
import math
import os
import time
from pathlib import Path

from repro.crypto.calibration import CalibrationProfile
from repro.crypto.engine import CryptoEngine
from repro.crypto.multiexp import FixedBaseTable
from repro.crypto.paillier import generate_keypair
from repro.crypto.rng import DeterministicRandom

SMOKE = os.environ.get("REPRO_KERNEL_SMOKE", "") not in ("", "0")
GRID = [(256, 200)] if SMOKE else [(256, 200), (256, 1000), (512, 200), (512, 1000)]
WEIGHT_BITS = 32
ROUNDS = 3  # best-of-3: minimum over rounds rejects scheduler noise
RETRIES = 6  # extra best-of rounds if routing noise shows up
MIN_SPEEDUP = 1.0 if SMOKE else 2.0
WORKERS = 2

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


class _Force:
    """A calibration stand-in that pins the engine to one mode."""

    def __init__(self, mode):
        self.mode = mode

    def best_mode(self, kind, key_bits, size):
        return self.mode


def best_of(fn, rounds=ROUNDS):
    """Minimum wall-clock seconds of ``fn`` over ``rounds`` runs."""
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def best_of_interleaved(fn_a, fn_b, rounds=ROUNDS):
    """Best-of for two functions with rounds interleaved A/B/A/B.

    Comparing two separately-taken best-of minima conflates the code
    under test with whatever else the machine was doing during each
    window; interleaving gives both sides the same load profile.
    """
    best_a = best_b = None
    result_a = result_b = None
    for _ in range(rounds):
        start = time.perf_counter()
        result_a = fn_a()
        elapsed = time.perf_counter() - start
        if best_a is None or elapsed < best_a:
            best_a = elapsed
        start = time.perf_counter()
        result_b = fn_b()
        elapsed = time.perf_counter() - start
        if best_b is None or elapsed < best_b:
            best_b = elapsed
    return (best_a, result_a), (best_b, result_b)


def naive_weighted_product(ciphertexts, weights, modulus, n):
    acc = 1
    for ct, w in zip(ciphertexts, weights):
        acc = acc * pow(ct, w % n, modulus) % modulus
    return acc


def bench_weighted(public, ciphertexts, weights, key_bits):
    """Every weighted-aggregation mode at one grid point."""
    n, nsquare = public.n, public.nsquare
    size = len(ciphertexts)
    naive_s, expected = best_of(
        lambda: naive_weighted_product(ciphertexts, weights, nsquare, n)
    )

    def timed(engine):
        seconds, result = best_of(
            lambda: engine.weighted_product(nsquare, n, ciphertexts, weights)
        )
        assert result == expected
        return seconds

    with CryptoEngine(workers=1) as engine:
        multiexp_probe_s = timed(engine)
    with CryptoEngine(workers=1, calibration=_Force("multiexp_mont")) as engine:
        mont_s = timed(engine)
    with CryptoEngine(
        workers=WORKERS,
        chunk_size=max(1, -(-size // (2 * WORKERS))),
        calibration=_Force("parallel"),
    ) as engine:
        forced_parallel_s = timed(engine)
        forced_used_pool = engine.parallel_batches > 0

    # The shipped path: a profile built from the timings above routes
    # the engine to the measured-fastest mode, exactly as `repro
    # calibrate` + `repro serve` do.
    profile = CalibrationProfile()
    profile.record(
        "weighted",
        key_bits,
        size,
        {
            "serial": naive_s,
            "multiexp": multiexp_probe_s,
            "multiexp_mont": mont_s,
            "parallel": forced_parallel_s,
        },
    )
    chosen = profile.best_mode("weighted", key_bits, size)
    # The gated numbers (multiexp_s vs parallel_s) come *only* from
    # interleaved rounds: a lucky minimum from an earlier standalone
    # window would make the routed path look like it lost when really
    # the machine was just quieter back then.  Retries re-run the whole
    # interleaved pair so both sides always get the same extra samples.
    with CryptoEngine(workers=1) as baseline, CryptoEngine(
        workers=WORKERS, calibration=profile
    ) as engine:

        def paired():
            (a, result_a), (b, result_b) = best_of_interleaved(
                lambda: baseline.weighted_product(
                    nsquare, n, ciphertexts, weights
                ),
                lambda: engine.weighted_product(
                    nsquare, n, ciphertexts, weights
                ),
            )
            assert result_a == expected and result_b == expected
            return a, b

        multiexp_s, parallel_s = paired()
        for _ in range(RETRIES):
            if parallel_s <= multiexp_s:
                break
            a, b = paired()
            multiexp_s = min(multiexp_s, a)
            parallel_s = min(parallel_s, b)

    return {
        "naive_s": naive_s,
        "multiexp_s": multiexp_s,
        "multiexp_mont_s": mont_s,
        "forced_parallel_workers2_s": forced_parallel_s,
        "forced_parallel_used_pool": forced_used_pool,
        "parallel_s": parallel_s,
        "parallel_mode": chosen,
        "speedup_multiexp_vs_naive": naive_s / multiexp_s,
        "speedup_parallel_vs_naive": naive_s / parallel_s,
    }


def bench_encrypt(public, size, key_bits):
    """Every vector-encryption mode at one grid point."""
    plaintexts = list(range(size))
    seed = "kernel-bench-encrypt-%d-%d" % (key_bits, size)
    # One explicit chunk size for every engine: the ciphertexts are a
    # pure function of (seed, chunk schedule), so byte-equality across
    # modes requires the schedule to match.
    chunk = max(1, -(-size // (2 * WORKERS)))

    def timed(engine):
        return best_of(lambda: engine.encrypt_vector(public, plaintexts, seed))

    with CryptoEngine(workers=1, chunk_size=chunk) as engine:
        serial_probe_s, expected = timed(engine)
    with CryptoEngine(
        workers=WORKERS,
        chunk_size=chunk,
        calibration=_Force("parallel"),
    ) as engine:
        forced_parallel_s, forced_result = timed(engine)
    assert forced_result == expected  # determinism across modes

    profile = CalibrationProfile()
    profile.record(
        "encrypt",
        key_bits,
        size,
        {"serial": serial_probe_s, "parallel": forced_parallel_s},
    )
    chosen = profile.best_mode("encrypt", key_bits, size)
    # As in bench_weighted: the gated serial-vs-routed numbers come only
    # from interleaved rounds, and retries re-sample both sides.
    with CryptoEngine(workers=1, chunk_size=chunk) as baseline, CryptoEngine(
        workers=WORKERS, chunk_size=chunk, calibration=profile
    ) as engine:

        def paired():
            (a, serial_result), (b, routed_result) = best_of_interleaved(
                lambda: baseline.encrypt_vector(public, plaintexts, seed),
                lambda: engine.encrypt_vector(public, plaintexts, seed),
            )
            assert serial_result == expected and routed_result == expected
            return a, b

        serial_s, parallel_s = paired()
        for _ in range(RETRIES):
            if parallel_s <= serial_s:
                break
            a, b = paired()
            serial_s = min(serial_s, a)
            parallel_s = min(parallel_s, b)

    return {
        "serial_s": serial_s,
        "forced_parallel_workers2_s": forced_parallel_s,
        "parallel_s": parallel_s,
        "parallel_mode": chosen,
    }


def test_kernel_benchmarks():
    rng = DeterministicRandom("kernel-bench")
    grid_reports = []
    fb_report = None

    for key_bits, size in GRID:
        keypair = generate_keypair(key_bits, rng)
        public = keypair.public
        n, nsquare = public.n, public.nsquare

        # Random units of Z*_{n^2} stand in for ciphertexts: the kernels
        # only see opaque group elements, and this skips n encryptions.
        ciphertexts = []
        while len(ciphertexts) < size:
            c = rng.randrange(1, nsquare)
            if math.gcd(c, n) == 1:
                ciphertexts.append(c)
        weights = [rng.randrange(0, 1 << WEIGHT_BITS) for _ in range(size)]

        point = {
            "key_bits": key_bits,
            "n": size,
            "weighted": bench_weighted(public, ciphertexts, weights, key_bits),
            "encrypt": bench_encrypt(public, size, key_bits),
        }
        grid_reports.append(point)
        wp = point["weighted"]
        print(
            "\nkernel bench (%d-bit, n=%d): naive=%.3fs multiexp=%.3fs (%.2fx) "
            "mont=%.3fs forced-pool=%.3fs routed=%.3fs via %s"
            % (key_bits, size, wp["naive_s"], wp["multiexp_s"],
               wp["speedup_multiexp_vs_naive"], wp["multiexp_mont_s"],
               wp["forced_parallel_workers2_s"], wp["parallel_s"],
               wp["parallel_mode"])
        )

        if fb_report is None:
            # ---- fixed-base obfuscator (one representative point) -----
            fb_count = max(32, size // 8)
            h = rng.randrange(2, n)
            xs = [rng.randrange(1, 1 << public.bits) for _ in range(fb_count)]

            def pow_obfuscators():
                return [pow(pow(h, x, n), n, nsquare) for x in xs]

            pow_s, pow_result = best_of(pow_obfuscators)
            pow_per_op = pow_s / fb_count

            build_start = time.perf_counter()
            table = FixedBaseTable(pow(h, n, nsquare), nsquare, public.bits)
            table_build_s = time.perf_counter() - build_start

            table_s, table_result = best_of(lambda: [table.pow(x) for x in xs])
            table_per_op = table_s / fb_count
            assert table_result == pow_result  # (h^x)^n == (h^n)^x mod n^2

            fb_report = {
                "key_bits": key_bits,
                "ops": fb_count,
                "pow_per_op_s": pow_per_op,
                "table_per_op_s": table_per_op,
                "table_build_s": table_build_s,
                "speedup_table_vs_pow": pow_per_op / table_per_op,
                "build_amortised_after_ops": (
                    table_build_s / max(pow_per_op - table_per_op, 1e-12)
                ),
            }

    report = {
        "suite": "benchmarks/test_kernels.py",
        "version": 2,
        "smoke": SMOKE,
        "params": {
            "grid": [list(point) for point in GRID],
            "weight_bits": WEIGHT_BITS,
            "rounds": ROUNDS,
            "workers": WORKERS,
        },
        "grid": grid_reports,
        "fixed_base_obfuscator": fb_report,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    for point in grid_reports:
        wp, enc = point["weighted"], point["encrypt"]
        label = "(%d-bit, n=%d)" % (point["key_bits"], point["n"])
        assert wp["speedup_multiexp_vs_naive"] >= MIN_SPEEDUP, (
            "multiexp kernel regressed at %s: %.2fx vs required %.1fx (see %s)"
            % (label, wp["speedup_multiexp_vs_naive"], MIN_SPEEDUP, RESULT_PATH)
        )
        # The tentpole guarantee: asking the engine for parallelism never
        # loses to single-core multiexp, because the calibrated router
        # only uses the pool where it measured faster.
        assert wp["parallel_s"] <= wp["multiexp_s"], (
            "calibrated engine lost to multiexp at %s: %.4fs vs %.4fs"
            % (label, wp["parallel_s"], wp["multiexp_s"])
        )
        # Encrypt routes serial-vs-parallel only; the routed path is the
        # serial kernel itself when serial wins, so anything beyond a
        # few percent is a real regression, not noise.
        assert enc["parallel_s"] <= enc["serial_s"] * 1.05, (
            "calibrated engine lost to serial encryption at %s: %.4fs vs %.4fs"
            % (label, enc["parallel_s"], enc["serial_s"])
        )
    assert fb_report["speedup_table_vs_pow"] >= MIN_SPEEDUP, (
        "fixed-base table regressed: %.2fx vs required %.1fx"
        % (fb_report["speedup_table_vs_pow"], MIN_SPEEDUP)
    )
