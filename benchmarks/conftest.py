"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper (or an
ablation).  The rendered table is printed (visible with ``pytest -s``)
and written under ``results/`` so a full run leaves the complete set of
reproduced figures on disk.

Set ``REPRO_QUICK=1`` to sweep 4 database sizes instead of the paper's
10 — the shapes are identical, the run is ~3x faster.
"""

import pytest

from repro.experiments.series import ExperimentSeries
from repro.experiments.tables import render_table, write_result_file


@pytest.fixture()
def emit():
    """Render, print, and persist an experiment series."""

    def _emit(series: ExperimentSeries, x_format: str = "%d") -> str:
        text = render_table(series, x_format=x_format)
        print("\n" + text + "\n")
        write_result_file(text, series.experiment_id + ".txt")
        return text

    return _emit
