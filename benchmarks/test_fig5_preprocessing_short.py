"""Figure 5 — components after preprocessing the index vector, short
distance.

Paper claim: with the encryptions precomputed offline, the client's
online processing collapses to reading and sending stored ciphertexts;
the server's computation becomes the dominant factor; the online
runtime drops ~82% versus the unoptimized Figure 2.
"""

from repro.experiments import figures


def test_fig5_preprocessing_short(benchmark, emit):
    series = benchmark.pedantic(figures.figure5, iterations=1, rounds=1)
    emit(series)

    for point in series.points:
        assert point.get("server_compute") > point.get("client_encrypt"), (
            "paper: the server's computation time becomes the dominant factor"
        )
        assert point.get("server_compute") > point.get("communication")

    # Reduction vs the unoptimized protocol at the same largest size.
    fig2 = figures.figure2(sizes=(series.final().x,))
    before = sum(fig2.final().get(c) for c in fig2.columns)
    after = sum(series.final().get(c) for c in series.columns)
    reduction = 100 * (1 - after / before)
    print("online reduction vs figure 2: %.1f%% (paper: ~82%%)" % reduction)
    assert 75 < reduction < 92
