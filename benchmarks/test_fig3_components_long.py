"""Figure 3 — runtime components, no optimizations, long distance.

Paper claim: over the 56 Kbps modem (Chicago client on a 500 MHz
UltraSparc, Hoboken server on a 1 GHz Pentium), communication becomes a
substantial component, but computation still dominates the runtime.
"""

from repro.experiments import figures


def test_fig3_components_long(benchmark, emit):
    series = benchmark.pedantic(figures.figure3, iterations=1, rounds=1)
    emit(series)

    for point in series.points:
        assert point.get("client_encrypt") > point.get("communication"), (
            "paper: computation still prevails despite the modem"
        )
        assert point.get("communication") > point.get("server_compute"), (
            "paper: the modem makes communication the second-largest share"
        )

    last = series.final()
    assert last.get("communication") > 25, (
        "13.6 MB over 56 Kbps is tens of minutes"
    )
