"""Figure 4 — overall runtime with and without batching, short distance.

Paper claim: batching the index vector in chunks of 100, with the three
activities pipelined, cuts ~10% of the overall runtime.
"""

from repro.experiments import figures


def test_fig4_batching(benchmark, emit):
    series = benchmark.pedantic(figures.figure4, iterations=1, rounds=1)
    emit(series)

    for point in series.points:
        assert point.get("with_batching") < point.get("without_batching")
        assert 7 < point.get("reduction_pct") < 13, (
            "paper: approximately a 10%% reduction"
        )
