"""Edge-case coverage sweep for small surfaces not owned by other suites."""

import io

import pytest

from repro.cli import main
from repro.experiments.series import ExperimentSeries
from repro.experiments.tables import render_chart, render_table
from repro.net.codec import Frame, FrameType
from repro.spfe.base import SelectedSumBase


class TestCliDemo:
    def test_demo_runs_end_to_end(self):
        out = io.StringIO()
        assert main(["demo"], out=out) == 0
        text = out.getvalue()
        assert "sum = 55" in text
        assert "paper: ~20" in text


class TestRenderingEdges:
    def test_chart_with_all_zero_values(self):
        series = ExperimentSeries("z", "zeros", "n", "min", ["v"])
        series.add(1, v=0.0)
        series.add(2, v=0.0)
        text = render_chart(series, "v")
        assert "#" not in text  # no bars, no division by zero

    def test_table_with_no_points(self):
        series = ExperimentSeries("empty", "no data yet", "n", "min", ["v"])
        text = render_table(series)
        assert "empty" in text

    def test_value_formatting_ranges(self):
        series = ExperimentSeries("fmt", "formats", "n", "u", ["v"])
        series.add(1, v=0.0)
        series.add(2, v=0.1234)
        series.add(3, v=12.3)
        series.add(4, v=9999.0)
        text = render_table(series)
        assert "0.1234" in text
        assert "12.30" in text
        assert "9999" in text


class TestFrameProperties:
    def test_wire_bytes_includes_header(self):
        frame = Frame(FrameType.ERROR, b"12345")
        assert frame.wire_bytes == 8 + 5


class TestAbstractBase:
    def test_base_run_is_abstract(self):
        from repro.datastore.database import ServerDatabase

        with pytest.raises(NotImplementedError):
            SelectedSumBase().run(ServerDatabase([1]), [1])

    def test_scheme_interface_is_abstract(self):
        from repro.crypto.scheme import AdditiveHomomorphicScheme

        scheme = AdditiveHomomorphicScheme()
        for method, args in (
            ("generate", (128,)),
            ("plaintext_modulus", (None,)),
            ("ciphertext_size_bytes", (None,)),
            ("encrypt", (None, 1)),
            ("decrypt", (None, 1)),
            ("ciphertext_add", (None, 1, 2)),
            ("ciphertext_scale", (None, 1, 2)),
            ("identity", (None,)),
            ("rerandomize", (None, 1)),
        ):
            with pytest.raises(NotImplementedError):
                getattr(scheme, method)(*args)


class TestKeyPairContainer:
    def test_unpacking_and_repr(self):
        from repro.crypto.scheme import SchemeKeyPair

        pair = SchemeKeyPair("pub", "priv")
        public, private = pair
        assert (public, private) == ("pub", "priv")
        assert "pub" in repr(pair)


class TestExceptionHierarchy:
    def test_all_errors_are_repro_errors(self):
        import inspect

        from repro import exceptions

        roots = 0
        for name, obj in vars(exceptions).items():
            if inspect.isclass(obj) and issubclass(obj, Exception):
                if obj is exceptions.ReproError:
                    roots += 1
                    continue
                assert issubclass(obj, exceptions.ReproError), name
        assert roots == 1
