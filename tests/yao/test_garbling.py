"""Tests for the garbling scheme: garbled evaluation == plaintext evaluation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.builder import EVALUATOR, GARBLER, CircuitBuilder, build_selected_sum_circuit
from repro.circuits.circuit import Circuit, GateOp
from repro.crypto.rng import DeterministicRandom
from repro.exceptions import GarblingError
from repro.yao.garbling import WireLabel, evaluate_garbled, garble


def garbled_eval(circuit, assignments, seed="g"):
    """Garble and evaluate with the active labels for ``assignments``."""
    garbled = garble(circuit, DeterministicRandom(seed))
    labels = {
        wire: garbled.active_label(wire, bit) for wire, bit in assignments.items()
    }
    return evaluate_garbled(garbled, labels)


class TestSingleGates:
    @pytest.mark.parametrize("op", [GateOp.XOR, GateOp.AND, GateOp.OR])
    def test_binary_gate_all_inputs(self, op):
        for bit_a in (0, 1):
            for bit_b in (0, 1):
                circuit = Circuit()
                a, b = circuit.new_input(GARBLER), circuit.new_input(EVALUATOR)
                circuit.mark_outputs([circuit.add_gate(op, a, b)])
                got = garbled_eval(circuit, {a: bit_a, b: bit_b})
                assert got == circuit.evaluate({a: bit_a, b: bit_b})

    def test_not_gate(self):
        for bit in (0, 1):
            circuit = Circuit()
            a = circuit.new_input(GARBLER)
            circuit.mark_outputs([circuit.add_gate(GateOp.NOT, a)])
            assert garbled_eval(circuit, {a: bit}) == [1 - bit]

    def test_chained_not_gates(self):
        circuit = Circuit()
        a = circuit.new_input(GARBLER)
        w = a
        for _ in range(5):
            w = circuit.add_gate(GateOp.NOT, w)
        circuit.mark_outputs([w])
        assert garbled_eval(circuit, {a: 1}) == [0]

    def test_constant_wires(self):
        circuit = Circuit()
        a = circuit.new_input(GARBLER)
        out = circuit.add_gate(GateOp.AND, a, Circuit.CONST_ONE)
        circuit.mark_outputs([out, Circuit.CONST_ZERO])
        assert garbled_eval(circuit, {a: 1}) == [1, 0]


class TestSecurityShape:
    def test_wrong_label_fails_authentication(self):
        circuit = Circuit()
        a, b = circuit.new_input(GARBLER), circuit.new_input(EVALUATOR)
        circuit.mark_outputs([circuit.add_gate(GateOp.AND, a, b)])
        garbled = garble(circuit, DeterministicRandom("sec"))
        bogus = WireLabel(b"\x42" * 16, 0)
        with pytest.raises(GarblingError):
            evaluate_garbled(
                garbled, {a: bogus, b: garbled.active_label(b, 1)}
            )

    def test_missing_label_rejected(self):
        circuit = Circuit()
        a, b = circuit.new_input(GARBLER), circuit.new_input(EVALUATOR)
        circuit.mark_outputs([circuit.add_gate(GateOp.AND, a, b)])
        garbled = garble(circuit, DeterministicRandom("sec2"))
        with pytest.raises(GarblingError):
            evaluate_garbled(garbled, {a: garbled.active_label(a, 0)})

    def test_labels_distinct_per_wire(self):
        circuit = build_selected_sum_circuit(3, value_bits=4)
        garbled = garble(circuit, DeterministicRandom("distinct"))
        for zero, one in garbled.wire_labels.values():
            assert zero.key != one.key
            assert zero.permute != one.permute

    def test_size_accounting(self):
        circuit = build_selected_sum_circuit(3, value_bits=4)
        garbled = garble(circuit, DeterministicRandom("size"))
        non_free = circuit.gate_count - circuit.count_gates(GateOp.NOT)
        assert garbled.size_bytes() >= non_free * 4 * 32

    def test_label_validation(self):
        with pytest.raises(GarblingError):
            WireLabel(b"short", 0)
        with pytest.raises(GarblingError):
            WireLabel(b"\x00" * 16, 2)


class TestAgainstPlaintextEvaluation:
    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_adder_circuits(self, data):
        x = data.draw(st.integers(0, 63))
        y = data.draw(st.integers(0, 63))
        builder = CircuitBuilder()
        a = builder.input_number(GARBLER, 7)
        b = builder.input_number(EVALUATOR, 7)
        circuit = builder.outputs(builder.ripple_add(a, b))
        assignments = {}
        for i, wire in enumerate(a):
            assignments[wire] = (x >> i) & 1
        for i, wire in enumerate(b):
            assignments[wire] = (y >> i) & 1
        bits = garbled_eval(circuit, assignments, seed=str((x, y)))
        assert sum(bit << i for i, bit in enumerate(bits)) == x + y

    @settings(max_examples=10, deadline=None)
    @given(st.data())
    def test_selected_sum_circuits(self, data):
        n = data.draw(st.integers(1, 5))
        values = data.draw(st.lists(st.integers(0, 15), min_size=n, max_size=n))
        bits = data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
        circuit = build_selected_sum_circuit(n, value_bits=4)
        assignments = {}
        for wire, bit in zip(circuit.inputs_of(EVALUATOR), bits):
            assignments[wire] = bit
        garbler_wires = circuit.inputs_of(GARBLER)
        for i, value in enumerate(values):
            for b in range(4):
                assignments[garbler_wires[i * 4 + b]] = (value >> b) & 1
        out = garbled_eval(circuit, assignments, seed=str((values, bits)))
        got = sum(bit << i for i, bit in enumerate(out))
        assert got == sum(v * s for v, s in zip(values, bits))


class TestFreeXor:
    """The free-XOR optimization: same outputs, fewer tables."""

    @pytest.mark.parametrize("op", [GateOp.XOR, GateOp.AND, GateOp.OR])
    def test_gates_still_correct(self, op):
        for bit_a in (0, 1):
            for bit_b in (0, 1):
                circuit = Circuit()
                a, b = circuit.new_input(GARBLER), circuit.new_input(EVALUATOR)
                circuit.mark_outputs([circuit.add_gate(op, a, b)])
                garbled = garble(
                    circuit, DeterministicRandom("fx"), free_xor=True
                )
                labels = {
                    a: garbled.active_label(a, bit_a),
                    b: garbled.active_label(b, bit_b),
                }
                assert evaluate_garbled(garbled, labels) == [
                    op.evaluate(bit_a, bit_b)
                ]

    def test_xor_gates_have_no_tables(self):
        circuit = build_selected_sum_circuit(4, value_bits=6)
        classic = garble(circuit, DeterministicRandom("c"))
        free = garble(circuit, DeterministicRandom("f"), free_xor=True)
        xor_count = circuit.count_gates(GateOp.XOR)
        assert len(free.gates) == len(classic.gates) - xor_count
        assert free.size_bytes() < classic.size_bytes()

    def test_global_offset_invariant(self):
        """Every wire-label pair differs by the same Δ."""
        circuit = build_selected_sum_circuit(3, value_bits=4)
        garbled = garble(circuit, DeterministicRandom("delta"), free_xor=True)
        offsets = {
            bytes(x ^ y for x, y in zip(zero.key, one.key))
            for zero, one in garbled.wire_labels.values()
        }
        assert len(offsets) == 1

    @settings(max_examples=10, deadline=None)
    @given(st.data())
    def test_selected_sum_matches_classic(self, data):
        n = data.draw(st.integers(1, 5))
        values = data.draw(st.lists(st.integers(0, 15), min_size=n, max_size=n))
        bits = data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
        circuit = build_selected_sum_circuit(n, value_bits=4)
        assignments = {}
        for wire, bit in zip(circuit.inputs_of(EVALUATOR), bits):
            assignments[wire] = bit
        garbler_wires = circuit.inputs_of(GARBLER)
        for i, value in enumerate(values):
            for b in range(4):
                assignments[garbler_wires[i * 4 + b]] = (value >> b) & 1

        def run(free_xor):
            garbled = garble(
                circuit, DeterministicRandom(repr((values, bits))),
                free_xor=free_xor,
            )
            labels = {
                w: garbled.active_label(w, bit)
                for w, bit in assignments.items()
            }
            out = evaluate_garbled(garbled, labels)
            return sum(bit << i for i, bit in enumerate(out))

        expected = sum(v * s for v, s in zip(values, bits))
        assert run(False) == run(True) == expected

    def test_end_to_end_protocol_with_free_xor(self):
        from repro.yao.protocol import YaoSelectedSum

        runner = YaoSelectedSum(
            value_bits=8, ot_key_bits=192,
            rng=DeterministicRandom("fx-proto"), free_xor=True,
        )
        result = runner.run([10, 20, 30], [1, 0, 1])
        assert result.value == 40

    def test_free_xor_shrinks_protocol_bytes(self):
        from repro.yao.protocol import YaoSelectedSum

        def run(free_xor):
            return YaoSelectedSum(
                value_bits=8, ot_key_bits=192,
                rng=DeterministicRandom("size"), free_xor=free_xor,
            ).run([9] * 6, [1, 0, 1, 1, 0, 1])

        classic = run(False)
        free = run(True)
        assert free.value == classic.value
        assert free.garbled_bytes < 0.8 * classic.garbled_bytes
