"""Tests for the end-to-end Yao selected-sum protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.rng import DeterministicRandom
from repro.exceptions import OTError, ParameterError
from repro.yao.protocol import (
    BatchOT,
    YaoSelectedSum,
    fairplay_model_minutes,
)


class TestBatchOT:
    def test_batch_correctness(self):
        pairs = [(10, 20), (30, 40), (50, 60)]
        batch = BatchOT(pairs, key_bits=128, rng=DeterministicRandom("b"))
        assert batch.transfer([0, 1, 0]) == [10, 40, 50]

    def test_choice_count_validated(self):
        batch = BatchOT([(1, 2)], key_bits=128, rng=DeterministicRandom("b"))
        with pytest.raises(OTError):
            batch.transfer([0, 1])

    def test_non_bit_choice(self):
        batch = BatchOT([(1, 2)], key_bits=128, rng=DeterministicRandom("b"))
        with pytest.raises(OTError):
            batch.transfer([2])

    def test_message_range_validated(self):
        with pytest.raises(OTError):
            BatchOT([(2**200, 0)], key_bits=128, rng=DeterministicRandom("b"))

    def test_bytes_accounting(self):
        batch = BatchOT([(1, 2)] * 10, key_bits=128, rng=DeterministicRandom("b"))
        assert batch.bytes_moved() == 16 + 10 * 5 * 16


class TestFairplayModel:
    def test_quoted_point(self):
        assert fairplay_model_minutes(100) == 15.0

    def test_linear(self):
        assert fairplay_model_minutes(1000) == 150.0

    def test_validates(self):
        with pytest.raises(ParameterError):
            fairplay_model_minutes(0)


class TestYaoSelectedSum:
    def test_known_case(self):
        runner = YaoSelectedSum(value_bits=8, ot_key_bits=192,
                                rng=DeterministicRandom("k"))
        result = runner.run([10, 20, 30], [1, 0, 1])
        assert result.value == 40
        result.verify(40)

    def test_verify_raises_on_mismatch(self):
        runner = YaoSelectedSum(value_bits=8, ot_key_bits=192,
                                rng=DeterministicRandom("v"))
        result = runner.run([10, 20], [1, 1])
        with pytest.raises(AssertionError):
            result.verify(0)

    def test_empty_selection(self):
        runner = YaoSelectedSum(value_bits=8, ot_key_bits=192,
                                rng=DeterministicRandom("e"))
        assert runner.run([10, 20, 30], [0, 0, 0]).value == 0

    def test_full_selection_with_carries(self):
        runner = YaoSelectedSum(value_bits=8, ot_key_bits=192,
                                rng=DeterministicRandom("f"))
        values = [255, 255, 255, 255]
        assert runner.run(values, [1, 1, 1, 1]).value == 4 * 255

    def test_validates_inputs(self):
        runner = YaoSelectedSum(value_bits=4, ot_key_bits=192)
        with pytest.raises(ParameterError):
            runner.run([1, 2], [1])
        with pytest.raises(ParameterError):
            runner.run([1, 2], [1, 2])
        with pytest.raises(ParameterError):
            runner.run([16], [1])
        with pytest.raises(ParameterError):
            YaoSelectedSum(value_bits=0)
        with pytest.raises(ParameterError):
            YaoSelectedSum(value_bits=4, ot_key_bits=128)

    def test_accounting_fields(self):
        runner = YaoSelectedSum(value_bits=4, ot_key_bits=192,
                                rng=DeterministicRandom("acc"))
        result = runner.run([5, 9], [1, 1])
        assert result.gate_count > 0
        assert result.garbled_bytes > 0
        assert result.ot_bytes > 0
        assert result.total_s >= 0
        assert result.total_bytes == result.garbled_bytes + result.ot_bytes

    @settings(max_examples=8, deadline=None)
    @given(st.data())
    def test_matches_ground_truth(self, data):
        n = data.draw(st.integers(1, 5))
        values = data.draw(st.lists(st.integers(0, 31), min_size=n, max_size=n))
        bits = data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
        runner = YaoSelectedSum(value_bits=5, ot_key_bits=192,
                                rng=DeterministicRandom(repr((values, bits))))
        expected = sum(v * s for v, s in zip(values, bits))
        assert runner.run(values, bits).value == expected
