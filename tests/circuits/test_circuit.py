"""Tests for the boolean circuit IR."""

import pytest

from repro.circuits.circuit import Circuit, Gate, GateOp
from repro.exceptions import CircuitError


class TestGateOp:
    def test_truth_tables(self):
        assert [GateOp.XOR.evaluate(a, b) for a, b in ((0, 0), (0, 1), (1, 0), (1, 1))] == [0, 1, 1, 0]
        assert [GateOp.AND.evaluate(a, b) for a, b in ((0, 0), (0, 1), (1, 0), (1, 1))] == [0, 0, 0, 1]
        assert [GateOp.OR.evaluate(a, b) for a, b in ((0, 0), (0, 1), (1, 0), (1, 1))] == [0, 1, 1, 1]
        assert [GateOp.NOT.evaluate(b) for b in (0, 1)] == [1, 0]

    def test_arity(self):
        assert GateOp.NOT.arity == 1
        assert GateOp.AND.arity == 2

    def test_gate_validates_arity(self):
        with pytest.raises(CircuitError):
            Gate(GateOp.AND, (1,), 2)
        with pytest.raises(CircuitError):
            Gate(GateOp.NOT, (1, 2), 3)


class TestCircuit:
    def test_xor_circuit(self):
        c = Circuit()
        a, b = c.new_input("garbler"), c.new_input("evaluator")
        out = c.add_gate(GateOp.XOR, a, b)
        c.mark_outputs([out])
        assert c.evaluate({a: 1, b: 1}) == [0]
        assert c.evaluate({a: 1, b: 0}) == [1]

    def test_constants(self):
        c = Circuit()
        a = c.new_input("garbler")
        out = c.add_gate(GateOp.AND, a, Circuit.CONST_ONE)
        c.mark_outputs([out, Circuit.CONST_ZERO])
        assert c.evaluate({a: 1}) == [1, 0]

    def test_undefined_wire_rejected(self):
        c = Circuit()
        with pytest.raises(CircuitError):
            c.add_gate(GateOp.NOT, 99)
        with pytest.raises(CircuitError):
            c.mark_outputs([99])

    def test_missing_assignment(self):
        c = Circuit()
        a = c.new_input("garbler")
        c.mark_outputs([a])
        with pytest.raises(CircuitError):
            c.evaluate({})

    def test_non_bit_assignment(self):
        c = Circuit()
        a = c.new_input("garbler")
        c.mark_outputs([a])
        with pytest.raises(CircuitError):
            c.evaluate({a: 2})

    def test_no_outputs(self):
        c = Circuit()
        a = c.new_input("garbler")
        with pytest.raises(CircuitError):
            c.evaluate({a: 1})

    def test_input_ownership(self):
        c = Circuit()
        a = c.new_input("garbler")
        b = c.new_input("evaluator")
        d = c.new_input("garbler")
        assert c.inputs_of("garbler") == [a, d]
        assert c.inputs_of("evaluator") == [b]

    def test_gate_counting(self):
        c = Circuit()
        a, b = c.new_input("g"), c.new_input("g")
        c.add_gate(GateOp.XOR, a, b)
        c.add_gate(GateOp.AND, a, b)
        c.add_gate(GateOp.XOR, a, b)
        assert c.gate_count == 3
        assert c.count_gates(GateOp.XOR) == 2

    def test_evaluate_int_little_endian(self):
        c = Circuit()
        a = c.new_input("g")
        c.mark_outputs([Circuit.CONST_ZERO, a])  # bit1 = a
        assert c.evaluate_int({a: 1}) == 2
