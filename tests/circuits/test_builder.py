"""Tests for circuit construction (adders, muxes, selected-sum)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.builder import (
    EVALUATOR,
    GARBLER,
    CircuitBuilder,
    build_selected_sum_circuit,
)
from repro.exceptions import CircuitError


def assign_number(wires, value):
    return {w: (value >> i) & 1 for i, w in enumerate(wires)}


class TestRippleAdd:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_matches_integer_addition(self, x, y):
        builder = CircuitBuilder()
        a = builder.input_number(GARBLER, 9)
        b = builder.input_number(GARBLER, 9)
        circuit = builder.outputs(builder.ripple_add(a, b))
        assignments = {**assign_number(a, x), **assign_number(b, y)}
        assert circuit.evaluate_int(assignments) == x + y

    def test_unequal_widths(self):
        builder = CircuitBuilder()
        a = builder.input_number(GARBLER, 3)
        b = builder.input_number(GARBLER, 8)
        circuit = builder.outputs(builder.ripple_add(a, b))
        assignments = {**assign_number(a, 7), **assign_number(b, 200)}
        assert circuit.evaluate_int(assignments) == 207

    def test_overflow_wraps(self):
        builder = CircuitBuilder()
        a = builder.input_number(GARBLER, 4)
        b = builder.input_number(GARBLER, 4)
        circuit = builder.outputs(builder.ripple_add(a, b))
        assignments = {**assign_number(a, 15), **assign_number(b, 1)}
        assert circuit.evaluate_int(assignments) == 0  # carry dropped


class TestMaskAndMux:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 1), st.integers(0, 255))
    def test_mask(self, bit, value):
        builder = CircuitBuilder()
        select = builder.input_bit(EVALUATOR)
        number = builder.input_number(GARBLER, 8)
        circuit = builder.outputs(builder.mask(select, number))
        assignments = {select: bit, **assign_number(number, value)}
        assert circuit.evaluate_int(assignments) == bit * value

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 1), st.integers(0, 127), st.integers(0, 127))
    def test_mux(self, bit, x, y):
        builder = CircuitBuilder()
        select = builder.input_bit(EVALUATOR)
        a = builder.input_number(GARBLER, 7)
        b = builder.input_number(GARBLER, 7)
        circuit = builder.outputs(builder.mux(select, a, b))
        assignments = {select: bit, **assign_number(a, x), **assign_number(b, y)}
        assert circuit.evaluate_int(assignments) == (y if bit else x)

    def test_mux_width_mismatch(self):
        builder = CircuitBuilder()
        s = builder.input_bit(EVALUATOR)
        with pytest.raises(CircuitError):
            builder.mux(s, [s], [s, s])

    def test_constant_number(self):
        builder = CircuitBuilder()
        wires = builder.constant_number(5, 4)
        circuit = builder.outputs(wires)
        assert circuit.evaluate_int({}) == 5

    def test_constant_out_of_range(self):
        with pytest.raises(CircuitError):
            CircuitBuilder().constant_number(16, 4)


class TestSelectedSumCircuit:
    def test_input_layout(self):
        circuit = build_selected_sum_circuit(5, value_bits=8)
        assert len(circuit.inputs_of(EVALUATOR)) == 5
        assert len(circuit.inputs_of(GARBLER)) == 40

    def test_validates_parameters(self):
        with pytest.raises(CircuitError):
            build_selected_sum_circuit(0)
        with pytest.raises(CircuitError):
            build_selected_sum_circuit(5, value_bits=0)

    def test_gate_count_linear_in_n(self):
        small = build_selected_sum_circuit(10, value_bits=8)
        large = build_selected_sum_circuit(20, value_bits=8)
        assert large.gate_count > 1.8 * small.gate_count

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_computes_selected_sum(self, data):
        n = data.draw(st.integers(1, 8))
        values = data.draw(
            st.lists(st.integers(0, 255), min_size=n, max_size=n)
        )
        bits = data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
        circuit = build_selected_sum_circuit(n, value_bits=8)
        assignments = {}
        for wire, bit in zip(circuit.inputs_of(EVALUATOR), bits):
            assignments[wire] = bit
        garbler_wires = circuit.inputs_of(GARBLER)
        for i, value in enumerate(values):
            for b in range(8):
                assignments[garbler_wires[i * 8 + b]] = (value >> b) & 1
        expected = sum(v * s for v, s in zip(values, bits))
        assert circuit.evaluate_int(assignments) == expected
